"""Regenerate every evaluation table and figure from the command line.

Usage::

    python -m repro                 # everything
    python -m repro fig14 fig16     # selected experiments
    python -m repro --list          # show what exists
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import experiments
from .analysis.report import render_dict_rows

EXPERIMENTS = {
    "table1": (experiments.table1, "Table I: framework capabilities"),
    "table2": (experiments.table2,
               "Table II: technique applicability per primitive"),
    "table3": (experiments.table3, "Table III: benchmark applications"),
    "fig04": (experiments.fig04_motivation,
              "Figure 4: baseline app breakdown"),
    "fig13": (experiments.fig13_app_breakdown,
              "Figure 13: per-primitive app breakdown"),
    "fig14": (experiments.fig14_primitives,
              "Figure 14: primitive throughput (32x32, 8 MB/PE)"),
    "fig15": (experiments.fig15_app_speedup,
              "Figure 15: application speedups"),
    "fig16": (experiments.fig16_ablation,
              "Figure 16: optimization-technique ablation"),
    "fig17": (experiments.fig17_breakdown,
              "Figure 17: per-category primitive breakdown"),
    "fig18": (experiments.fig18_datasize,
              "Figure 18: data-size sensitivity"),
    "fig19": (experiments.fig19_pe_scaling,
              "Figure 19: PE-count scaling"),
    "fig20": (experiments.fig20_shapes,
              "Figure 20: hypercube-shape sensitivity"),
    "fig21": (experiments.fig21_cpu_comparison,
              "Figure 21: CPU-only comparison"),
    "fig22": (experiments.fig22_wordbits,
              "Figure 22: word-width sensitivity (GNN)"),
    "fig23a": (experiments.fig23a_topologies,
               "Figure 23a: hypercube vs ring vs tree"),
    "fig23b": (experiments.fig23b_multihost,
               "Figure 23b: multi-host scaling"),
    "ablation-fused": (experiments.ablation_fused_allreduce,
                       "Ablation: fused AllReduce"),
    "ablation-eg": (experiments.ablation_eg_alignment,
                    "Ablation: entangled-group alignment"),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the PID-Comm evaluation tables/figures.")
    parser.add_argument("names", nargs="*",
                        help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--json", metavar="DIR",
                        help="also save each experiment as JSON under DIR")
    args = parser.parse_args(argv)

    if args.list:
        for name, (_, title) in EXPERIMENTS.items():
            print(f"{name:16s} {title}")
        return 0

    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"try --list")
    for name in names:
        fn, title = EXPERIMENTS[name]
        start = time.perf_counter()
        rows = fn()
        elapsed = time.perf_counter() - start
        print(render_dict_rows(rows, f"== {title} =="))
        print(f"(regenerated in {elapsed:.2f}s)")
        if args.json:
            from .analysis.persistence import save_results
            path = save_results(f"{args.json}/{name}.json", name, rows)
            print(f"(saved {path})")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
