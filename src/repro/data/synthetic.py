"""Synthetic Criteo-like recommendation data (for DLRM).

The real Criteo Kaggle dataset [54] is proprietary-licensed and large;
DLRM's communication behaviour depends only on the batch size, the
number of embedding tables, their row counts, the embedding dimension,
and the pooling factor (lookups per table).  This generator produces a
categorical click log with Criteo's structure: 26 sparse (categorical)
features and 13 dense features, with power-law-ish index popularity so
row accesses are skewed like real category frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AppError

CRITEO_SPARSE_FIELDS = 26
CRITEO_DENSE_FIELDS = 13


@dataclass
class CriteoLikeDataset:
    """A synthetic batch of recommendation samples.

    Attributes:
        indices: int64 array [batch, tables, hots] -- embedding rows
            each sample looks up per table (multi-hot pooling).
        dense: float32 array [batch, dense_fields].
        num_rows: Rows per embedding table.
    """

    indices: np.ndarray
    dense: np.ndarray
    num_rows: int

    @property
    def batch_size(self) -> int:
        return self.indices.shape[0]

    @property
    def num_tables(self) -> int:
        return self.indices.shape[1]

    @property
    def hots(self) -> int:
        return self.indices.shape[2]


def criteo_like(batch_size: int, num_tables: int = CRITEO_SPARSE_FIELDS,
                num_rows: int = 1 << 16, hots: int = 4,
                dense_fields: int = CRITEO_DENSE_FIELDS,
                seed: int = 0) -> CriteoLikeDataset:
    """Generate a synthetic Criteo-like batch.

    Index popularity follows a Zipf-like distribution (clipped), which
    matches the heavy skew of real categorical features.
    """
    if batch_size < 1 or num_tables < 1 or num_rows < 2 or hots < 1:
        raise AppError("criteo_like: all sizes must be positive "
                       "(num_rows >= 2)")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(1.2, size=(batch_size, num_tables, hots))
    indices = (raw - 1) % num_rows
    dense = rng.standard_normal((batch_size, dense_fields)).astype(np.float32)
    return CriteoLikeDataset(indices=indices.astype(np.int64), dense=dense,
                             num_rows=num_rows)


def embedding_tables(num_tables: int, num_rows: int, dim: int,
                     seed: int = 0, low: int = -8, high: int = 8
                     ) -> np.ndarray:
    """Random integer embedding tables [tables, rows, dim] (int64).

    Integer values keep the distributed pooling bit-exactly comparable
    against the golden model (no float summation-order issues).
    """
    rng = np.random.default_rng(seed)
    return rng.integers(low, high, size=(num_tables, num_rows, dim)).astype(
        np.int64)
