"""Synthetic datasets replacing the paper's proprietary/large inputs."""

from .graphs import CsrGraph, partition_1d, partition_2d, random_graph, rmat_graph
from .synthetic import CriteoLikeDataset, criteo_like

__all__ = [
    "CsrGraph", "rmat_graph", "random_graph", "partition_1d", "partition_2d",
    "CriteoLikeDataset", "criteo_like",
]
