"""Graph structures, generators, and partitioners.

Replaces the paper's graph datasets (LiveJournal [102], Gowalla [13] for
BFS/CC; Pubmed [83], Reddit [34] for GNN) with synthetic generators of
the same character: R-MAT power-law graphs for the social networks and
Erdős–Rényi graphs as a uniform-degree control.  Communication volume
depends only on vertex/edge counts and the partitioning, which the
generators parameterize.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import AppError


@dataclass(frozen=True)
class CsrGraph:
    """A directed graph in CSR form (used undirected by symmetrizing)."""

    indptr: np.ndarray   # int64, len n+1
    indices: np.ndarray  # int64, len m

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v``."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    @cached_property
    def dense(self) -> np.ndarray:
        """Dense 0/1 adjacency (small graphs only; for golden models)."""
        n = self.num_vertices
        if n > 4096:
            raise AppError(f"dense adjacency of a {n}-vertex graph refused")
        mat = np.zeros((n, n), dtype=np.int64)
        for v in range(n):
            mat[v, self.neighbors(v)] = 1
        return mat

    def symmetrized(self) -> "CsrGraph":
        """Undirected version: edges in both directions, deduplicated."""
        n = self.num_vertices
        src = np.repeat(np.arange(n), self.out_degrees())
        dst = self.indices
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        return from_edges(n, all_src, all_dst)


class GraphStats:
    """A graph known only by its size (for analytic, paper-scale runs).

    Duck-types the parts of :class:`CsrGraph` the applications touch in
    cost-only mode: vertex/edge counts and :meth:`symmetrized`.  Any
    attempt to read actual structure raises.
    """

    def __init__(self, num_vertices: int, num_edges: int) -> None:
        if num_vertices < 1 or num_edges < 0:
            raise AppError("GraphStats needs positive sizes")
        self._n = num_vertices
        self._m = num_edges

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    def symmetrized(self) -> "GraphStats":
        """Stats are orientation-free; returns itself."""
        return self

    def neighbors(self, v: int) -> np.ndarray:
        """Unavailable: stats-only graphs carry no edges."""
        raise AppError("GraphStats has no structure; use a functional run "
                       "with a real CsrGraph")

    @property
    def dense(self) -> np.ndarray:
        raise AppError("GraphStats has no structure; use a functional run "
                       "with a real CsrGraph")


def from_edges(num_vertices: int, src: np.ndarray, dst: np.ndarray,
               drop_self_loops: bool = True) -> CsrGraph:
    """Build a CSR graph from (possibly duplicated) edge endpoints.

    ``drop_self_loops`` must be False when the endpoints are *local*
    coordinates of a tile, where src == dst does not mean a self-loop.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise AppError("edge endpoint arrays must have equal length")
    if len(src) and (src.min() < 0 or src.max() >= num_vertices
                     or dst.min() < 0 or dst.max() >= num_vertices):
        raise AppError("edge endpoint outside vertex range")
    keep = (src != dst) if drop_self_loops else np.ones(len(src), dtype=bool)
    keys = src[keep] * num_vertices + dst[keep]
    keys = np.unique(keys)
    src_u = keys // num_vertices
    dst_u = keys % num_vertices
    counts = np.bincount(src_u, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CsrGraph(indptr=indptr, indices=dst_u.astype(np.int64))


def rmat_graph(num_vertices: int, num_edges: int, seed: int = 0,
               a: float = 0.57, b: float = 0.19, c: float = 0.19
               ) -> CsrGraph:
    """R-MAT power-law graph (the standard social-network stand-in).

    ``num_vertices`` must be a power of two.  The recursive quadrant
    probabilities default to the Graph500 values.
    """
    if num_vertices & (num_vertices - 1):
        raise AppError(f"R-MAT needs a power-of-two vertex count, "
                       f"got {num_vertices}")
    d = 1.0 - a - b - c
    if d <= 0:
        raise AppError("R-MAT probabilities must sum below 1")
    rng = np.random.default_rng(seed)
    scale = num_vertices.bit_length() - 1
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        # Quadrants: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        go_down = r >= a + b
        src = src * 2 + go_down
        dst = dst * 2 + go_right
    return from_edges(num_vertices, src, dst)


def random_graph(num_vertices: int, num_edges: int, seed: int = 0
                 ) -> CsrGraph:
    """Uniform random (Erdős–Rényi-style) directed graph."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges)
    dst = rng.integers(0, num_vertices, num_edges)
    return from_edges(num_vertices, src, dst)


def partition_1d(graph: CsrGraph, parts: int) -> list[CsrGraph]:
    """Split vertices into contiguous blocks; part p keeps the out-edges
    of its vertex block (global column ids are retained)."""
    n = graph.num_vertices
    if n % parts:
        raise AppError(f"{n} vertices not divisible into {parts} parts")
    block = n // parts
    out = []
    for p in range(parts):
        lo, hi = p * block, (p + 1) * block
        indptr = (graph.indptr[lo:hi + 1] - graph.indptr[lo]).copy()
        indices = graph.indices[graph.indptr[lo]:graph.indptr[hi]].copy()
        out.append(CsrGraph(indptr=indptr, indices=indices))
    return out


def partition_2d(graph: CsrGraph, grid: int) -> list[list[CsrGraph]]:
    """2-D tiling: tile (i, j) holds edges from row-block i to col-block j,
    with both endpoints renumbered to local block coordinates."""
    n = graph.num_vertices
    if n % grid:
        raise AppError(f"{n} vertices not divisible into a {grid}x{grid} grid")
    block = n // grid
    tiles: list[list[CsrGraph]] = []
    degrees = graph.out_degrees()
    src_all = np.repeat(np.arange(n), degrees)
    dst_all = graph.indices
    row_of = src_all // block
    col_of = dst_all // block
    for i in range(grid):
        row = []
        for j in range(grid):
            mask = (row_of == i) & (col_of == j)
            row.append(from_edges(block, src_all[mask] - i * block,
                                  dst_all[mask] - j * block,
                                  drop_self_loops=False))
        tiles.append(row)
    return tiles
