"""The multi-tenant serving front-end: :class:`CollectiveServer`.

One server owns one machine -- a single
:class:`~repro.engine.communicator.Communicator` session over one
hypercube manager -- and multiplexes many tenants onto it:

* **Admission** (:mod:`repro.serving.admission`): a bounded queue with
  priority shedding turns overload into immediate backpressure instead
  of unbounded tail latency.
* **Scheduling** (:mod:`repro.serving.fairness`): weighted virtual-time
  fair share decides whose queued request joins the next execution
  batch, so a greedy tenant cannot starve the others.
* **Execution**: batches drain into the engine's hazard-wave
  ``submit()``; each request's individual result (payload bytes,
  ledger) is exactly what a solo session would have produced --
  serving adds scheduling, never changes answers.
* **Isolation**: every admitted request is stamped with its tenant id,
  routing plan lookups through the tenant's private
  :meth:`~repro.engine.cache.PlanCache.partition`, and per-request MRAM
  footprints are checked against the tenant's quota at admission.

Time is *modelled*: the server clock advances by each executed batch's
overlap-aware ledger total, so latency percentiles are deterministic
properties of the workload and schedule, not of host jitter.
"""

from __future__ import annotations

import asyncio
import dataclasses
import statistics
from dataclasses import dataclass, field
from typing import Any

from ..core.hypercube import HypercubeManager
from ..engine.communicator import Communicator
from ..engine.request import CommRequest, NormalizedRequest
from ..engine.session_config import SessionConfig
from ..engine.stats import plan_payload_bytes
from ..errors import (
    PidCommError,
    QuotaExceeded,
    RequestShed,
    ServingError,
    SessionClosed,
)
from .admission import AdmissionQueue, PendingRequest
from .fairness import FairShareScheduler
from .session import Session, TenantSpec


def _footprint_bytes(req: NormalizedRequest) -> int:
    """Distinct per-PE MRAM bytes ``req`` touches (the quota currency).

    Overlapping read/write spans are merged first, so an in-place
    primitive is not double-charged for its source region.
    """
    spans = sorted(set(req.footprint().reads + req.footprint().writes))
    total = 0
    end = -1
    for offset, nbytes in spans:
        stop = offset + nbytes
        if offset > end:
            total += nbytes
        elif stop > end:
            total += stop - end
        end = max(end, stop)
    return total


@dataclass
class TenantStats:
    """Per-tenant serving counters (modelled-clock latencies)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    shed: int = 0
    #: Payload bytes of completed requests (the goodput numerator).
    bytes_completed: int = 0
    #: Source chunks fingerprint-scanned for this tenant's requests
    #: (0 unless the owned session runs with content-aware elision).
    chunks_scanned: int = 0
    #: Destination chunks whose transfer was elided for this tenant.
    chunks_elided: int = 0
    #: Destination bytes those elided chunks cover.
    elided_bytes: int = 0
    #: Modelled completion - arrival seconds, one entry per completion.
    latencies: list[float] = field(default_factory=list)

    def percentile(self, pct: float) -> float:
        """Latency percentile over completed requests (0 if none)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1,
                          round(pct / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50(self) -> float:
        """Median modelled latency."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th-percentile modelled latency."""
        return self.percentile(99.0)

    @property
    def mean_latency(self) -> float:
        """Mean modelled latency (0 if nothing completed)."""
        return statistics.fmean(self.latencies) if self.latencies else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy for reports / persistence."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "bytes_completed": self.bytes_completed,
            "chunks_scanned": self.chunks_scanned,
            "chunks_elided": self.chunks_elided,
            "elided_bytes": self.elided_bytes,
            "p50_ms": self.p50 * 1e3,
            "p99_ms": self.p99 * 1e3,
            "mean_ms": self.mean_latency * 1e3,
        }


@dataclass
class ServerStats:
    """Whole-server counters: modelled clock, batches, per-tenant stats."""

    #: Modelled seconds the machine has executed (sum of batch ledgers).
    clock: float = 0.0
    batches: int = 0
    #: Requests dispatched into execution batches.
    dispatched: int = 0
    #: Tenant ids in completion order (the fairness tests' witness).
    execution_log: list[str] = field(default_factory=list)
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    def tenant(self, tenant_id: str) -> TenantStats:
        """The (created-on-demand) counters for one tenant."""
        stats = self.tenants.get(tenant_id)
        if stats is None:
            stats = self.tenants[tenant_id] = TenantStats()
        return stats

    @property
    def goodput_bytes_per_second(self) -> float:
        """Completed payload bytes over the modelled clock (0 early)."""
        done = sum(t.bytes_completed for t in self.tenants.values())
        return done / self.clock if self.clock else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy for reports / persistence."""
        return {
            "clock_seconds": self.clock,
            "batches": self.batches,
            "dispatched": self.dispatched,
            "goodput_bytes_per_second": self.goodput_bytes_per_second,
            "tenants": {tid: t.snapshot()
                        for tid, t in sorted(self.tenants.items())},
        }


class CollectiveServer:
    """Async front-end admitting many tenants onto one Communicator.

    Args:
        manager: The hypercube manager the owned session runs over.
        session_config: Frozen :class:`SessionConfig` for the owned
            session (None = all defaults).
        max_queue_depth: Total queued-request bound across all tenants;
            arrivals past it shed lower-priority queued work or are
            rejected (see :mod:`repro.serving.admission`).
        batch_limit: Most requests one execution batch dispatches; the
            fair-share scheduler fills each batch one pick at a time.

    Use :meth:`session` to open per-tenant handles, then either drive
    execution explicitly with :meth:`process` / :meth:`drain`, or run
    the server as an async context manager (``async with server:``),
    which starts a background task that drains the queue whenever work
    arrives.
    """

    def __init__(self, manager: HypercubeManager,
                 session_config: SessionConfig | None = None, *,
                 max_queue_depth: int = 64, batch_limit: int = 8) -> None:
        if batch_limit <= 0:
            raise ValueError(
                f"batch_limit must be positive, got {batch_limit}")
        self.comm = Communicator(manager, session_config)
        self.scheduler = FairShareScheduler()
        self.stats = ServerStats()
        self._queue = AdmissionQueue(max_depth=max_queue_depth)
        self.batch_limit = batch_limit
        self._sessions: dict[str, Session] = {}
        self._seq = 0
        self._wake: asyncio.Event | None = None
        self._task: "asyncio.Task[None] | None" = None

    @property
    def manager(self) -> HypercubeManager:
        """The hypercube manager the owned session runs over."""
        return self.comm.manager

    @property
    def pending(self) -> int:
        """Requests admitted but not yet dispatched."""
        return len(self._queue)

    @property
    def parallel_workers(self) -> int:
        """Worker threads the owned session replays with (1 = serial).

        Batches drain through ``Communicator.submit``, so a pooled
        session (``SessionConfig(parallel_workers=N)``) automatically
        executes each batch's hazard-free wave members concurrently --
        the server's hazard-aware batch filling already builds batches
        that form one fully-concurrent wave.
        """
        return self.comm.parallel_workers

    @property
    def autotune(self) -> str | None:
        """The owned session's autotune mode (None / offline / online).

        A server built with ``SessionConfig(autotune=...)`` tunes
        per-tenant: tenant-stamped requests route schedule decisions
        through that tenant's plan-cache partition, so one tenant's
        re-tunes never disturb another's committed schedules.
        """
        return self.comm.autotune

    @property
    def admission_stats(self):
        """The admission queue's lifetime counters."""
        return self._queue.stats

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def session(self, tenant_id: str, *, priority: int = 1,
                weight: float = 1.0, mram_quota_bytes: int | None = None,
                plan_cache_slots: int | None = None) -> Session:
        """Open a tenant session (one active session per tenant id).

        Registers the tenant with the fair-share scheduler and carves
        its plan-cache partition (bounded to ``plan_cache_slots`` when
        given).  Raises :class:`~repro.errors.ServingError` on a
        duplicate id while the first session is still open.
        """
        if tenant_id in self._sessions:
            raise ServingError(
                f"tenant {tenant_id!r} already has an open session")
        spec = TenantSpec(tenant_id=tenant_id, priority=priority,
                          weight=weight, mram_quota_bytes=mram_quota_bytes,
                          plan_cache_slots=plan_cache_slots)
        session = Session(self, spec)
        self._sessions[tenant_id] = session
        self.scheduler.register(tenant_id, weight)
        if plan_cache_slots is not None:
            self.comm.cache.partition(tenant_id, maxsize=plan_cache_slots)
        self.stats.tenant(tenant_id)
        return session

    def _close_session(self, session: Session) -> None:
        """Tear down a session: fail its queued work, drop its state."""
        tenant_id = session.tenant_id
        for entry in self._queue.evict_tenant(tenant_id):
            if not entry.future.done():
                entry.future.set_exception(SessionClosed(
                    f"session for tenant {tenant_id!r} closed while "
                    f"{entry.describe()} was queued"))
        self.scheduler.forget(tenant_id)
        self._sessions.pop(tenant_id, None)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _submit(self, session: Session,
                request: CommRequest) -> "asyncio.Future[Any]":
        """Admit one request for ``session`` (Session.submit's engine)."""
        spec = session.spec
        tenant_stats = self.stats.tenant(spec.tenant_id)
        stamped = dataclasses.replace(request, tenant=spec.tenant_id)
        # Normalize now: malformed requests fail the submit() call
        # itself, not a batch that innocent tenants share.
        normalized = stamped.normalize(self.comm.manager, self.comm.config,
                                       backend=self.comm.backend)
        footprint = _footprint_bytes(normalized)
        if spec.mram_quota_bytes is not None \
                and footprint > spec.mram_quota_bytes:
            tenant_stats.rejected += 1
            raise QuotaExceeded(
                f"{normalized.describe()} touches {footprint} B of MRAM "
                f"per PE; tenant {spec.tenant_id!r} is capped at "
                f"{spec.mram_quota_bytes} B")
        loop = asyncio.get_running_loop()
        entry = PendingRequest(
            seq=self._seq, tenant_id=spec.tenant_id,
            priority=spec.priority,
            cost=float(plan_payload_bytes_estimate(normalized)),
            request=stamped, normalized=normalized,
            future=loop.create_future(), arrival=self.stats.clock)
        self._seq += 1
        try:
            victim = self._queue.offer(entry)
        except Exception:
            tenant_stats.rejected += 1
            raise
        if victim is not None:
            self.stats.tenant(victim.tenant_id).shed += 1
            if not victim.future.done():
                victim.future.set_exception(RequestShed(
                    f"{victim.describe()} shed for higher-priority "
                    f"arrival {entry.describe()}"))
        tenant_stats.submitted += 1
        self.scheduler.activate(spec.tenant_id)
        if self._wake is not None:
            self._wake.set()
        return entry.future

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def process(self, max_batches: int | None = None) -> int:
        """Drain the queue synchronously; returns batches executed.

        Each batch dispatches up to ``batch_limit`` requests chosen by
        the fair-share scheduler and runs them through the engine's
        hazard-wave ``submit()``.  A dispatched request always
        completes (its future resolves or fails with the engine's
        error) -- dispatch is the point of no shedding.
        """
        executed = 0
        while self._queue and (max_batches is None
                               or executed < max_batches):
            self._run_batch()
            executed += 1
        return executed

    async def drain(self) -> None:
        """Async-friendly :meth:`process`: yields between batches."""
        while self._queue:
            self._run_batch()
            await asyncio.sleep(0)

    def _run_batch(self) -> None:
        """Dispatch and execute one scheduler-chosen batch.

        Filling is hazard-aware: a tenant whose oldest request
        conflicts with a request already in the batch is deferred to
        the next batch (its virtual time is untouched, so it goes
        first then).  Conflicts are almost always intra-tenant -- a
        burst reusing its own buffers -- and deferring them keeps every
        batch a single fully-concurrent wave instead of serializing
        inside the engine.
        """
        batch: list[PendingRequest] = []
        footprints: list[Any] = []
        deferred: set[str] = set()
        while len(batch) < self.batch_limit:
            candidates = [t for t in self._queue.pending_tenants()
                          if t not in deferred]
            if not candidates:
                break
            tenant = self.scheduler.pick(candidates)
            head = self._queue.peek(tenant).normalized.footprint()
            if any(head.conflicts_with(fp) for fp in footprints):
                deferred.add(tenant)
                continue
            entry = self._queue.pop(tenant)
            self.scheduler.charge(tenant, entry.cost)
            batch.append(entry)
            footprints.append(head)
        if not batch:
            return
        self.stats.dispatched += len(batch)
        try:
            result = self.comm.submit([e.request for e in batch])
        except PidCommError:
            # A batch-level failure must not take innocent tenants
            # down: fall back to per-request execution so each future
            # gets its own outcome.
            self._run_singly(batch)
            return
        self.stats.batches += 1
        self.stats.clock += result.seconds
        for entry, future in zip(batch, result.futures):
            self._complete(entry, future.result())

    def _run_singly(self, batch: list[PendingRequest]) -> None:
        """Per-request fallback when a combined batch refuses to run."""
        for entry in batch:
            try:
                result = self.comm.submit([entry.request])
            except PidCommError as error:
                if not entry.future.done():
                    entry.future.set_exception(error)
                continue
            self.stats.batches += 1
            self.stats.clock += result.seconds
            self._complete(entry, result.futures[0].result())

    def _complete(self, entry: PendingRequest, result: Any) -> None:
        """Resolve one dispatched request and account its completion."""
        tenant_stats = self.stats.tenant(entry.tenant_id)
        tenant_stats.completed += 1
        tenant_stats.bytes_completed += plan_payload_bytes(result.plan)
        tenant_stats.chunks_scanned += result.chunks_scanned
        tenant_stats.chunks_elided += result.chunks_elided
        tenant_stats.elided_bytes += result.elided_bytes
        tenant_stats.latencies.append(self.stats.clock - entry.arrival)
        self.stats.execution_log.append(entry.tenant_id)
        if not entry.future.done():
            entry.future.set_result(result)

    # ------------------------------------------------------------------
    # Background serving
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background drain task (requires a running loop)."""
        if self._task is not None:
            return
        self._wake = asyncio.Event()
        if self._queue:
            self._wake.set()
        self._task = asyncio.get_running_loop().create_task(self._serve())

    async def stop(self) -> None:
        """Drain remaining work, then stop the background task."""
        if self._task is None:
            return
        await self.drain()
        task, self._task, self._wake = self._task, None, None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass

    async def _serve(self) -> None:
        """Background loop: wait for work, drain it, repeat."""
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            await self.drain()

    async def __aenter__(self) -> "CollectiveServer":
        """``async with server:`` starts the background drain task."""
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        """Drain and stop on context exit."""
        await self.stop()

    def describe(self) -> str:
        """One-line server summary."""
        workers = self.parallel_workers
        suffix = f", {workers} workers" if workers > 1 else ""
        return (f"CollectiveServer({len(self._sessions)} sessions, "
                f"{self.pending} queued, {self.stats.dispatched} dispatched, "
                f"clock {self.stats.clock * 1e3:.3f} ms{suffix})")


def plan_payload_bytes_estimate(req: NormalizedRequest) -> int:
    """Pre-execution payload-byte estimate (the fair-share cost).

    ``total_data_size`` is the per-PE ask; weighting by group size
    matches what :func:`~repro.engine.stats.plan_payload_bytes` reports
    after execution closely enough for scheduling purposes.
    """
    return req.total_data_size * max(1, req.group_size)
