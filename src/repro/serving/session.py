"""Per-tenant handles: :class:`TenantSpec` and :class:`Session`.

A tenant never touches the :class:`~repro.engine.communicator.Communicator`
directly.  It opens a :class:`Session` against the
:class:`~repro.serving.server.CollectiveServer`, describes itself with a
frozen :class:`TenantSpec` (priority, fair-share weight, MRAM quota,
plan-cache slots), and submits :class:`~repro.engine.request.CommRequest`
values through ``submit()``, which returns an ``asyncio`` future the
tenant awaits.  The server stamps the tenant id onto every request, so
plan lookups flow through the tenant's private plan-cache partition and
per-tenant statistics accumulate without any cooperation from the
request author.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..engine.request import CommRequest
from ..errors import SessionClosed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import CollectiveServer, TenantStats


@dataclass(frozen=True)
class TenantSpec:
    """Frozen description of one tenant's service class.

    Args:
        tenant_id: Unique name; also the plan-cache partition key.
        priority: Admission priority.  Under overload, arrivals from a
            strictly higher priority shed queued work of the lowest
            priority; larger is more important.
        weight: Fair-share weight -- the tenant's relative byte share
            of the machine while backlogged (2.0 earns twice 1.0).
        mram_quota_bytes: Per-PE MRAM footprint cap per request; a
            request whose buffer span exceeds it is refused with
            :class:`~repro.errors.QuotaExceeded`.  None = uncapped.
        plan_cache_slots: LRU bound of the tenant's plan-cache
            partition.  None = unbounded partition (the shared global
            LRU bound still applies).
    """

    tenant_id: str
    priority: int = 1
    weight: float = 1.0
    mram_quota_bytes: int | None = None
    plan_cache_slots: int | None = None

    def __post_init__(self) -> None:
        """Validate the spec (weights and bounds must be positive)."""
        if not self.tenant_id:
            raise ValueError("tenant_id must be a non-empty string")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.mram_quota_bytes is not None and self.mram_quota_bytes <= 0:
            raise ValueError("mram_quota_bytes must be positive, got "
                             f"{self.mram_quota_bytes}")
        if self.plan_cache_slots is not None and self.plan_cache_slots <= 0:
            raise ValueError("plan_cache_slots must be positive, got "
                             f"{self.plan_cache_slots}")


class Session:
    """One tenant's handle onto a :class:`CollectiveServer`.

    Sessions are created by :meth:`CollectiveServer.session`, never
    directly.  ``submit()`` is the async path (returns a future the
    caller awaits); ``run()`` is the synchronous-test convenience that
    submits and drains the server until the result is available.
    """

    def __init__(self, server: "CollectiveServer", spec: TenantSpec) -> None:
        self.server = server
        self.spec = spec
        self._closed = False

    @property
    def tenant_id(self) -> str:
        """The owning tenant's id."""
        return self.spec.tenant_id

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; submissions then raise."""
        return self._closed

    def submit(self, request: CommRequest) -> "asyncio.Future[Any]":
        """Admit ``request`` and return an awaitable future.

        The future resolves to the request's
        :class:`~repro.engine.result.CommResult` once a scheduler batch
        executes it; it fails with
        :class:`~repro.errors.RequestShed` if higher-priority overload
        displaced the request while it was still queued.  Raises
        synchronously: :class:`~repro.errors.AdmissionRejected` when
        the queue is full and this tenant cannot displace anything,
        :class:`~repro.errors.QuotaExceeded` when the request's per-PE
        footprint exceeds the tenant's MRAM quota, and
        :class:`~repro.errors.SessionClosed` after :meth:`close`.
        Requires a running event loop (call from async code, or use
        :meth:`run`).
        """
        if self._closed:
            raise SessionClosed(
                f"session for tenant {self.tenant_id!r} is closed")
        return self.server._submit(self, request)

    async def run(self, request: CommRequest) -> Any:
        """Submit ``request`` and drive the server until it resolves.

        The await-in-one-call convenience for tests and scripts that do
        not run the server loop themselves.
        """
        future = self.submit(request)
        while not future.done():
            self.server.process(max_batches=1)
            await asyncio.sleep(0)
        return future.result()

    def close(self) -> None:
        """Close the session: drop queued work, refuse later submits.

        Queued (not yet dispatched) requests fail with
        :class:`~repro.errors.SessionClosed`; in-flight dispatched work
        still completes.  Closing twice is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        self.server._close_session(self)

    @property
    def stats(self) -> "TenantStats":
        """The server's per-tenant counters for this session."""
        return self.server.stats.tenants[self.tenant_id]

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"Session({self.tenant_id!r}, priority {self.spec.priority}, "
                f"weight {self.spec.weight:g}, {state})")
