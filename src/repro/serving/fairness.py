"""Fair-share scheduling: weighted virtual time over tenant queues.

Classic stride/virtual-time scheduling (as in WFQ / Linux CFS) adapted
to the serving front-end: every tenant carries a *virtual time* that
advances by ``cost / weight`` whenever one of its requests is
dispatched.  The scheduler always picks the backlogged tenant with the
smallest virtual time, so over any window each tenant's served bytes
converge to its weight share regardless of how aggressively another
tenant floods the queue -- a greedy tenant only advances its own
virtual clock faster and thereby deprioritizes itself.

The ``cost`` currency is payload bytes (what the request actually asks
the machine to move), matching the goodput metric the load generator
reports, so "fair" means fair *throughput*, not fair request counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class FairShareScheduler:
    """Weighted virtual-time scheduler over tenant ids.

    Tenants register once with a weight; :meth:`pick` selects among the
    currently-backlogged candidates, :meth:`charge` advances the
    winner's virtual time by the dispatched request's cost.  All state
    is plain floats -- deterministic and directly assertable in tests.
    """

    #: tenant -> relative weight (2.0 earns twice the byte share of 1.0).
    weights: dict[str, float] = field(default_factory=dict)
    #: tenant -> virtual time (cost/weight units consumed so far).
    virtual_time: dict[str, float] = field(default_factory=dict)
    #: Global virtual clock: the max virtual time any dispatch reached.
    #: Tenants waking from idle start here instead of their stale value,
    #: so sleeping does not bank an unbounded credit.
    vclock: float = 0.0

    def register(self, tenant_id: str, weight: float = 1.0) -> None:
        """Add a tenant; its virtual time starts at the current clock."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.weights[tenant_id] = float(weight)
        self.virtual_time[tenant_id] = self.vclock

    def forget(self, tenant_id: str) -> None:
        """Drop a tenant's scheduling state (session close)."""
        self.weights.pop(tenant_id, None)
        self.virtual_time.pop(tenant_id, None)

    def activate(self, tenant_id: str) -> None:
        """Note that an idle tenant has new work.

        Clamps its virtual time up to the global clock: a tenant that
        idled for a long stretch resumes on equal footing rather than
        monopolizing the machine to "catch up".
        """
        current = self.virtual_time.get(tenant_id, 0.0)
        if current < self.vclock:
            self.virtual_time[tenant_id] = self.vclock

    def pick(self, candidates: Iterable[str]) -> str:
        """The backlogged tenant to serve next: smallest virtual time.

        Ties break on tenant id for determinism.
        """
        chosen = min(candidates, default=None,
                     key=lambda t: (self.virtual_time.get(t, 0.0), t))
        if chosen is None:
            raise ValueError("pick() needs at least one candidate")
        return chosen

    def charge(self, tenant_id: str, cost: float) -> None:
        """Advance ``tenant_id``'s virtual time by ``cost / weight``."""
        weight = self.weights.get(tenant_id, 1.0)
        advanced = self.virtual_time.get(tenant_id, 0.0) + cost / weight
        self.virtual_time[tenant_id] = advanced
        if advanced > self.vclock:
            self.vclock = advanced

    def describe(self) -> str:
        """One line per tenant: weight and consumed virtual time."""
        lines = ["FairShareScheduler"]
        for tenant in sorted(self.weights):
            lines.append(f"  {tenant:<16s} weight {self.weights[tenant]:<6g}"
                         f" vtime {self.virtual_time.get(tenant, 0.0):.1f}")
        return "\n".join(lines)
