"""Bounded admission with priority-ordered shedding under overload.

The :class:`AdmissionQueue` is the serving front-end's waiting room.
Its depth is bounded: a server facing more traffic than one simulated
machine can absorb must turn work away *early* (at admission) rather
than let queues -- and tail latency -- grow without bound.  Overload
policy, in order:

1. **Admit** while the queue has room.  A queued request may still be
   shed (below); a *dispatched* request -- one the scheduler has pulled
   into an execution batch -- is never dropped.
2. **Shed** when the queue is full and the arriving request's tenant
   has *strictly higher* priority than the lowest-priority tenant with
   queued work: that tenant's newest queued request is shed (its future
   fails with :class:`~repro.errors.RequestShed`) and the arrival takes
   its place.  Shedding the newest entry preserves the victim tenant's
   oldest (closest to completion) work.
3. **Reject** otherwise: the arrival itself is the lowest priority, so
   ``submit()`` raises :class:`~repro.errors.AdmissionRejected`
   synchronously -- immediate backpressure to the caller.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

from ..engine.request import CommRequest, NormalizedRequest
from ..errors import AdmissionRejected


@dataclass
class PendingRequest:
    """One submitted-but-not-yet-dispatched request."""

    seq: int
    tenant_id: str
    priority: int
    #: Fair-share charge for this request (payload bytes).
    cost: float
    request: CommRequest
    normalized: NormalizedRequest
    future: Any  # asyncio.Future, untyped to keep the module import-light
    #: Modelled server clock at submission (latency = completion - this).
    arrival: float

    def describe(self) -> str:
        """Short label for shed/reject diagnostics."""
        return (f"{self.tenant_id}#{self.seq} "
                f"{self.normalized.describe()} (priority {self.priority})")


@dataclass
class AdmissionStats:
    """Counters the queue accumulates across its lifetime."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    #: High-water mark of queued requests.
    peak_depth: int = 0


class AdmissionQueue:
    """Bounded per-tenant FIFO queues with priority shedding.

    One FIFO per tenant preserves each tenant's submission order; the
    *total* queued count across tenants is bounded by ``max_depth``.
    The fair-share scheduler dequeues with :meth:`pop`, always taking a
    tenant's oldest entry.
    """

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self.stats = AdmissionStats()
        self._queues: "OrderedDict[str, deque[PendingRequest]]" = OrderedDict()
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    def __bool__(self) -> bool:
        return self._depth > 0

    def pending(self, tenant_id: str) -> int:
        """Queued requests for one tenant."""
        queue = self._queues.get(tenant_id)
        return len(queue) if queue else 0

    def pending_tenants(self) -> list[str]:
        """Tenants with queued work, in first-queued order."""
        return [t for t, q in self._queues.items() if q]

    def offer(self, entry: PendingRequest) -> PendingRequest | None:
        """Admit ``entry``; returns the shed victim, if admission shed one.

        Raises :class:`~repro.errors.AdmissionRejected` when the queue
        is full and ``entry`` cannot displace anything.  The caller
        owns failing the victim's future (the queue never touches
        futures, keeping it trivially testable).
        """
        victim = None
        if self._depth >= self.max_depth:
            victim = self._pick_victim(entry.priority)
            if victim is None:
                self.stats.rejected += 1
                raise AdmissionRejected(
                    f"admission queue full ({self.max_depth} deep) and "
                    f"{entry.describe()} is not above the lowest queued "
                    "priority")
            self._remove(victim)
            self.stats.shed += 1
        self._queues.setdefault(entry.tenant_id,
                                deque()).append(entry)
        self._depth += 1
        self.stats.admitted += 1
        if self._depth > self.stats.peak_depth:
            self.stats.peak_depth = self._depth
        return victim

    def peek(self, tenant_id: str) -> PendingRequest:
        """``tenant_id``'s oldest entry, without dequeuing it.

        The server's hazard-aware batch filler inspects heads before
        committing to a dispatch.
        """
        queue = self._queues.get(tenant_id)
        if not queue:
            raise KeyError(f"tenant {tenant_id!r} has no queued requests")
        return queue[0]

    def pop(self, tenant_id: str) -> PendingRequest:
        """Dequeue ``tenant_id``'s oldest entry (dispatch: now unsheddable)."""
        queue = self._queues.get(tenant_id)
        if not queue:
            raise KeyError(f"tenant {tenant_id!r} has no queued requests")
        entry = queue.popleft()
        self._depth -= 1
        return entry

    def evict_tenant(self, tenant_id: str) -> list[PendingRequest]:
        """Drop every queued entry of one tenant (session close)."""
        queue = self._queues.pop(tenant_id, None)
        if not queue:
            return []
        dropped = list(queue)
        self._depth -= len(dropped)
        return dropped

    # ------------------------------------------------------------------
    # Overload internals
    # ------------------------------------------------------------------
    def _pick_victim(self, arriving_priority: int) -> PendingRequest | None:
        """The entry to shed for an arrival of ``arriving_priority``.

        The *newest* queued entry of the lowest-priority tenant, and
        only if that priority is strictly below the arrival's (equal
        priorities never displace each other -- that would just churn).
        Ties between equally low tenants break toward the longest
        queue (the tenant hurting the system most), then tenant id for
        determinism.
        """
        candidates = [(q[-1].priority, -len(q), t)
                      for t, q in self._queues.items() if q]
        if not candidates:
            return None
        lowest_priority, neg_len, tenant = min(candidates)
        if lowest_priority >= arriving_priority:
            return None
        return self._queues[tenant][-1]

    def _remove(self, entry: PendingRequest) -> None:
        queue = self._queues[entry.tenant_id]
        queue.remove(entry)
        self._depth -= 1
