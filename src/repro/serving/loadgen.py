"""Multi-tenant load generation: workload mixes and the report.

Replays representative request mixes against a
:class:`~repro.serving.server.CollectiveServer` and reports what each
tenant experienced -- completed requests, shed/rejected counts, and
modelled p50/p99 latency plus goodput.  Three mixes model the paper's
application classes:

* ``"dlrm_burst"`` -- recommendation-model embedding exchange: bursts
  of AlltoAll (table lookups) capped by an AllGather (pooled outputs).
* ``"gnn_epoch"`` -- graph-network training: a steady alternation of
  AllReduce (gradients) and ReduceScatter (partitioned aggregation).
* ``"bfs_frontier"`` -- breadth-first search: AlltoAll whose payload
  tracks the frontier as it swells then collapses across rounds.

Each tenant owns a disjoint MRAM region (src in the lower half, dst in
the upper half), so tenants are data-independent and the engine's
hazard scheduler can overlap them freely; all sizes and choices come
from a seeded RNG, making every run bit-reproducible.
"""

from __future__ import annotations

import asyncio
import random
import zlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.groups import group_size, resolve_dims
from ..engine.request import CommRequest
from ..errors import AdmissionRejected, QuotaExceeded, RequestShed
from .server import CollectiveServer

#: A mix function maps (round index, seeded rng) to a list of
#: ``(primitive, scale)`` steps; ``scale`` in (0, 1] multiplies the
#: tenant's base request size.
MixFn = Callable[[int, random.Random], list[tuple[str, float]]]


def _dlrm_burst(round_idx: int, rng: random.Random) -> list[tuple[str, float]]:
    """Embedding-exchange burst: 2-4 AlltoAlls then a pooled AllGather."""
    burst = 2 + rng.randrange(3)
    steps = [("alltoall", 1.0)] * burst
    steps.append(("allgather", 0.5))
    return steps


def _gnn_epoch(round_idx: int, rng: random.Random) -> list[tuple[str, float]]:
    """Training epoch: gradient AllReduce + partitioned ReduceScatter."""
    return [("allreduce", 0.5), ("reduce_scatter", 1.0)]


#: Frontier occupancy profile across BFS rounds (swell then collapse).
_BFS_PROFILE = (0.125, 0.5, 1.0, 0.75, 0.25)


def _bfs_frontier(round_idx: int,
                  rng: random.Random) -> list[tuple[str, float]]:
    """Frontier exchange: one AlltoAll sized by the round's frontier."""
    scale = _BFS_PROFILE[round_idx % len(_BFS_PROFILE)]
    jitter = rng.choice((0.75, 1.0, 1.0, 1.25))
    return [("alltoall", min(1.0, scale * jitter))]


def make_moe_mix(experts: int = 8, sparsity: float = 0.75,
                 skew: float = 2.0) -> MixFn:
    """A mixture-of-experts routing mix with tunable content sparsity.

    Each round is one dispatch AlltoAll (tokens to their routed
    experts) and one combine AlltoAll (expert outputs back), with a
    quarter-size AllReduce every other round for the shared dense
    layers.  The exchanges run at full capacity -- MoE buffers are
    sized for the worst-case expert load -- so request *sizes* never
    shrink; what varies is *content*: cold experts' capacity segments
    stay all-zero.  ``sparsity`` is the target zero fraction and
    ``skew`` the Zipf exponent of expert popularity (higher = hotter
    head, colder tail).  :func:`seed_moe_payload` reads these knobs
    back off the mix to write matching structured-sparse activations,
    which is what content-aware transfer elision
    (``SessionConfig(elide_transfers=True)``) harvests.
    """
    if experts <= 0:
        raise ValueError(f"experts must be positive, got {experts}")
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if skew < 0.0:
        raise ValueError(f"skew must be >= 0, got {skew}")

    def moe_route(round_idx: int,
                  rng: random.Random) -> list[tuple[str, float]]:
        steps = [("alltoall", 1.0), ("alltoall", 1.0)]
        if round_idx % 2 == 1:
            steps.append(("allreduce", 0.25))
        return steps

    moe_route.experts = experts  # type: ignore[attr-defined]
    moe_route.sparsity = sparsity  # type: ignore[attr-defined]
    moe_route.skew = skew  # type: ignore[attr-defined]
    return moe_route


#: Named workload mixes the load generator understands.
MIXES: dict[str, MixFn] = {
    "dlrm_burst": _dlrm_burst,
    "gnn_epoch": _gnn_epoch,
    "bfs_frontier": _bfs_frontier,
    "moe_route": make_moe_mix(),
}


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's slice of a load-generation run."""

    tenant_id: str
    #: Mix name (a :data:`MIXES` key).
    mix: str
    priority: int = 1
    weight: float = 1.0

    def __post_init__(self) -> None:
        """Validate the mix name early, with the known names listed."""
        if self.mix not in MIXES:
            raise ValueError(
                f"unknown mix {self.mix!r}; known: {sorted(MIXES)}")


class LoadGenerator:
    """Replays tenant mixes against a server and reports the outcome.

    Args:
        server: The serving front-end under load; the generator opens
            one session per :class:`TenantLoad`.
        loads: The tenants and their mixes.
        dims: Dimension bitmap every generated request communicates
            over (e.g. ``"11"``).
        seed: RNG seed; runs are bit-reproducible per seed.
        region_bytes: Per-tenant MRAM region size; defaults to an even
            split of the machine's MRAM across the tenants.
        slots: Buffer slots per tenant region.  Consecutive steps of a
            mix rotate through the slots (multi-buffering, as real
            burst pipelines do), so a tenant's own burst is
            data-independent and the server can batch it into one
            wide wave instead of serializing it.  1 = single-buffered.
    """

    def __init__(self, server: CollectiveServer, loads: list[TenantLoad],
                 dims: str = "1", *, seed: int = 0,
                 region_bytes: int | None = None, slots: int = 2) -> None:
        if not loads:
            raise ValueError("LoadGenerator needs at least one TenantLoad")
        ids = [load.tenant_id for load in loads]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate tenant ids in loads: {ids}")
        self.server = server
        self.loads = list(loads)
        self.dims = dims
        self.seed = seed
        manager = server.manager
        self.group = group_size(manager, resolve_dims(manager, dims))
        mram = manager.system.mram_bytes
        if region_bytes is None:
            region_bytes = mram // len(loads)
        if region_bytes * len(loads) > mram:
            raise ValueError(
                f"{len(loads)} regions of {region_bytes} B exceed the "
                f"{mram} B of MRAM per PE")
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.region_bytes = region_bytes
        self.slots = slots
        self.slot_bytes = region_bytes // slots
        # The largest request must fit its half-slot even when a
        # primitive fans out by the group size (allgather's dst span).
        align = self.group * 8
        self.base_bytes = max(align,
                              (self.slot_bytes // 2 // self.group)
                              // align * align)
        self.sessions = {
            load.tenant_id: server.session(
                load.tenant_id, priority=load.priority, weight=load.weight)
            for load in loads}

    def seed_payloads(self, seed: int | None = None) -> dict[str, float]:
        """Write every tenant's source payloads; returns zero fractions.

        MRAM starts all-zero, which content-aware elision
        (``SessionConfig(elide_transfers=True)``) would read as a
        100%-sparse workload -- honest load generation seeds real
        content first.  Tenants on a MoE mix (:func:`make_moe_mix`)
        get structured-sparse activations: each source half-slot
        splits into the mix's ``experts`` capacity segments, a
        Zipf(``skew``)-weighted router picks the round's hot experts
        *globally* (real routers go cold on the same experts
        everywhere, and only globally-cold segments line up into
        all-zero destination rows an AlltoAll can elide), and cold
        segments stay zero -- about the mix's ``sparsity`` fraction.
        Sizing ``experts`` to the communication group makes the
        segments coincide with AlltoAll's per-destination blocks, the
        maximum-elision alignment.  Every other mix gets dense nonzero
        bytes.  Deterministic per seed (defaults to the generator's
        own); returns tenant id -> achieved zero fraction.
        """
        rng = np.random.default_rng(self.seed if seed is None else seed)
        system = self.server.manager.system
        pes = self.server.manager.all_pes
        half = self.slot_bytes // 2
        # Expert segments split the *request window* (full-scale
        # requests move base_bytes, not the whole half-slot): only
        # content the collectives actually transfer can be elided.
        window = min(self.base_bytes, half)
        fractions: dict[str, float] = {}
        for index, load in enumerate(self.loads):
            mix_fn = MIXES[load.mix]
            experts = getattr(mix_fn, "experts", 0)
            region = index * self.region_bytes
            zero_bytes = 0
            for slot in range(self.slots):
                src = region + slot * self.slot_bytes
                cold = np.zeros(0, dtype=np.intp)
                if experts:
                    sparsity = mix_fn.sparsity  # type: ignore[attr-defined]
                    skew = mix_fn.skew  # type: ignore[attr-defined]
                    n_cold = min(experts - 1, round(experts * sparsity))
                    # Zipf popularity: the tail is the likeliest cold.
                    weight = 1.0 / (np.arange(experts) + 1.0) ** skew
                    chill = (1.0 / weight) / (1.0 / weight).sum()
                    cold = rng.choice(experts, size=n_cold, replace=False,
                                      p=chill)
                edges = np.linspace(0, window, experts + 1).astype(int) \
                    if experts else None
                for pe in pes:
                    buf = rng.integers(1, 256, half, dtype=np.uint8)
                    for e in cold:
                        buf[edges[e]:edges[e + 1]] = 0
                    system.memory(pe).write(src, buf)
                if edges is not None:
                    zero_bytes += int(sum(edges[e + 1] - edges[e]
                                          for e in cold)) * len(pes)
            total = window * self.slots * len(pes)
            fractions[load.tenant_id] = zero_bytes / total if total else 0.0
        return fractions

    def _quantize(self, scale: float) -> int:
        """A request size: ``scale * base``, aligned, never zero."""
        align = self.group * 8
        nbytes = int(self.base_bytes * scale) // align * align
        return max(align, nbytes)

    def requests_for(self, load: TenantLoad, round_idx: int,
                     rng: random.Random) -> list[CommRequest]:
        """The round's requests for one tenant, offsets in its region.

        Steps rotate through the tenant's buffer slots, so within a
        burst only every ``slots``-th request reuses a buffer.
        """
        index = self.loads.index(load)
        region = index * self.region_bytes
        requests = []
        for step, (primitive, scale) in enumerate(
                MIXES[load.mix](round_idx, rng)):
            slot = region + (step % self.slots) * self.slot_bytes
            requests.append(CommRequest(
                primitive, self.dims, self._quantize(scale),
                src_offset=slot, dst_offset=slot + self.slot_bytes // 2,
                tag=f"{load.mix}:r{round_idx}"))
        return requests

    def round_requests(self, round_idx: int) -> list[tuple[str, CommRequest]]:
        """Every tenant's requests for one round, in arrival order.

        Deterministic per (seed, round): the serving benchmark replays
        the exact same list through a solo session to build its
        serialized baseline.
        """
        out: list[tuple[str, CommRequest]] = []
        for load in self.loads:
            # Stable across processes (str hashing is randomized;
            # crc32 is not), so a seed pins the whole run.
            rng = random.Random(
                self.seed * 1_000_003 + round_idx * 1_009
                + zlib.crc32(load.tenant_id.encode()))
            for request in self.requests_for(load, round_idx, rng):
                out.append((load.tenant_id, request))
        return out

    async def run(self, rounds: int = 4, *,
                  lockstep: bool = True) -> dict[str, Any]:
        """Replay ``rounds`` rounds of every tenant's mix; report.

        Each round submits every tenant's steps (interleaved tenant by
        tenant, modelling concurrent arrival).  ``lockstep=True``
        (default) drains the server between rounds -- epoch-style
        workloads where round N+1 waits on round N.  ``lockstep=False``
        is the open-loop shape: all rounds arrive up front and the
        server drains once, keeping every tenant backlogged so
        batches stay maximally wide (the throughput-gate setting).
        Shed and rejected requests are counted, never raised.  Returns
        the JSON-ready report (see :meth:`report`).
        """
        outcomes: dict[str, dict[str, int]] = {
            load.tenant_id: {"ok": 0, "shed": 0, "rejected": 0}
            for load in self.loads}
        futures: list[tuple[str, asyncio.Future]] = []

        async def settle() -> None:
            await self.server.drain()
            gathered = await asyncio.gather(
                *(future for _, future in futures), return_exceptions=True)
            for (tenant_id, _), result in zip(futures, gathered):
                if isinstance(result, RequestShed):
                    outcomes[tenant_id]["shed"] += 1
                elif isinstance(result, BaseException):
                    raise result
                else:
                    outcomes[tenant_id]["ok"] += 1
            futures.clear()

        for round_idx in range(rounds):
            for tenant_id, request in self.round_requests(round_idx):
                try:
                    futures.append((tenant_id,
                                    self.sessions[tenant_id].submit(request)))
                except (AdmissionRejected, QuotaExceeded):
                    outcomes[tenant_id]["rejected"] += 1
            if lockstep:
                await settle()
        if futures:
            await settle()
        return self.report(rounds, outcomes)

    def report(self, rounds: int,
               outcomes: dict[str, dict[str, int]]) -> dict[str, Any]:
        """Assemble the JSON-ready run report from server statistics."""
        stats = self.server.stats
        tenants = {}
        for load in self.loads:
            tenant = stats.tenant(load.tenant_id)
            clock = stats.clock
            tenants[load.tenant_id] = {
                "mix": load.mix,
                "priority": load.priority,
                "weight": load.weight,
                **tenant.snapshot(),
                "goodput_bytes_per_second":
                    tenant.bytes_completed / clock if clock else 0.0,
                **outcomes[load.tenant_id],
            }
        return {
            "rounds": rounds,
            "dims": self.dims,
            "seed": self.seed,
            "clock_seconds": stats.clock,
            "batches": stats.batches,
            "dispatched": stats.dispatched,
            "goodput_bytes_per_second": stats.goodput_bytes_per_second,
            "admission": {
                "admitted": self.server.admission_stats.admitted,
                "rejected": self.server.admission_stats.rejected,
                "shed": self.server.admission_stats.shed,
                "peak_depth": self.server.admission_stats.peak_depth,
            },
            "tenants": tenants,
        }
