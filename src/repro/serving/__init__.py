"""Multi-tenant serving front-end for the PID-Comm engine.

Many concurrent tenants, one machine: a
:class:`CollectiveServer` owns a single
:class:`~repro.engine.communicator.Communicator` session and admits
per-tenant :class:`Session` handles onto it.  Admission is bounded
(:class:`AdmissionQueue` -- overload sheds low-priority queued work or
rejects the arrival), dispatch is weighted fair-share
(:class:`FairShareScheduler` -- a greedy tenant cannot starve the
rest), and execution drains into the engine's hazard-wave batch
``submit()``, so every request returns exactly the result a solo
session would have produced.  :class:`LoadGenerator` replays the
paper-application mixes (:data:`MIXES`) and reports per-tenant
p50/p99 latency and goodput.
"""

from ..engine.session_config import SessionConfig
from .admission import AdmissionQueue, AdmissionStats, PendingRequest
from .fairness import FairShareScheduler
from .loadgen import MIXES, LoadGenerator, TenantLoad, make_moe_mix
from .server import CollectiveServer, ServerStats, TenantStats
from .session import Session, TenantSpec

__all__ = [
    "CollectiveServer", "Session", "TenantSpec", "SessionConfig",
    "AdmissionQueue", "AdmissionStats", "PendingRequest",
    "FairShareScheduler", "LoadGenerator", "TenantLoad", "MIXES",
    "make_moe_mix", "ServerStats", "TenantStats",
]
