"""Deep learning recommendation model on PIM-enabled DIMMs (section VII-A).

The DLRM embedding stage is split three ways and mapped onto a 3-D
hypercube exactly as Figure 11 describes: embedding *columns* over the
x axis, table *rows* over the y axis, and *tables* over the z axis.
One inference batch flows as:

1. Broadcast the multi-hot lookup indices to all PEs.
2. Lookup kernel: each PE pools the rows it owns (row-wise parallel
   pooling yields *partial* sums).
3. ReduceScatter along y completes the pooled embeddings and shards the
   batch over y (the paper's "row-wise parallelism" step).
4. AlltoAll over the xz plane regroups (table, column) slices into full
   per-sample feature vectors for the top MLP.
5. Top-MLP kernel on each PE's batch sub-shard; Gather returns scores.

Communication set: BC + SC-like routing, RS, AA, GA -- matching
Table III's DLRM row.  Functional runs use integer embeddings and are
validated bit-exactly against a golden pooled-embedding + MLP model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypercube import HypercubeManager
from ..data.synthetic import CriteoLikeDataset, embedding_tables
from ..dtypes import INT64
from ..errors import AppError
from .base import AppHarness, CommBackend


@dataclass(frozen=True)
class DlrmConfig:
    """DLRM model shape."""

    embedding_dim: int = 16
    mlp_hidden: int = 8
    seed: int = 0


def golden_dlrm(data: CriteoLikeDataset, tables: np.ndarray,
                w1: np.ndarray, w2: np.ndarray) -> np.ndarray:
    """Reference scores: pooled embeddings -> relu MLP -> linear."""
    batch, num_tables, _ = data.indices.shape
    dim = tables.shape[2]
    pooled = np.zeros((batch, num_tables, dim), dtype=np.int64)
    for s in range(batch):
        for t in range(num_tables):
            pooled[s, t] = tables[t, data.indices[s, t]].sum(axis=0)
    flat = pooled.reshape(batch, num_tables * dim)
    hidden = np.maximum(flat @ w1, 0)
    return hidden @ w2


class DlrmApp:
    """The DLRM benchmark application."""

    name = "DLRM"
    hypercube_dims = 3
    primitives = ("broadcast", "reduce_scatter", "alltoall", "gather",
                  "scatter")

    def __init__(self, data: CriteoLikeDataset, config: DlrmConfig) -> None:
        self.data = data
        self.config = config

    # ------------------------------------------------------------------
    def run(self, manager: HypercubeManager, backend: CommBackend,
            functional: bool = True):
        """Run one inference batch; functional runs return the scores."""
        cfg = self.config
        if manager.ndim != 3:
            raise AppError("DLRM expects a 3-D hypercube (cols, rows, tables)")
        cx, cy, cz = manager.shape.dims
        data = self.data
        b, t_all, hots = data.indices.shape
        e = cfg.embedding_dim
        r = data.num_rows
        if e % cx or r % cy or t_all % cz:
            raise AppError(
                f"DLRM shape mismatch: dim {e} % {cx}, rows {r} % {cy}, "
                f"tables {t_all} % {cz} must all be 0")
        if b % cy:
            raise AppError(f"batch {b} must divide over {cy} row shards")
        plane = cx * cz
        bs_y = b // cy                 # batch shard after ReduceScatter
        if bs_y % plane:
            raise AppError(
                f"batch shard {bs_y} must divide over the {plane}-PE xz plane")
        bs_final = bs_y // plane       # samples per PE for the top MLP
        ec = e // cx                   # embedding columns per PE
        tz = t_all // cz               # tables per PE
        feat = t_all * e               # full feature width per sample

        harness = AppHarness(manager, backend, functional)
        system = manager.system

        # Per-PE buffer sizes (in elements).
        partial_elems = b * tz * ec           # pooled partials, all samples
        shard_elems = bs_y * tz * ec          # after ReduceScatter
        full_elems = bs_y * tz * ec           # AlltoAll is size-preserving
        mlp_in_elems = bs_final * feat

        idx_bytes = b * t_all * hots * 8
        part_buf = system.alloc(partial_elems * 8) if functional else 0
        shard_buf = system.alloc(shard_elems * 8) if functional else 0
        aa_buf = system.alloc(full_elems * 8) if functional else 0
        score_buf = system.alloc(max(8, bs_final * 8)) if functional else 0

        rng = np.random.default_rng(cfg.seed)
        tables = w1 = w2 = None
        if functional:
            tables = embedding_tables(t_all, r, e, seed=cfg.seed)
            w1 = rng.integers(-2, 3, (feat, cfg.mlp_hidden)).astype(np.int64)
            w2 = rng.integers(-2, 3, (cfg.mlp_hidden, 1)).astype(np.int64)

        # 1. Broadcast the lookup indices to every PE.
        if functional:
            harness.comm("broadcast", "111", idx_bytes,
                         payloads={0: data.indices.reshape(-1)})
        else:
            harness.comm("broadcast", "111", idx_bytes)

        # 2. Lookup kernel: pool owned rows (partial sums over y shards).
        lookup_bytes = b * tz * hots / cy * ec * 8
        harness.kernel("lookup", ops_per_pe=b * tz * hots / cy * ec,
                       bytes_per_pe=2.0 * lookup_bytes + partial_elems * 8)
        if functional:
            self._lookup(manager, system, tables, part_buf, b, tz, ec, hots,
                         cy)

        # 3. ReduceScatter along y: complete the pools, shard the batch.
        harness.comm("reduce_scatter", "010", partial_elems * 8,
                     src=part_buf, dst=shard_buf)

        # 4. AlltoAll over the xz plane: feature slices -> full vectors.
        # The RS output is already ordered [sample, table, col] with
        # samples contiguous, so its plane sub-shards line up exactly
        # with the AlltoAll chunk boundaries -- no extra local shuffle.
        harness.comm("alltoall", "101", shard_elems * 8, src=shard_buf,
                     dst=aa_buf)

        # 5. Top MLP on each PE's sub-shard of samples (software MACs).
        mlp_flops = 7.0 * bs_final * (feat * cfg.mlp_hidden + cfg.mlp_hidden)
        harness.kernel("top_mlp", ops_per_pe=mlp_flops,
                       bytes_per_pe=8.0 * (mlp_in_elems
                                           + feat * cfg.mlp_hidden))
        if functional:
            self._top_mlp(manager, system, aa_buf, score_buf, bs_final,
                          plane, tz, ec, t_all, e, w1, w2)

        # 6. Gather the scores.
        outputs = harness.comm("gather", "111", max(8, bs_final * 8),
                               src=score_buf)
        output = None
        if functional and outputs is not None:
            output = self._assemble_scores(manager, outputs[0], b, bs_final,
                                           plane, cy)
        result = harness.result(self.name, output=output, batch=b,
                                tables=t_all, dim=e, hots=hots)
        if functional:
            result.meta["golden"] = golden_dlrm(data, tables, w1, w2)
        return result

    # ------------------------------------------------------------------
    # Functional kernels
    # ------------------------------------------------------------------
    def _shards(self, manager, pe):
        x, y, z = manager.coords_of_pe(pe)
        return x, y, z

    def _lookup(self, manager, system, tables, part_buf, b, tz, ec, hots,
                cy):
        data = self.data
        r_shard = data.num_rows // cy
        for pe in manager.all_pes:
            x, y, z = self._shards(manager, pe)
            partial = np.zeros((b, tz, ec), dtype=np.int64)
            for t_local in range(tz):
                t = z * tz + t_local
                tbl = tables[t]
                for s in range(b):
                    for idx in data.indices[s, t]:
                        if y * r_shard <= idx < (y + 1) * r_shard:
                            partial[s, t_local] += tbl[idx,
                                                       x * ec:(x + 1) * ec]
            system.write_elements(pe, part_buf, partial.reshape(-1), INT64)

    def _top_mlp(self, manager, system, aa_buf, score_buf, bs_final, plane,
                 tz, ec, t_all, e, w1, w2):
        for pe in manager.all_pes:
            flat = system.read_elements(pe, aa_buf, bs_final * t_all * e,
                                        INT64)
            # AlltoAll delivered plane chunks in source-rank order; source
            # rank (x', z') carried tables z'-shard and columns x'-shard.
            feats = self._reassemble_features(flat, bs_final, plane, tz, ec,
                                              t_all, e)
            hidden = np.maximum(feats @ w1, 0)
            scores = (hidden @ w2).reshape(-1)
            system.write_elements(pe, score_buf, scores, INT64)

    def _reassemble_features(self, flat, bs_final, plane, tz, ec, t_all, e):
        cx = e // ec
        chunks = flat.reshape(plane, bs_final, tz, ec)
        feats = np.zeros((bs_final, t_all, e), dtype=np.int64)
        for rank in range(plane):
            # xz-plane group rank order: x varies fastest, then z.
            x = rank % cx
            z = rank // cx
            feats[:, z * tz:(z + 1) * tz, x * ec:(x + 1) * ec] = chunks[rank]
        return feats.reshape(bs_final, t_all * e)

    def _assemble_scores(self, manager, gathered, b, bs_final, plane, cy):
        """Map gathered per-PE scores back to batch order."""
        scores = np.zeros(b, dtype=np.int64)
        per_pe = max(1, bs_final)
        for node, pe in enumerate(manager.all_pes):
            x, y, z = self._shards(manager, pe)
            cx = manager.shape.dims[0]
            rank_in_plane = x + cx * z
            base = y * (b // cy) + rank_in_plane * bs_final
            chunk = gathered[node * per_pe:(node + 1) * per_pe]
            scores[base:base + bs_final] = chunk[:bs_final]
        return scores

    # ------------------------------------------------------------------
    #: Effective bandwidth of random embedding-row gathers on the CPU
    #: (cache-miss bound; each pooled row is a fresh DRAM access).
    CPU_GATHER_GBPS = 0.45
    CPU_MLP_FLOPS = 6.6e9

    def cpu_only_seconds(self, params) -> float:
        """CPU-only time (Figure 21): gather-bound embedding pooling."""
        del params
        data = self.data
        cfg = self.config
        b, t, hots = data.indices.shape
        e = cfg.embedding_dim
        feat = t * e
        lookup_bytes = 8.0 * b * t * hots * e
        mlp_flops = 2.0 * b * (feat * cfg.mlp_hidden + cfg.mlp_hidden)
        return (lookup_bytes / (self.CPU_GATHER_GBPS * 1e9)
                + mlp_flops / self.CPU_MLP_FLOPS)
