"""Graph neural networks on PIM-enabled DIMMs (paper section VII-B).

2-D parallelization on a ``p x p`` hypercube: PE ``(i, j)`` owns the
adjacency tile ``A[i-block, j-block]`` and a horizontal feature strip.
A layer is aggregation (SpGEMM) followed by combination (GeMM).  Two
strategies, as in the paper (Figure 12 / Algorithm 1):

* **RS&AR**: aggregation partials are ReduceScatter'ed into per-PE
  feature-column slices, combination multiplies the slice by the
  matching weight row-block (again yielding partials), and an AllReduce
  completes the layer.
* **AR&AG**: aggregation partials are AllReduce'd, combination computes
  2-D tiled results (each PE owns a column slice of the output), and an
  AllGather reassembles the strips for the next layer.

Both alternate the communication dimension every layer ("01" <-> "10"
in Algorithm 1): with a symmetric adjacency, running odd layers against
the transposed tile makes the strips produced by layer ``l`` exactly
the strips layer ``l+1`` consumes, with no extra shuffle.

Functional runs use integer features/weights and validate bit-exactly
against the golden dense model ``H <- relu((A @ H) @ W)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypercube import HypercubeManager
from ..data.graphs import CsrGraph, partition_2d
from ..dtypes import INT64, MIN, dtype_by_name
from ..errors import AppError
from .base import AppHarness, CommBackend

#: DPU ops per multiply-accumulate in the dense combination (the DPU
#: has no wide multiplier; a MAC costs ~6 software cycles plus the add).
#: Aggregation over a 0/1 adjacency is pure adds and stays at 2/edge.
DPU_OPS_PER_MAC = 7


@dataclass(frozen=True)
class GnnConfig:
    """GNN shape: ``layers`` rounds of aggregate+combine over ``features``."""

    features: int = 256
    layers: int = 3
    strategy: str = "rs_ar"  # or "ar_ag"
    #: Element width for the word-bit sensitivity study (Figure 22).
    #: Functional runs require "int64"; analytic runs accept any width
    #: (8-bit elements unlock cross-domain reduction, section V-C).
    dtype_name: str = "int64"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in ("rs_ar", "ar_ag"):
            raise AppError(f"unknown GNN strategy {self.strategy!r}")


def golden_gnn(adjacency: np.ndarray, features: np.ndarray,
               weights: list[np.ndarray]) -> np.ndarray:
    """Reference dense forward pass: H <- relu((A @ H) @ W) per layer."""
    h = features.astype(np.int64)
    a = adjacency.astype(np.int64)
    for w in weights:
        h = np.maximum((a @ h) @ w.astype(np.int64), 0)
    return h


class GnnApp:
    """The GNN benchmark application (both 2-D strategies)."""

    hypercube_dims = 2

    def __init__(self, graph: CsrGraph, config: GnnConfig) -> None:
        # GNN inputs are undirected graphs; symmetry also powers the
        # layer-to-layer dimension alternation.
        self.graph = graph.symmetrized()
        self.config = config

    @property
    def name(self) -> str:
        return "GNN-RS&AR" if self.config.strategy == "rs_ar" else "GNN-AR&AG"

    @property
    def primitives(self):
        if self.config.strategy == "rs_ar":
            return ("scatter", "reduce_scatter", "allreduce", "reduce")
        return ("scatter", "allreduce", "allgather", "gather")

    # ------------------------------------------------------------------
    def run(self, manager: HypercubeManager, backend: CommBackend,
            functional: bool = True):
        """Run the forward pass; functional runs return the final H."""
        cfg = self.config
        if manager.ndim != 2 or manager.shape.dims[0] != manager.shape.dims[1]:
            raise AppError("GNN expects a square 2-D hypercube")
        p = manager.shape.dims[0]
        n = self.graph.num_vertices
        f = cfg.features
        if n % p or f % p:
            raise AppError(f"n={n} and features={f} must divide by grid {p}")
        b = n // p          # vertex block per grid row
        fc = f // p         # feature columns per PE
        dt = dtype_by_name(cfg.dtype_name)
        if functional and dt.itemsize != 8:
            raise AppError("functional GNN runs validate with int64 "
                           "elements; narrower widths are analytic-only")
        esize = dt.itemsize
        harness = AppHarness(manager, backend, functional)
        system = manager.system

        strip_elems = b * f
        strip_bytes = strip_elems * esize
        tile_elems = b * fc

        strip_buf = system.alloc(strip_bytes) if functional else 0
        partial_buf = system.alloc(strip_bytes) if functional else 0
        slice_buf = system.alloc(tile_elems * 8) if functional else 0

        rng = np.random.default_rng(cfg.seed)
        tiles = None
        adjacency = None
        h0 = None
        weights: list[np.ndarray] = []
        if functional:
            tiles = [[t.dense for t in row]
                     for row in partition_2d(self.graph, p)]
            adjacency = self.graph.dense
            h0 = rng.integers(-2, 3, (n, f))
            weights = [rng.integers(-2, 3, (f, f)) for _ in range(cfg.layers)]

        # Initial scatter: every PE(i, j) receives its starting strip
        # (row-block j of H, the even-layer orientation).
        if functional:
            payload = np.concatenate([
                h0[self._strip_of(manager, pe, 0) * b:
                   (self._strip_of(manager, pe, 0) + 1) * b].reshape(-1)
                for pe in manager.all_pes]).astype(np.int64)
            harness.comm("scatter", "11", strip_bytes, dst=strip_buf,
                         dtype=dt, payloads={0: payload})
        else:
            harness.comm("scatter", "11", strip_bytes, dst=strip_buf,
                         dtype=dt)

        nnz_per_tile = self.graph.num_edges / (p * p)
        for layer in range(cfg.layers):
            dims = "10" if layer % 2 == 0 else "01"
            harness.kernel(
                f"spgemm{layer}", ops_per_pe=2.0 * nnz_per_tile * f,
                bytes_per_pe=8.0 * (2 * strip_elems + nnz_per_tile * 2))
            if functional:
                self._spgemm(manager, system, tiles, layer, strip_buf,
                             partial_buf, b, f)
            if cfg.strategy == "rs_ar":
                self._layer_rs_ar(harness, manager, layer, dims, weights,
                                  strip_buf, partial_buf, slice_buf,
                                  b, f, fc, dt, functional)
            else:
                self._layer_ar_ag(harness, manager, layer, dims, weights,
                                  strip_buf, partial_buf, slice_buf,
                                  b, f, fc, dt, functional)

        # Retrieve the final strips (RD for RS&AR, GA for AR&AG).
        output = None
        if cfg.strategy == "rs_ar":
            final_dims = "10" if (cfg.layers - 1) % 2 == 0 else "01"
            outputs = harness.comm("reduce", final_dims, strip_bytes,
                                   src=strip_buf, dtype=dt, op=MIN)
            if functional and outputs is not None:
                output = self._assemble(manager, outputs, cfg.layers, n, b, f)
        else:
            final_dims = "10" if (cfg.layers - 1) % 2 == 0 else "01"
            outputs = harness.comm("gather", final_dims, strip_bytes,
                                   src=strip_buf, dtype=dt)
            if functional and outputs is not None:
                outputs = {inst: buf[:strip_elems]
                           for inst, buf in outputs.items()}
                output = self._assemble(manager, outputs, cfg.layers, n, b, f)
        result = harness.result(self.name, output=output, grid=p,
                                features=f, layers=cfg.layers,
                                strategy=cfg.strategy)
        if functional:
            result.meta["golden"] = golden_gnn(adjacency, h0, weights)
        return result

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def _coords(self, manager, pe):
        x, y = manager.coords_of_pe(pe)
        # Grid convention: i = row = y, j = column = x.
        return y, x

    def _strip_of(self, manager, pe, layer) -> int:
        """Which row-block of H this PE's strip holds before ``layer``."""
        i, j = self._coords(manager, pe)
        return j if layer % 2 == 0 else i

    def _spgemm(self, manager, system, tiles, layer, strip_buf, partial_buf,
                b, f):
        """Aggregation: partial = tile (or its transpose) @ strip."""
        for pe in manager.all_pes:
            i, j = self._coords(manager, pe)
            tile = tiles[i][j] if layer % 2 == 0 else tiles[i][j].T
            strip = system.read_elements(pe, strip_buf, b * f,
                                         INT64).reshape(b, f)
            partial = tile @ strip
            system.write_elements(pe, partial_buf, partial.reshape(-1), INT64)

    # ------------------------------------------------------------------
    # RS&AR strategy
    # ------------------------------------------------------------------
    def _layer_rs_ar(self, harness, manager, layer, dims, weights,
                     strip_buf, partial_buf, slice_buf, b, f, fc, dt,
                     functional):
        system = manager.system
        p = manager.shape.dims[0]
        esize = dt.itemsize
        if functional:
            # Lay the partial out as p column-chunks for ReduceScatter.
            for pe in manager.all_pes:
                partial = system.read_elements(pe, partial_buf, b * f,
                                               INT64).reshape(b, f)
                chunks = np.ascontiguousarray(
                    partial.reshape(b, p, fc).transpose(1, 0, 2))
                system.write_elements(pe, partial_buf, chunks.reshape(-1),
                                      INT64)
        harness.comm("reduce_scatter", dims, b * f * esize, src=partial_buf,
                     dst=slice_buf, dtype=dt)
        harness.kernel(f"gemm{layer}",
                       ops_per_pe=float(DPU_OPS_PER_MAC) * b * fc * f,
                       bytes_per_pe=float(esize) * (b * fc + fc * f + b * f))
        if functional:
            w = weights[layer]
            for pe in manager.all_pes:
                rank = self._comm_rank(manager, pe, dims)
                sl = system.read_elements(pe, slice_buf, b * fc,
                                          INT64).reshape(b, fc)
                part = sl @ w[rank * fc:(rank + 1) * fc, :]
                system.write_elements(pe, partial_buf, part.reshape(-1),
                                      INT64)
        harness.comm("allreduce", dims, b * f * esize, src=partial_buf,
                     dst=strip_buf, dtype=dt)
        harness.kernel(f"relu{layer}", ops_per_pe=float(b * f),
                       bytes_per_pe=2.0 * esize * b * f)
        if functional:
            for pe in manager.all_pes:
                h = system.read_elements(pe, strip_buf, b * f, INT64)
                system.write_elements(pe, strip_buf, np.maximum(h, 0), INT64)

    # ------------------------------------------------------------------
    # AR&AG strategy
    # ------------------------------------------------------------------
    def _layer_ar_ag(self, harness, manager, layer, dims, weights,
                     strip_buf, partial_buf, slice_buf, b, f, fc, dt,
                     functional):
        system = manager.system
        p = manager.shape.dims[0]
        esize = dt.itemsize
        harness.comm("allreduce", dims, b * f * esize, src=partial_buf,
                     dst=partial_buf, dtype=dt)
        harness.kernel(f"gemm{layer}",
                       ops_per_pe=float(DPU_OPS_PER_MAC) * b * f * fc,
                       bytes_per_pe=float(esize) * (b * f + f * fc + b * fc))
        if functional:
            w = weights[layer]
            for pe in manager.all_pes:
                rank = self._comm_rank(manager, pe, dims)
                agg = system.read_elements(pe, partial_buf, b * f,
                                           INT64).reshape(b, f)
                tile = np.maximum(agg @ w[:, rank * fc:(rank + 1) * fc], 0)
                system.write_elements(pe, slice_buf, tile.reshape(-1), INT64)
        harness.kernel(f"relu{layer}", ops_per_pe=float(b * fc),
                       bytes_per_pe=2.0 * esize * b * fc)
        harness.comm("allgather", dims, b * fc * esize, src=slice_buf,
                     dst=strip_buf, dtype=dt)
        if functional:
            # The gathered buffer concatenates column tiles; interleave
            # them back into row-major strips (a PE-local reshape).
            for pe in manager.all_pes:
                flat = system.read_elements(pe, strip_buf, b * f, INT64)
                strip = flat.reshape(p, b, fc).transpose(1, 0, 2).reshape(
                    b, f)
                system.write_elements(pe, strip_buf, strip.reshape(-1),
                                      INT64)

    # ------------------------------------------------------------------
    def _comm_rank(self, manager, pe, dims) -> int:
        x, y = manager.coords_of_pe(pe)
        return x if dims == "10" else y

    def _assemble(self, manager, outputs, layers, n, b, f) -> np.ndarray:
        """Reassemble the full H from per-instance final strips."""
        result = np.zeros((n, f), dtype=np.int64)
        # The final rooted collective communicates along the last layer's
        # dimension, over which the strips are replicated; instance k
        # fixes the other coordinate to k and holds row-block k.
        for inst, buf in outputs.items():
            result[inst * b:(inst + 1) * b] = buf[:b * f].reshape(b, f)
        return result

    # ------------------------------------------------------------------
    #: Effective CPU rate for sparse aggregation + unoptimized GeMM
    #: (SpMM on CPUs runs at a few percent of peak flops).
    CPU_SPMM_FLOPS = 3.0e9

    def cpu_only_seconds(self, params) -> float:
        """CPU-only time (Figure 21): SparseP-style CPU kernels."""
        cfg = self.config
        n = self.graph.num_vertices
        m = self.graph.num_edges
        f = cfg.features
        flops = (2.0 * m * f + 2.0 * n * f * f) * cfg.layers
        nbytes = (16.0 * m + 8.0 * n * f * 3) * cfg.layers * 2
        return max(flops / self.CPU_SPMM_FLOPS,
                   params.cpu_time(0.0, nbytes))
