"""Application registry (Table III of the paper)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AppSpec:
    """One row of Table III."""

    name: str
    hypercube_dims: int
    primitives: tuple[str, ...]
    datasets: str
    environment: str


APP_REGISTRY = (
    AppSpec("DLRM", 3,
            ("scatter", "gather", "broadcast", "alltoall", "reduce_scatter"),
            "synthetic Criteo-like (for Criteo [54])",
            "emb. dim = 16, 32"),
    AppSpec("GNN-RS&AR", 2,
            ("scatter", "reduce", "reduce_scatter", "allreduce"),
            "R-MAT (for Pubmed [83], Reddit [34])", "layers = 3"),
    AppSpec("GNN-AR&AG", 2,
            ("scatter", "gather", "allgather", "allreduce"),
            "R-MAT (for Pubmed [83], Reddit [34])", "layers = 3"),
    AppSpec("BFS", 1,
            ("scatter", "reduce", "broadcast", "allreduce"),
            "R-MAT (for LiveJournal [102], Gowalla [13])", ""),
    AppSpec("CC", 1,
            ("scatter", "reduce", "broadcast", "allreduce"),
            "R-MAT (for LiveJournal [102], Gowalla [13])", ""),
    AppSpec("MLP", 1,
            ("scatter", "reduce", "reduce_scatter"),
            "random dense", "features = 16k, 32k; layers = 5"),
)

ALL_PRIMITIVE_COLUMNS = (
    "scatter", "gather", "reduce", "broadcast",
    "alltoall", "reduce_scatter", "allgather", "allreduce",
)


def app_table() -> list[dict[str, object]]:
    """Table III rows with one boolean column per primitive."""
    rows = []
    for spec in APP_REGISTRY:
        rows.append({
            "app": spec.name,
            "hyper_dim": spec.hypercube_dims,
            **{p: (p in spec.primitives) for p in ALL_PRIMITIVE_COLUMNS},
            "datasets": spec.datasets,
            "environment": spec.environment,
        })
    return rows
