"""Breadth-first search on PIM-enabled DIMMs (paper section VII-C).

1-D vertex partitioning: each PE owns a contiguous vertex block and its
out-edges.  Every iteration each PE expands the frontier restricted to
its own vertices and the per-PE next-frontier bitmaps are merged with a
bitwise-OR AllReduce -- the exact communication structure of the
paper's BFS (which follows the PrIM reference implementation [29]).

Functional runs compute real levels and are validated against a
host-side golden BFS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypercube import HypercubeManager
from ..data.graphs import CsrGraph, partition_1d
from ..dtypes import BOR, INT64
from ..errors import AppError
from .base import AppHarness, CommBackend


@dataclass(frozen=True)
class BfsConfig:
    """BFS run configuration."""

    source: int = 0
    max_iterations: int = 1 << 16


def golden_bfs(graph: CsrGraph, source: int) -> np.ndarray:
    """Reference BFS levels (-1 = unreachable)."""
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if levels[u] < 0:
                    levels[u] = level
                    nxt.append(int(u))
        frontier = nxt
    return levels


#: DPU ops per *touched* edge: a random bitmap probe + neighbour list
#: walk, dominated by MRAM latency.
DPU_OPS_PER_EDGE = 96


def _bitmap_words(n: int, group: int) -> int:
    """Bitmap length in 64-bit words, padded to the AllReduce group size."""
    words = (n + 63) // 64
    return ((words + group - 1) // group) * group


class BfsApp:
    """The BFS benchmark application."""

    name = "BFS"
    hypercube_dims = 1
    primitives = ("scatter", "allreduce", "broadcast", "reduce")

    def __init__(self, graph: CsrGraph, config: BfsConfig = BfsConfig()):
        self.graph = graph
        self.config = config

    def run(self, manager: HypercubeManager, backend: CommBackend,
            functional: bool = True):
        """Run BFS; functional runs return the level array."""
        if manager.ndim != 1:
            raise AppError("BFS expects a 1-D hypercube")
        p = manager.num_nodes
        n = self.graph.num_vertices
        if n % p:
            raise AppError(f"{n} vertices do not divide over {p} PEs")
        harness = AppHarness(manager, backend, functional)
        system = manager.system
        block = n // p
        words = _bitmap_words(n, p)
        bitmap_bytes = words * 8

        frontier_buf = system.alloc(bitmap_bytes) if functional else 0
        next_buf = system.alloc(bitmap_bytes) if functional else 0

        parts = partition_1d(self.graph, p) if functional else None
        avg_edges_per_pe = self.graph.num_edges / p

        # Scatter the partitioned adjacency lists (edge endpoints, 8B each).
        adj_bytes = max(8, int(avg_edges_per_pe) * 8)
        # The CSR slices stay host-side as the PE kernels' private
        # state; the scatter's cost is modelled all the same.
        harness.comm_cost_only("scatter", "1", ((adj_bytes + 7) // 8) * 8)

        levels = np.full(n, -1, dtype=np.int64)
        visited = np.zeros(words * 64, dtype=bool)
        frontier = np.zeros(words * 64, dtype=bool)
        if functional:
            src = self.config.source
            levels[src] = 0
            visited[src] = True
            frontier[src] = True
            self._write_bitmap(system, manager, frontier_buf, frontier)

        level = 0
        iterations = 0
        est_iterations = self._estimated_iterations()
        while True:
            iterations += 1
            level += 1
            if functional:
                # PE kernel: expand the frontier on owned vertices.
                for rank, pe in enumerate(manager.all_pes):
                    part = parts[rank]
                    nxt_local = np.zeros(words * 64, dtype=bool)
                    for v_local in range(block):
                        v = rank * block + v_local
                        if frontier[v]:
                            nxt_local[part.neighbors(v_local)] = True
                    self._write_bitmap(system, None, next_buf, nxt_local,
                                       pe=pe)
                harness.kernel("expand",
                               ops_per_pe=(DPU_OPS_PER_EDGE
                                           * avg_edges_per_pe
                                           / self._estimated_iterations()),
                               bytes_per_pe=2.0 * bitmap_bytes)
                harness.comm("allreduce", "1", bitmap_bytes, src=next_buf,
                             dst=next_buf, op=BOR)
                merged = self._read_bitmap(system, manager.all_pes[0],
                                           next_buf, words)
                new = merged & ~visited
                if not new.any() or iterations >= self.config.max_iterations:
                    break
                levels[np.flatnonzero(new[:n])] = level
                visited |= merged
                frontier = new
                self._write_bitmap(system, manager, frontier_buf, frontier)
            else:
                harness.kernel("expand",
                               ops_per_pe=(DPU_OPS_PER_EDGE
                                           * avg_edges_per_pe
                                           / est_iterations),
                               bytes_per_pe=2.0 * bitmap_bytes)
                harness.comm("allreduce", "1", bitmap_bytes, op=BOR)
                if iterations >= est_iterations:
                    break

        # Retrieve levels (each PE owns its block's results).
        harness.comm("reduce", "1", bitmap_bytes, op=BOR)
        output = levels if functional else None
        return harness.result(self.name, output=output,
                              iterations=iterations, vertices=n,
                              edges=self.graph.num_edges)

    # ------------------------------------------------------------------
    def _estimated_iterations(self) -> int:
        """Analytic iteration count: the effective BFS diameter.

        Power-law graphs have small diameters; use log2(n) as the
        standard estimate.
        """
        return max(3, int(np.log2(max(2, self.graph.num_vertices))))

    def _write_bitmap(self, system, manager, offset, bits, pe=None):
        data = np.packbits(bits, bitorder="little").view(np.int64)
        if pe is not None:
            system.write_elements(pe, offset, data, INT64)
            return
        for member in manager.all_pes:
            system.write_elements(member, offset, data, INT64)

    def _read_bitmap(self, system, pe, offset, words) -> np.ndarray:
        data = system.read_elements(pe, offset, words, INT64)
        return np.unpackbits(data.view(np.uint8), bitorder="little").astype(
            bool)

    #: CPU traversal cost per edge: a dependent cache miss amortized
    #: over a multi-core top-down BFS (calibrated to PrIM's baseline).
    CPU_SECONDS_PER_EDGE = 56e-9

    def cpu_only_seconds(self, params) -> float:
        """CPU-only time (Figure 21): latency-bound edge traversal."""
        del params  # latency-bound, not bandwidth-bound
        return self.graph.num_edges * self.CPU_SECONDS_PER_EDGE
