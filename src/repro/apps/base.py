"""Application harness: communication backends + per-primitive accounting.

Every benchmark application runs against a :class:`CommBackend`, which
decides whether collectives use PID-Comm or the evaluation baseline --
the application code is identical either way (exactly the promise of a
communication *library*).  The harness records a cost ledger per
primitive, which is what the paper's per-application breakdown figures
(4 and 13) plot.

The harness runs on the execution engine: every collective shape an
application issues is compiled once and served from a
:class:`~repro.engine.cache.PlanCache` on every later iteration (BFS
rounds, GNN layers, DLRM batches all repeat their shapes), and an
:class:`~repro.engine.stats.EngineStats` session records plans
compiled vs. cached, bytes moved, and per-category cost; the snapshot
lands in ``AppResult.meta["engine"]``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..baselines.simplepim import baseline_plan
from ..core.collectives import (
    FULL,
    GATHER_SCRATCH,
    REDUCE_SCRATCH,
    CommPlan,
    OptConfig,
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)
from ..core.groups import resolve_dims
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, INT64, ReduceOp, SUM
from ..engine.cache import PlanCache, bind_payloads
from ..engine.request import ARITHMETIC_PRIMITIVES, PlanKey
from ..engine.result import reduced_vector
from ..engine.stats import EngineStats
from ..errors import AppError
from ..hw.timing import CostLedger


class CommBackend(abc.ABC):
    """Builds collective plans; the strategy applications run against."""

    name: str = "abstract"

    @abc.abstractmethod
    def build_plan(self, primitive: str, manager: HypercubeManager,
                   dims: str, total_data_size: int, src: int = 0,
                   dst: int = 0, dtype: DataType = INT64,
                   op: ReduceOp = SUM,
                   payloads: Mapping[int, np.ndarray] | None = None
                   ) -> CommPlan:
        """Compile one collective invocation into a plan."""


class PidCommBackend(CommBackend):
    """Collectives through PID-Comm (optionally at an ablation level)."""

    def __init__(self, config: OptConfig = FULL) -> None:
        self.config = config
        self.name = f"pidcomm[{config.label}]"

    def build_plan(self, primitive, manager, dims, total_data_size,
                   src=0, dst=0, dtype=INT64, op=SUM, payloads=None):
        cfg = self.config
        if primitive == "alltoall":
            return plan_alltoall(manager, dims, total_data_size, src, dst,
                                 dtype, cfg)
        if primitive == "allgather":
            return plan_allgather(manager, dims, total_data_size, src, dst,
                                  dtype, cfg)
        if primitive == "reduce_scatter":
            return plan_reduce_scatter(manager, dims, total_data_size, src,
                                       dst, dtype, op, cfg)
        if primitive == "allreduce":
            return plan_allreduce(manager, dims, total_data_size, src, dst,
                                  dtype, op, cfg)
        if primitive == "gather":
            return plan_gather(manager, dims, total_data_size, src, dtype, cfg)
        if primitive == "scatter":
            return plan_scatter(manager, dims, total_data_size, dst, dtype,
                                payloads, cfg)
        if primitive == "reduce":
            return plan_reduce(manager, dims, total_data_size, src, dtype,
                               op, cfg)
        if primitive == "broadcast":
            return plan_broadcast(manager, dims, total_data_size, dst, dtype,
                                  payloads, cfg)
        raise AppError(f"unknown primitive {primitive!r}")


class BaselineCommBackend(CommBackend):
    """Collectives through the SimplePIM/conventional baseline."""

    name = "baseline"

    def build_plan(self, primitive, manager, dims, total_data_size,
                   src=0, dst=0, dtype=INT64, op=SUM, payloads=None):
        return baseline_plan(primitive, manager, dims, total_data_size,
                             src, dst, dtype, op, payloads)


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    backend: str
    ledger: CostLedger
    #: primitive (or "kernel") -> modelled seconds.
    per_primitive: dict[str, float]
    #: functional outputs for validation (None in analytic runs).
    output: Any = None
    #: free-form run metadata (config echo, iteration counts, ...).
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.ledger.total

    @property
    def comm_seconds(self) -> float:
        """Time in communication (everything except kernels)."""
        return self.seconds - self.per_primitive.get("kernel", 0.0)


class AppHarness:
    """Per-run accounting shared by all applications."""

    def __init__(self, manager: HypercubeManager, backend: CommBackend,
                 functional: bool = True) -> None:
        self.manager = manager
        self.system = manager.system
        self.backend = backend
        self.functional = functional
        self.ledger = CostLedger()
        self.per_primitive: dict[str, float] = {}
        self.cache = PlanCache()
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def _plan(self, primitive: str, dims: str, total_data_size: int,
              src: int, dst: int, dtype: DataType, op: ReduceOp
              ) -> tuple[CommPlan, bool]:
        """Cached payload-free plan for the invocation; (plan, hit)."""
        key = PlanKey(
            primitive=primitive,
            dims=resolve_dims(self.manager, dims),
            total_data_size=total_data_size, src_offset=src, dst_offset=dst,
            dtype=dtype.name,
            op=op.name if primitive in ARITHMETIC_PRIMITIVES else None,
            variant=self.backend.name,
            topology=self.manager.topology_signature())
        return self.cache.fetch(
            key, lambda: self.backend.build_plan(
                primitive, self.manager, dims, total_data_size, src, dst,
                dtype, op, None))

    def _account(self, primitive: str, plan: CommPlan, ledger: CostLedger,
                 cached: bool) -> None:
        self.ledger.merge(ledger)
        self.per_primitive[primitive] = (
            self.per_primitive.get(primitive, 0.0) + ledger.total)
        self.stats.record_call(primitive, plan, ledger, cached=cached)

    def comm(self, primitive: str, dims: str, total_data_size: int,
             src: int = 0, dst: int = 0, dtype: DataType = INT64,
             op: ReduceOp = SUM,
             payloads: Mapping[int, np.ndarray] | None = None):
        """Run one collective; returns host outputs for rooted primitives."""
        plan, hit = self._plan(primitive, dims, total_data_size, src, dst,
                               dtype, op)
        bound = bind_payloads(plan, payloads if self.functional else None)
        ledger, ctx = bound.run(self.system, functional=self.functional)
        self._account(primitive, plan, ledger, cached=hit)
        if ctx is None:
            return None
        if primitive == "gather":
            return self._typed_outputs(ctx.scratch.get(GATHER_SCRATCH), dtype)
        if primitive == "reduce":
            outputs = ctx.scratch.get(REDUCE_SCRATCH)
            if outputs is None:  # baseline reduce stores under its own key
                outputs = ctx.scratch.get("reduce.out")
            if outputs is None:
                return None
            return {inst: np.asarray(reduced_vector(buf, dtype)).view(
                dtype.np_dtype).reshape(-1)
                for inst, buf in outputs.items()}
        return None

    def comm_cost_only(self, primitive: str, dims: str,
                       total_data_size: int, src: int = 0, dst: int = 0,
                       dtype: DataType = INT64, op: ReduceOp = SUM) -> None:
        """Charge a collective without moving data.

        For transfers whose *content* is kernel-private state the
        simulator keeps host-side (e.g. the scattered adjacency
        slices): the cost is modelled, the bytes are not re-staged.
        """
        plan, hit = self._plan(primitive, dims, total_data_size, src, dst,
                               dtype, op)
        ledger = plan.estimate(self.system)
        self._account(primitive, plan, ledger, cached=hit)

    def _typed_outputs(self, outputs, dtype: DataType):
        if outputs is None:
            return None
        return {inst: np.asarray(buf, dtype=np.uint8).view(dtype.np_dtype)
                for inst, buf in outputs.items()}

    # ------------------------------------------------------------------
    # PE kernels
    # ------------------------------------------------------------------
    def kernel(self, name: str, ops_per_pe: float = 0.0,
               bytes_per_pe: float = 0.0, launches: int = 1) -> None:
        """Charge one PE-kernel phase (PEs run in parallel).

        ``ops_per_pe``/``bytes_per_pe`` should be the *maximum* over PEs
        (the lockstep launch waits for the slowest PE).
        """
        params = self.system.params
        seconds = (params.pe_compute_time(ops_per_pe)
                   + params.pe_stream_time(bytes_per_pe, passes=1) / 2
                   + launches * params.kernel_launch_s)
        self.ledger.add("kernel", seconds)
        self.per_primitive["kernel"] = (
            self.per_primitive.get("kernel", 0.0) + seconds)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self, app: str, output: Any = None,
               **meta: Any) -> AppResult:
        """Package the accumulated run into an :class:`AppResult`."""
        meta.setdefault("engine", self.stats.snapshot())
        return AppResult(app=app, backend=self.backend.name,
                         ledger=self.ledger,
                         per_primitive=dict(self.per_primitive),
                         output=output, meta=meta)
