"""Multi-layer perceptron on PIM-enabled DIMMs (paper section VII-E).

Column-wise model parallelism over a 1-D hypercube: PE ``p`` owns a
row-block of every weight matrix and the matching column-slice of the
activations.  Each layer computes a partial product on every PE and
ReduceScatters the partials so each PE ends with its column-slice of
the next layer's input -- the exact structure of the paper's optimized
MLP (weights 16k x 16k or 32k x 32k, 5 layers).

Functional runs use integer weights/activations and are validated
bit-exactly against a numpy golden model (including the ReLU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypercube import HypercubeManager
from ..dtypes import INT64
from ..errors import AppError
from .base import AppHarness, CommBackend

#: DPU ops per multiply-accumulate: the DPU ISA has no 32/64-bit
#: multiplier, so a MAC costs ~6 software cycles plus the add.
DPU_OPS_PER_MAC = 7


@dataclass(frozen=True)
class MlpConfig:
    """MLP shape: ``layers`` square weight matrices of ``features`` wide."""

    features: int = 16 * 1024
    layers: int = 5
    batch: int = 256
    seed: int = 0

    def validate(self, num_pes: int) -> None:
        """Check the shape divides over ``num_pes`` PEs."""
        if self.features % num_pes:
            raise AppError(
                f"features {self.features} must divide over {num_pes} PEs")
        if self.features // num_pes < 1:
            raise AppError("fewer than one feature column per PE")


def golden_mlp(x: np.ndarray, weights: list[np.ndarray]) -> np.ndarray:
    """Reference forward pass: x @ W_0 |> relu ... (int64)."""
    h = x.astype(np.int64)
    for i, w in enumerate(weights):
        h = h @ w.astype(np.int64)
        if i != len(weights) - 1:
            h = np.maximum(h, 0)
    return h


class MlpApp:
    """The MLP benchmark application."""

    name = "MLP"
    hypercube_dims = 1
    primitives = ("scatter", "reduce_scatter", "reduce")

    def __init__(self, config: MlpConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def run(self, manager: HypercubeManager, backend: CommBackend,
            functional: bool = True):
        """Run the benchmark; functional runs return the final activations."""
        cfg = self.config
        if manager.ndim != 1:
            raise AppError("MLP expects a 1-D hypercube")
        p = manager.num_nodes
        cfg.validate(p)
        harness = AppHarness(manager, backend, functional)
        cols = cfg.features // p          # columns owned per PE
        slice_elems = cfg.batch * cols    # activation slice per PE
        full_elems = cfg.batch * cfg.features

        system = manager.system
        act = system.alloc(slice_elems * 8) if functional else 0
        partial = system.alloc(full_elems * 8) if functional else 0

        rng = np.random.default_rng(cfg.seed)
        weights: list[np.ndarray] = []
        x = None
        if functional:
            x = rng.integers(-4, 4, (cfg.batch, cfg.features))
            weights = [rng.integers(-4, 4, (cfg.features, cfg.features))
                       for _ in range(cfg.layers)]
            payload = np.ascontiguousarray(
                x.reshape(cfg.batch, p, cols).transpose(1, 0, 2)
            ).astype(np.int64)
            harness.comm("scatter", "1", slice_elems * 8, dst=act,
                         payloads={0: payload})
        else:
            harness.comm("scatter", "1", slice_elems * 8, dst=act)

        for layer in range(cfg.layers):
            # GEMM kernel: (batch x cols) slice times the PE's (cols x
            # features) weight row-block -> (batch x features) partial.
            harness.kernel(
                f"gemm{layer}",
                ops_per_pe=DPU_OPS_PER_MAC * cfg.batch * cols * cfg.features,
                bytes_per_pe=8.0 * (slice_elems + cols * cfg.features
                                    + full_elems))
            if functional:
                w = weights[layer]
                for rank, pe in enumerate(manager.all_pes):
                    h = system.read_elements(pe, act, slice_elems,
                                             INT64).reshape(cfg.batch, cols)
                    part = h @ w[rank * cols:(rank + 1) * cols, :]
                    # Lay out as p chunks so ReduceScatter lands chunk r
                    # (columns of PE r) on PE r.
                    chunks = np.ascontiguousarray(
                        part.reshape(cfg.batch, p, cols).transpose(1, 0, 2))
                    system.write_elements(pe, partial, chunks.reshape(-1),
                                          INT64)
            harness.comm("reduce_scatter", "1", full_elems * 8, src=partial,
                         dst=act)
            if functional and layer != cfg.layers - 1:
                # ReLU runs on the PEs right after the scatter.
                for pe in manager.all_pes:
                    h = system.read_elements(pe, act, slice_elems, INT64)
                    system.write_elements(pe, act, np.maximum(h, 0), INT64)
            if layer != cfg.layers - 1:
                harness.kernel(f"relu{layer}", ops_per_pe=slice_elems,
                               bytes_per_pe=16.0 * slice_elems)

        output = None
        # Retrieve results with a Gather (each PE holds its column slice).
        gathered = harness.comm("gather", "1", slice_elems * 8, src=act)
        if functional and gathered is not None:
            stacked = np.stack([gathered[0][r * slice_elems:(r + 1)
                                            * slice_elems]
                                for r in range(p)])
            output = stacked.reshape(p, cfg.batch, cols).transpose(
                1, 0, 2).reshape(cfg.batch, cfg.features)
        result = harness.result(self.name, output=output,
                                features=cfg.features, layers=cfg.layers,
                                batch=cfg.batch)
        if functional:
            result.meta["golden"] = golden_mlp(x, weights)
        return result

    # ------------------------------------------------------------------
    #: Effective CPU rate of the PrIM-style unoptimized int64 GEMM
    #: baseline (non-blocked OpenMP loops run at a few percent of peak).
    CPU_GEMM_FLOPS = 5.1e9

    def cpu_only_seconds(self, params) -> float:
        """CPU-only time for the same workload (Figure 21).

        The paper compares against the PrIM [29] CPU implementations,
        which are straightforward OpenMP kernels, not tuned BLAS; their
        effective rate is the calibrated constant above.  The memory
        roofline still applies as a lower bound.
        """
        cfg = self.config
        flops = 2.0 * cfg.batch * cfg.features * cfg.features * cfg.layers
        nbytes = 8.0 * cfg.features * cfg.features * cfg.layers
        return max(flops / self.CPU_GEMM_FLOPS,
                   params.cpu_time(0.0, nbytes))
