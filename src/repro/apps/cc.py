"""Connected components on PIM-enabled DIMMs (paper section VII-D).

Label propagation over the symmetrized graph: every vertex starts with
its own id as label; each iteration every PE lowers the labels of its
block's neighbours and a *min* AllReduce merges the label arrays, until
a fixed point.  Same communication structure as BFS with min instead of
or (exactly as the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypercube import HypercubeManager
from ..data.graphs import CsrGraph, partition_1d
from ..dtypes import INT64, MIN
from ..errors import AppError
from .base import AppHarness, CommBackend


@dataclass(frozen=True)
class CcConfig:
    max_iterations: int = 1 << 16


#: DPU ops charged per edge per iteration: two random 8-byte label
#: accesses plus a compare/update, each a multi-ten-cycle MRAM round
#: trip.  This creates the PE-count sweet spot of Figure 21: kernels
#: shrink with more PEs while the label AllReduce grows.
DPU_OPS_PER_EDGE = 96


def golden_cc(graph: CsrGraph) -> np.ndarray:
    """Reference component labels: min vertex id in each component."""
    sym = graph.symmetrized()
    n = sym.num_vertices
    labels = np.arange(n, dtype=np.int64)
    changed = True
    while changed:
        changed = False
        for v in range(n):
            neigh = sym.neighbors(v)
            if len(neigh):
                low = min(labels[v], labels[neigh].min())
                if low < labels[v]:
                    labels[v] = low
                    changed = True
    return labels


class CcApp:
    """The connected-components benchmark application."""

    name = "CC"
    hypercube_dims = 1
    primitives = ("scatter", "allreduce", "broadcast", "reduce")

    def __init__(self, graph: CsrGraph, config: CcConfig = CcConfig()):
        # The paper preprocesses directed edges to undirected ones.
        self.graph = graph.symmetrized()
        self.config = config

    def run(self, manager: HypercubeManager, backend: CommBackend,
            functional: bool = True):
        """Run CC; functional runs return the component labels."""
        if manager.ndim != 1:
            raise AppError("CC expects a 1-D hypercube")
        p = manager.num_nodes
        n = self.graph.num_vertices
        if n % p:
            raise AppError(f"{n} vertices do not divide over {p} PEs")
        harness = AppHarness(manager, backend, functional)
        system = manager.system

        # Pad the label array so AllReduce chunks divide evenly.
        padded = ((n + p - 1) // p) * p
        label_bytes = padded * 8
        block = n // p
        buf = system.alloc(label_bytes) if functional else 0
        parts = partition_1d(self.graph, p) if functional else None
        avg_edges_per_pe = self.graph.num_edges / p

        harness.comm_cost_only("scatter", "1",
                               max(8, int(avg_edges_per_pe) * 8 // 8 * 8))

        labels = np.full(padded, np.iinfo(np.int64).max, dtype=np.int64)
        labels[:n] = np.arange(n)
        if functional:
            for pe in manager.all_pes:
                system.write_elements(pe, buf, labels, INT64)

        iterations = 0
        est_iterations = self._estimated_iterations()
        prev_merged = labels.copy()
        while True:
            iterations += 1
            if functional:
                for rank, pe in enumerate(manager.all_pes):
                    local = system.read_elements(pe, buf, padded, INT64
                                                 ).copy()
                    part = parts[rank]
                    for v_local in range(block):
                        v = rank * block + v_local
                        neigh = part.neighbors(v_local)
                        if len(neigh):
                            low = min(local[v], local[neigh].min())
                            if low < local[v]:
                                local[v] = low
                            # Propagate the vertex's label outward too.
                            local[neigh] = np.minimum(local[neigh], local[v])
                    system.write_elements(pe, buf, local, INT64)
                harness.kernel(
                    "propagate",
                    ops_per_pe=DPU_OPS_PER_EDGE * avg_edges_per_pe,
                    bytes_per_pe=2.0 * label_bytes)
                harness.comm("allreduce", "1", label_bytes, src=buf, dst=buf,
                             op=MIN)
                merged = system.read_elements(manager.all_pes[0], buf,
                                              padded, INT64).copy()
                if np.array_equal(merged, prev_merged):
                    break
                prev_merged = merged
                if iterations >= self.config.max_iterations:
                    break
            else:
                harness.kernel(
                    "propagate",
                    ops_per_pe=DPU_OPS_PER_EDGE * avg_edges_per_pe,
                    bytes_per_pe=2.0 * label_bytes)
                harness.comm("allreduce", "1", label_bytes, op=MIN)
                if iterations >= est_iterations:
                    break

        harness.comm("reduce", "1", label_bytes, op=MIN)
        output = None
        if functional:
            output = system.read_elements(manager.all_pes[0], buf, padded,
                                          INT64)[:n].copy()
        return harness.result(self.name, output=output,
                              iterations=iterations, vertices=n,
                              edges=self.graph.num_edges)

    def _estimated_iterations(self) -> int:
        """Label propagation converges in ~diameter iterations."""
        return max(4, int(np.log2(max(2, self.graph.num_vertices))))

    #: CPU label-propagation cost per edge per iteration (mostly one
    #: cache miss amortized over the cores).
    CPU_SECONDS_PER_EDGE = 35e-9

    def cpu_only_seconds(self, params) -> float:
        """CPU-only time (Figure 21): iterated label propagation."""
        del params
        iters = self._estimated_iterations()
        return self.graph.num_edges * iters * self.CPU_SECONDS_PER_EDGE
