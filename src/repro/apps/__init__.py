"""The paper's five benchmark applications (section VII)."""

from .base import (
    AppHarness,
    AppResult,
    BaselineCommBackend,
    CommBackend,
    PidCommBackend,
)
from .mlp import MlpApp, MlpConfig
from .bfs import BfsApp, BfsConfig
from .cc import CcApp, CcConfig
from .gnn import GnnApp, GnnConfig
from .dlrm import DlrmApp, DlrmConfig
from .registry import APP_REGISTRY, app_table

__all__ = [
    "AppHarness", "AppResult", "CommBackend", "PidCommBackend",
    "BaselineCommBackend",
    "MlpApp", "MlpConfig", "BfsApp", "BfsConfig", "CcApp", "CcConfig",
    "GnnApp", "GnnConfig", "DlrmApp", "DlrmConfig",
    "APP_REGISTRY", "app_table",
]
