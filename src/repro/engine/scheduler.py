"""Batch scheduling: dependency waves and overlap-aware pricing.

``submit()`` hands the engine a list of requests at once.  The
scheduler splits them into *waves*: request ``i`` joins the earliest
wave after every earlier request it has a buffer hazard with (RAW, WAR
or WAW on per-PE MRAM intervals -- see
:meth:`~repro.engine.request.Footprint.conflicts_with`).  Requests in
one wave are data-independent instances, so

* functionally they may run in any order (the engine keeps submission
  order, which is trivially hazard-free *within* a wave), and
* analytically the wave is priced with
  :meth:`~repro.hw.timing.CostLedger.merge_concurrent`: bus bursts and
  PE kernels of different instances overlap (max), host-core phases
  serialize (sum), and the batched launch/sync is paid once.

Waves are serialized against each other with plain :meth:`merge` -- a
dependent request waits for its producers, exactly the host-side
serialization a one-call-at-a-time API forces on *every* pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import CollectiveError
from ..hw.timing import CostLedger
from .request import NormalizedRequest


def schedule_waves(requests: Sequence[NormalizedRequest]) -> list[list[int]]:
    """Partition request indices into dependency waves.

    Returns wave -> list of request indices, both in submission order.
    """
    footprints = [req.footprint() for req in requests]
    wave_of: list[int] = []
    for i, fp in enumerate(footprints):
        wave = 0
        for j in range(i):
            if footprints[j].conflicts_with(fp):
                wave = max(wave, wave_of[j] + 1)
        wave_of.append(wave)
    if not wave_of:
        return []
    waves: list[list[int]] = [[] for _ in range(max(wave_of) + 1)]
    for i, wave in enumerate(wave_of):
        waves[wave].append(i)
    return waves


def assert_wave_safety(requests: Sequence[NormalizedRequest],
                       waves: Sequence[Sequence[int]]) -> None:
    """Verify every same-wave pair is hazard-free (raises otherwise).

    This is the invariant the parallel engine executes on: two
    requests sharing a wave have no RAW/WAR/WAW overlap on any MRAM
    byte interval (footprints are PE-set-blind, so the check is
    conservative -- intervals are treated as conflicting even when the
    requests' PE sets are disjoint), which makes their concurrent
    writes land in provably disjoint byte ranges.  The concurrency
    test battery property-checks :func:`schedule_waves` through this;
    it is O(n^2) per wave and not on any hot path.
    """
    footprints = [req.footprint() for req in requests]
    for w, indices in enumerate(waves):
        for a, i in enumerate(indices):
            for j in indices[a + 1:]:
                if footprints[i].conflicts_with(footprints[j]):
                    raise CollectiveError(
                        f"wave {w} schedules conflicting requests "
                        f"{i} ({requests[i].describe()}) and "
                        f"{j} ({requests[j].describe()}) concurrently")


@dataclass
class WaveCost:
    """Priced record of one wave."""

    index: int
    request_indices: list[int]
    #: Overlap-aware combined cost of the wave's instances.
    ledger: CostLedger
    #: What the same instances cost priced one after another.
    serial_seconds: float


def price_waves(waves: Sequence[Sequence[int]],
                ledgers: Sequence[CostLedger]) -> list[WaveCost]:
    """Apply overlap-aware pricing per wave.

    ``ledgers[i]`` is request ``i``'s solo ledger; waves of one request
    keep it verbatim (a batch of one is a serial call).
    """
    costs = []
    for w, indices in enumerate(waves):
        members = [ledgers[i] for i in indices]
        serial = sum(lg.total for lg in members)
        if len(members) == 1:
            merged = members[0].copy()
        else:
            merged = CostLedger.merge_concurrent(members)
        costs.append(WaveCost(index=w, request_indices=list(indices),
                              ledger=merged, serial_seconds=serial))
    return costs
