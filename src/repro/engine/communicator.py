"""The session-based frontend: :class:`Communicator`.

A :class:`Communicator` binds a hypercube manager to an execution
session: a plan compilation cache, an overlap-aware batch submitter,
and per-call instrumentation.  It is the recommended API, and since
the serving redesign it is constructed from one frozen
:class:`SessionConfig` value::

    from repro import Communicator, DimmSystem, HypercubeManager, SessionConfig

    system = DimmSystem.paper_testbed()
    comm = Communicator(HypercubeManager(system, shape=(32, 32)),
                        SessionConfig(backend="vectorized"))
    result = comm.allreduce("10", 8 << 20, src_offset=src, dst_offset=dst,
                            data_type="int64", reduction_type="sum")

The eight legacy keyword arguments (``config=``, ``functional=``, ...)
keep working but are deprecated: they route through
:meth:`SessionConfig.from_kwargs` and emit a :class:`DeprecationWarning`
naming the migration.  Many concurrent callers should not construct
sessions at all -- :class:`repro.serving.CollectiveServer` multiplexes
tenants onto one shared session with admission control and fair-share
scheduling.

The eight methods mirror the paper's Figure-10 primitives with
*consistent keyword-only* ``src_offset``/``dst_offset``/``payloads``
arguments (the legacy ``pidcomm_*`` functions keep the C-style
positional signatures and delegate here).  Repeated calls with the same
shape reuse the compiled plan -- steady state performs zero re-planning
-- and ``submit()`` takes a whole batch of :class:`CommRequest`\\ s,
schedules data-independent instances into concurrent waves, and prices
them with :meth:`CostLedger.merge_concurrent`.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from time import perf_counter
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.collectives import (
    GATHER_SCRATCH,
    REDUCE_SCRATCH,
    CommPlan,
    CommProgram,
    OptConfig,
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)
from ..core.collectives.planner import _payload_bytes
from ..core.groups import member_pes
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, ReduceOp
from ..errors import (
    CollectiveError,
    FaultBudgetExceeded,
    RankFailure,
    TransientFault,
)
from ..hw.arena import ScratchPool
from ..hw.timing import CostLedger
from ..reliability import FaultInjector, RELIABLE, ReliabilityPolicy
from .cache import DEFAULT_MAXSIZE, PlanCache, bind_payloads
from .parallel import WorkerPool
from .request import CommRequest, NormalizedRequest
from .result import BatchResult, CommFuture, CommResult, reduced_vector
from .scheduler import price_waves, schedule_waves
from .session_config import EXECUTION_MODES, SessionConfig
from .stats import EngineStats

#: One PE's saved MRAM intervals: ``(pe_id, offset, bytes)`` records.
_Snapshot = list[tuple[int, int, np.ndarray]]

#: Sentinel distinguishing "kwarg not passed" from an explicit None.
_UNSET: Any = object()

#: Names of the deprecated legacy constructor kwargs, in the order the
#: old signature declared them (used for the migration hint).
_LEGACY_KWARGS = ("config", "functional", "cache_size", "reliability",
                  "fault_injector", "backend", "execution",
                  "stream_tile_bytes")


class Communicator:
    """Session-oriented collective engine over one hypercube manager.

    Args:
        manager: The virtual hypercube the session communicates over.
        session_config: Frozen :class:`SessionConfig` describing the
            session (optimization config, functional vs. analytic,
            cache bound, reliability, backend, execution mode,
            streaming).  None means the all-defaults config.
        **legacy: The eight pre-redesign keyword arguments (``config``,
            ``functional``, ``cache_size``, ``reliability``,
            ``fault_injector``, ``backend``, ``execution``,
            ``stream_tile_bytes``) are still accepted, route through
            :meth:`SessionConfig.from_kwargs`, and emit a
            :class:`DeprecationWarning`; they cannot be combined with
            ``session_config``.
    """

    def __init__(self, manager: HypercubeManager,
                 session_config: SessionConfig | None = None, *,
                 config: OptConfig = _UNSET,
                 functional: bool = _UNSET,
                 cache_size: int | None = _UNSET,
                 reliability: ReliabilityPolicy | None = _UNSET,
                 fault_injector: FaultInjector | None = _UNSET,
                 backend: str | None = _UNSET,
                 execution: str = _UNSET,
                 stream_tile_bytes: int | None = _UNSET) -> None:
        passed = dict(zip(_LEGACY_KWARGS,
                          (config, functional, cache_size, reliability,
                           fault_injector, backend, execution,
                           stream_tile_bytes)))
        legacy = {name: value for name, value in passed.items()
                  if value is not _UNSET}
        if legacy:
            if session_config is not None:
                raise CollectiveError(
                    "pass either session_config or the legacy keyword "
                    f"arguments, not both (got session_config and "
                    f"{sorted(legacy)})")
            hint = ", ".join(f"{k}=..." for k in legacy)
            warnings.warn(
                f"Communicator({hint}) keyword arguments are deprecated; "
                f"pass Communicator(manager, SessionConfig({hint})) "
                "instead (see docs/serving.md)",
                DeprecationWarning, stacklevel=2)
            session_config = SessionConfig.from_kwargs(**legacy)
        elif session_config is None:
            session_config = SessionConfig()
        #: The frozen configuration this session was built from.
        self.session_config = session_config
        self.manager = manager
        self.config = session_config.config
        self.functional = session_config.functional
        self.execution = session_config.execution
        self.stream_tile_bytes = session_config.stream_tile_bytes
        #: Content-aware transfer elision default for compiled replays
        #: (a tuned schedule's ``elide`` knob overrides per decision).
        self.elide_transfers = session_config.elide_transfers
        #: Autotune mode (None / "offline" / "online").
        self.autotune = session_config.autotune
        #: The session's schedule tuner (None unless autotuning).
        #: Imported lazily: ``analysis`` pulls in the application
        #: harness, which imports this module.
        self.tuner = None
        if self.autotune is not None:
            from ..analysis.autotune import ScheduleSpace, Tuner
            self.tuner = Tuner(manager,
                               ScheduleSpace.from_session(session_config),
                               mode=self.autotune)
        #: Session-owned streaming scratch, reused across every call so
        #: steady-state streamed replay performs zero heap allocations.
        #: An autotuned session may pick a streamed schedule at any
        #: point, so it always owns a pool.
        self._scratch = (ScratchPool()
                         if self.stream_tile_bytes or self.autotune
                         else None)
        #: Session-owned worker pool (None = serial, the default);
        #: runs hazard-independent wave members and streamed row bands
        #: concurrently.  See docs/performance.md "Parallel replay".
        self._pool = (WorkerPool(session_config.parallel_workers)
                      if session_config.parallel_workers > 1 else None)
        if session_config.backend is not None:
            manager.system.set_backend(session_config.backend)
        self.cache = PlanCache(maxsize=session_config.cache_size)
        self.stats = EngineStats(
            parallel_workers=session_config.parallel_workers)
        reliability_policy = session_config.reliability
        if session_config.fault_injector is not None:
            manager.system.attach_fault_injector(
                session_config.fault_injector)
            if reliability_policy is None:
                reliability_policy = RELIABLE
        self.reliability = reliability_policy
        #: True once a permanent rank failure forced a remap; every
        #: later result reports it ran on the degraded cube.
        self.degraded = False

    @property
    def backend(self) -> str:
        """The execution backend of the session's system."""
        return self.manager.system.backend

    # ------------------------------------------------------------------
    # Engine internals
    # ------------------------------------------------------------------
    def _plan_cache_for(self, req: NormalizedRequest):
        """The cache view ``req`` resolves plans through.

        Requests carrying a tenant id (the serving front-end stamps
        one on every admitted request) go through that tenant's
        :meth:`~repro.engine.cache.PlanCache.partition` so one tenant
        cycling through many shapes can never evict another tenant's
        steady-state plans.
        """
        if req.tenant is None:
            return self.cache
        return self.cache.partition(req.tenant)

    def _compile(self, req: NormalizedRequest) -> tuple[CommPlan, bool]:
        """Cached plan for ``req`` (payload-free); returns (plan, hit)."""
        cache = self._plan_cache_for(req)
        plan, hit = cache.fetch(req.plan_key,
                                lambda: self._build_plan(req))
        self.stats.plan_evictions = self.cache.evictions
        if req.tenant is not None:
            self.stats.plan_partitions[req.tenant] = cache.counters()
        return plan, hit

    def _tuned(self, req: NormalizedRequest) -> NormalizedRequest:
        """Resolve ``req``'s execution schedule through the tuner.

        Untuned sessions return the request unchanged.  Tuned sessions
        first pin the space's statically preferred backend (so every
        candidate plan/program is cached under the key steady-state
        execution will look up), then ask the tuner for a schedule --
        a cached decision, a shortlist candidate being probed, or a
        fresh search -- and stamp it (plus its rung) on the request.
        """
        if self.tuner is None or req.schedule is not None:
            return req
        preferred = self.tuner.preferred_backend
        if preferred != self.backend:
            self.manager.system.set_backend(preferred)
        if preferred != req.backend:
            req = replace(req, backend=preferred)
        schedule = self.tuner.schedule_for(
            req, self._plan_cache_for(req), self.stats,
            plan_for=lambda rung: self._candidate_plan(req, rung),
            program_for=lambda rung: self._candidate_program(req, rung))
        return replace(req, config=schedule.rung, schedule=schedule)

    def _candidate_plan(self, req: NormalizedRequest,
                        rung: OptConfig) -> CommPlan:
        """A candidate rung's (cached) plan, for schedule pricing."""
        sub = replace(req, config=rung, schedule=None)
        plan, _ = self._compile(sub)
        return plan

    def _candidate_program(self, req: NormalizedRequest,
                           rung: OptConfig) -> CommProgram:
        """A candidate rung's (cached) compiled program.

        Goes through the same plan-cache entries the engine replays
        from, so nothing priced during search is compiled twice.
        """
        sub = replace(req, config=rung, schedule=None)
        plan, _ = self._compile(sub)

        def build() -> CommProgram:
            start = perf_counter()
            program = plan.compile(self.manager.system)
            self.stats.record_compile(perf_counter() - start)
            return program

        program, _ = self._plan_cache_for(sub).fetch_program(sub.plan_key,
                                                             build)
        return program

    def _program_for(self, req: NormalizedRequest,
                     plan: CommPlan) -> CommProgram | None:
        """The compiled program to replay ``req`` with, if any.

        None means interpret: the session (or the request's tuned
        schedule) asked for it, or a fault injector is attached
        (compiled ops never consult the injector, so replaying would
        silently skip fault sites -- ``execution="compiled"`` makes
        that an error instead).
        """
        if req.schedule is not None:
            if req.schedule.execution == "interpreted":
                return None
        elif self.execution == "interpreted":
            return None
        if self.manager.system.fault_injector is not None:
            if self.execution == "compiled":
                raise CollectiveError(
                    "execution='compiled' bypasses the fault injector; "
                    "detach the injector or use execution='auto'")
            return None

        def build() -> CommProgram:
            start = perf_counter()
            program = plan.compile(self.manager.system,
                                   schedule=req.schedule)
            self.stats.record_compile(perf_counter() - start)
            return program

        program, _ = self._plan_cache_for(req).fetch_program(req.plan_key,
                                                             build)
        return program

    def _build_plan(self, req: NormalizedRequest) -> CommPlan:
        m, dims, size = self.manager, req.dims, req.total_data_size
        src, dst = req.src_offset, req.dst_offset
        dtype, op, cfg = req.dtype, req.op, req.config
        if req.primitive == "alltoall":
            return plan_alltoall(m, dims, size, src, dst, dtype, cfg)
        if req.primitive == "allgather":
            return plan_allgather(m, dims, size, src, dst, dtype, cfg)
        if req.primitive == "reduce_scatter":
            return plan_reduce_scatter(m, dims, size, src, dst, dtype, op,
                                       cfg)
        if req.primitive == "allreduce":
            return plan_allreduce(m, dims, size, src, dst, dtype, op, cfg)
        if req.primitive == "gather":
            return plan_gather(m, dims, size, src, dtype, cfg)
        if req.primitive == "scatter":
            return plan_scatter(m, dims, size, dst, dtype, None, cfg)
        if req.primitive == "reduce":
            return plan_reduce(m, dims, size, src, dtype, op, cfg)
        if req.primitive == "broadcast":
            return plan_broadcast(m, dims, size, dst, dtype, None, cfg)
        raise CollectiveError(f"unknown primitive {req.primitive!r}")

    def _run(self, req: NormalizedRequest, functional: bool) -> CommResult:
        """Compile (or fetch), execute, post-process, record."""
        if functional and req.primitive in ("scatter", "broadcast") \
                and req.payloads is None:
            raise CollectiveError(
                f"functional {req.primitive} needs payloads")
        if self.reliability is not None:
            if self.execution == "compiled":
                raise CollectiveError(
                    "execution='compiled' cannot run under a reliability "
                    "policy (retry/rewind interprets steps); use "
                    "execution='auto'")
            return self._run_reliable(req, functional)
        resolved = self._resolve(req)
        result, replay_s = self._execute_resolved(req, resolved, functional)
        self._record_execution(req, result, replay_s)
        return result

    def _resolve(self, req: NormalizedRequest
                 ) -> tuple[CommPlan, CommProgram | None, bool]:
        """Serial phase: cached plan, compiled program and hit flag.

        All plan-cache traffic (LRU reordering, hit counters,
        partition stats) happens here on the submitting thread; the
        parallel wave executor resolves every member *before*
        dispatching, so worker threads never touch the cache and the
        counters are identical at every worker count.
        """
        plan, hit = self._compile(req)
        program = self._program_for(req, plan)
        return plan, program, hit

    def _replay_pool(self) -> ScratchPool | None:
        """The streaming scratch the calling thread must gather through.

        Worker threads (parallel wave members) use their private pool;
        the submitting thread keeps the session-owned one.
        """
        if self._pool is not None and self._pool.in_worker:
            return self._pool.scratch()
        return self._scratch

    def _band_workers(self) -> WorkerPool | None:
        """The pool for band-parallel streamed replay, if applicable.

        None inside a worker thread: a wave member occupying a bounded
        executor slot must not queue band tasks behind itself (its
        bands run inline instead).
        """
        pool = self._pool
        if pool is None or pool.in_worker:
            return None
        return pool

    def _execute_resolved(self, req: NormalizedRequest,
                          resolved: tuple[CommPlan, CommProgram | None, bool],
                          functional: bool
                          ) -> tuple[CommResult, float | None]:
        """Execute a resolved request; returns (result, replay seconds).

        Touches no session-global mutable state (stats, caches), so
        hazard-independent requests may run this concurrently: plans,
        programs and index tables are shared read-only, scratch comes
        from :meth:`_replay_pool`, and the requests' MRAM write
        footprints are disjoint by wave construction.  ``replay
        seconds`` is None unless a compiled functional replay ran.
        """
        plan, program, hit = resolved
        schedule = req.schedule
        if program is not None:
            tile_bytes = (schedule.tile_bytes if schedule is not None
                          else self.stream_tile_bytes)
            elide = (schedule.elide if schedule is not None
                     else self.elide_transfers)
            workers = self._band_workers()
            if schedule is not None and not schedule.band_parallel:
                workers = None
            replay_s = None
            if functional:
                raw = (_payload_bytes(req.payloads)
                       if req.payloads is not None else None)
                start = perf_counter()
                ledger, ctx = program.replay(self.manager.system,
                                             payloads=raw,
                                             tile_bytes=tile_bytes,
                                             pool=self._replay_pool(),
                                             workers=workers,
                                             elide=elide)
                replay_s = perf_counter() - start
                tiles = ctx.tiles
                peak_scratch = ctx.peak_scratch_bytes
            else:
                # Analytic calls never elide: elision is a property of
                # the actual payload content, which analytic pricing
                # never sees (the tuner models it instead).
                ledger, ctx = program.priced(self.manager.system), None
                tiles, peak_scratch = 0, 0
                if tile_bytes is not None:
                    # Analytic streamed pricing: the tile plan (and so
                    # the pipeline depth) is a pure function of the
                    # program's shapes -- no execution needed.
                    tiles = sum(program.tile_counts(tile_bytes))
                    ledger = ledger.pipelined(
                        program.pipeline_depth(tile_bytes))
            host_outputs = self._host_outputs(req, ctx)
            return CommResult(plan=plan, ledger=ledger,
                              host_outputs=host_outputs, cached=hit,
                              simd=ctx.simd if ctx is not None else None,
                              wram_tiles=ctx.wram_tiles if ctx is not None
                              else 0,
                              execution=("streamed" if tile_bytes is not None
                                         else "compiled"),
                              tiles=tiles,
                              peak_scratch_bytes=peak_scratch,
                              chunks_scanned=ctx.chunks_scanned
                              if ctx is not None else 0,
                              chunks_elided=ctx.chunks_elided
                              if ctx is not None else 0,
                              elided_bytes=ctx.elided_bytes
                              if ctx is not None else 0,
                              schedule=schedule), replay_s
        bound = bind_payloads(plan, req.payloads if functional else None)
        ledger, ctx = bound.run(self.manager.system, functional=functional)
        host_outputs = self._host_outputs(req, ctx)
        return CommResult(plan=bound, ledger=ledger,
                          host_outputs=host_outputs, cached=hit,
                          simd=ctx.simd if ctx is not None else None,
                          wram_tiles=ctx.wram_tiles if ctx is not None
                          else 0,
                          schedule=schedule), None

    def _record_execution(self, req: NormalizedRequest, result: CommResult,
                          replay_s: float | None) -> None:
        """Serial phase: stats recording, in submission order.

        Kept off the worker threads so float accumulation order (and
        therefore every stats byte) is identical at any worker count.
        """
        if replay_s is not None:
            self.stats.record_replay(
                replay_s, tiles=result.tiles,
                peak_scratch_bytes=result.peak_scratch_bytes)
        self.stats.record_elision(chunks_scanned=result.chunks_scanned,
                                  chunks_elided=result.chunks_elided,
                                  elided_bytes=result.elided_bytes)
        self.stats.record_call(req.primitive, result.plan, result.ledger,
                               cached=result.cached)
        if self._pool is not None:
            self.stats.worker_bands = self._pool.band_counts()
        if self.tuner is not None and req.schedule is not None:
            # Online feedback: fold the measured replay seconds (None
            # for analytic/interpreted runs) into the tuner's probe or
            # divergence-monitor state for this shape.
            self.tuner.observe(req, req.schedule, result.ledger.total,
                               replay_s, self._plan_cache_for(req),
                               self.stats)

    def _host_outputs(self, req: NormalizedRequest,
                      ctx) -> dict[int, np.ndarray] | None:
        """Extract rooted-primitive outputs from an execution context."""
        if ctx is None:
            return None
        if req.primitive == "gather":
            outputs = ctx.scratch.get(GATHER_SCRATCH)
            return {inst: buf.view(req.dtype.np_dtype)
                    for inst, buf in outputs.items()}
        if req.primitive == "reduce":
            outputs = ctx.scratch.get(REDUCE_SCRATCH)
            return {inst: reduced_vector(buf, req.dtype)
                    for inst, buf in outputs.items()}
        return None

    # ------------------------------------------------------------------
    # Reliability: snapshot/restore, retry, degradation
    # ------------------------------------------------------------------
    def _snapshot(self, req: NormalizedRequest) -> _Snapshot:
        """Save the MRAM intervals ``req`` touches, on every member PE.

        Reads go straight through :class:`~repro.hw.memory.PeMemory`,
        below the fault injector, so snapshots are always exact.
        """
        spans = sorted(set(req.footprint().reads + req.footprint().writes))
        saved: _Snapshot = []
        system = self.manager.system
        for pe in member_pes(self.manager, req.dims):
            for offset, nbytes in spans:
                saved.append((pe, offset, system.memory(pe).read(offset,
                                                                 nbytes)))
        return saved

    def _restore(self, snapshot: _Snapshot) -> None:
        """Rewind MRAM to a snapshot (also injector-free, always exact)."""
        system = self.manager.system
        for pe, offset, data in snapshot:
            system.memory(pe).write(offset, data)

    def _snapshot_needed(self) -> bool:
        """Whether a pre-attempt footprint snapshot can ever be used.

        A snapshot only pays off if a retry can happen, which requires
        an attached injector with either non-zero transient rates or an
        already-failed rank (degradation also rewinds).  Skipping it
        otherwise removes the dominant per-call overhead of running a
        reliability policy over a healthy system.
        """
        injector = self.manager.system.fault_injector
        if injector is None:
            return False
        return (injector.spec.transient_total > 0.0
                or bool(injector.failed_ranks))

    def _renormalize(self, req: NormalizedRequest) -> NormalizedRequest:
        """Re-resolve a request against the (remapped) current manager."""
        return CommRequest(
            req.primitive, req.dims, req.total_data_size,
            src_offset=req.src_offset, dst_offset=req.dst_offset,
            data_type=req.dtype, reduction_type=req.op,
            payloads=req.payloads, config=req.config,
            tag=req.tag, tenant=req.tenant).normalize(
                self.manager, self.config, backend=self.backend)

    def _run_reliable(self, req: NormalizedRequest,
                      functional: bool) -> CommResult:
        """Execute with whole-collective retry and graceful degradation.

        Each attempt snapshots the request's footprint first (in-place
        primitives permute their source region, so a blind re-execution
        after a mid-plan fault would start from corrupted state), prices
        itself into the accumulated ledger, and on a transient fault
        rewinds, backs off (charged to the ``"retry"`` category), and
        tries again until the policy's attempt cap or fault budget is
        spent.  A permanent rank failure instead remaps the hypercube
        onto the survivors and replans -- the topology signature in the
        cache key keeps degraded plans apart from healthy ones.
        """
        policy = self.reliability.retry
        total = CostLedger()
        faults: list[str] = []
        backoff_total = 0.0
        degraded_now = False
        attempts = 0
        failures = 0
        snapshot = (self._snapshot(req)
                    if functional and self._snapshot_needed() else None)
        while True:
            attempts += 1
            plan, hit = self._compile(req)
            bound = bind_payloads(plan,
                                  req.payloads if functional else None)
            total.merge(bound.estimate(self.manager.system))
            try:
                ctx = bound.execute(self.manager.system) \
                    if functional else None
            except TransientFault as fault:
                faults.append(fault.kind)
                self.stats.record_fault(fault.kind)
                failures += 1
                if len(faults) > policy.fault_budget:
                    raise FaultBudgetExceeded(
                        f"{req.primitive} hit {len(faults)} faults "
                        f"({', '.join(faults)}); budget is "
                        f"{policy.fault_budget}") from fault
                if attempts >= policy.max_attempts:
                    raise FaultBudgetExceeded(
                        f"{req.primitive} failed {attempts} attempts "
                        f"(max {policy.max_attempts}); faults: "
                        f"{', '.join(faults)}") from fault
                delay = policy.backoff(failures)
                backoff_total += delay
                total.add("retry", delay)
                if snapshot is not None:
                    self._restore(snapshot)
                continue
            except RankFailure as fault:
                faults.append(fault.kind)
                self.stats.record_fault(fault.kind)
                if not self.reliability.degrade_on_rank_failure:
                    raise
                if attempts >= policy.max_attempts:
                    raise FaultBudgetExceeded(
                        f"{req.primitive} failed {attempts} attempts "
                        f"(max {policy.max_attempts}); faults: "
                        f"{', '.join(faults)}") from fault
                if snapshot is not None:
                    self._restore(snapshot)
                injector = self.manager.system.fault_injector
                dead = (injector.failed_pes(self.manager.system.geometry)
                        if injector is not None else fault.pe_ids)
                self.manager = self.manager.without_pes(dead)
                self.degraded = True
                degraded_now = True
                req = self._renormalize(req)
                snapshot = (self._snapshot(req)
                            if functional and self._snapshot_needed()
                            else None)
                continue
            host_outputs = self._host_outputs(req, ctx)
            self.stats.record_call(req.primitive, plan, total, cached=hit,
                                   attempts=attempts,
                                   backoff_s=backoff_total,
                                   degraded=degraded_now)
            return CommResult(plan=bound, ledger=total,
                              host_outputs=host_outputs, cached=hit,
                              attempts=attempts,
                              faults_seen=tuple(faults),
                              degraded=self.degraded,
                              simd=ctx.simd if ctx is not None else None,
                              wram_tiles=ctx.wram_tiles
                              if ctx is not None else 0)

    def _call(self, request: CommRequest,
              functional: bool | None) -> CommResult:
        req = self._tuned(request.normalize(self.manager, self.config,
                                            backend=self.backend))
        return self._run(
            req, self.functional if functional is None else functional)

    # ------------------------------------------------------------------
    # Batched submission
    # ------------------------------------------------------------------
    def submit(self, requests: Sequence[CommRequest],
               functional: bool | None = None) -> BatchResult:
        """Run a batch of requests with overlap-aware scheduling.

        Requests are analyzed for buffer hazards and split into
        dependency waves; waves execute in order (functional semantics
        are exactly the serial ones), while data-independent instances
        within a wave are priced concurrently: overlappable phases
        (bus, PE work, launch/sync) take the max across instances,
        host-core phases still sum.  The returned
        :class:`BatchResult` carries one resolved :class:`CommFuture`
        per request plus the batch ledger; its total is <= (and, with
        any independent pair, strictly <) the serial sum.
        """
        if not requests:
            raise CollectiveError("submit() needs at least one request")
        run_functional = (self.functional if functional is None
                          else functional)
        normalized = [self._tuned(r.normalize(self.manager, self.config,
                                              backend=self.backend))
                      for r in requests]
        waves = schedule_waves(normalized)
        futures: list[CommFuture] = [None] * len(normalized)  # type: ignore
        ledgers: list[CostLedger] = [None] * len(normalized)  # type: ignore
        for w, indices in enumerate(waves):
            if self._wave_parallelizable(indices):
                results = self._execute_wave_parallel(
                    normalized, indices, run_functional)
            else:
                if self._pool is not None and len(indices) > 1:
                    self.stats.parallel_fallbacks += 1
                results = [self._run(normalized[i], run_functional)
                           for i in indices]
            for i, result in zip(indices, results):
                ledgers[i] = result.ledger
                futures[i] = CommFuture(index=i,
                                        label=normalized[i].describe(),
                                        wave=w, _result=result)
        wave_costs = price_waves(waves, ledgers)
        batch_ledger = CostLedger()
        serial = CostLedger()
        for cost in wave_costs:
            batch_ledger.merge(cost.ledger)
        for lg in ledgers:
            serial.merge(lg)
        self.stats.record_batch(len(waves), serial.total, batch_ledger.total)
        return BatchResult(futures=futures, ledger=batch_ledger,
                           serial_ledger=serial, waves=waves,
                           wave_costs=wave_costs)

    # ------------------------------------------------------------------
    # Parallel wave execution
    # ------------------------------------------------------------------
    def _wave_parallelizable(self, indices: Sequence[int]) -> bool:
        """Whether a wave's members may execute on the worker pool.

        Requires a pool, more than one member, and no fault machinery:
        the injector's RNG is stateful (concurrent draws would make
        fault schedules nondeterministic) and retry/rewind assumes
        exclusive MRAM access, so such sessions always run serially
        (counted in ``EngineStats.parallel_fallbacks``).
        """
        return (self._pool is not None and len(indices) > 1
                and self.reliability is None
                and self.manager.system.fault_injector is None)

    def _execute_wave_parallel(self, normalized: Sequence[NormalizedRequest],
                               indices: Sequence[int],
                               functional: bool) -> list[CommResult]:
        """Run one hazard-free wave's members across the worker pool.

        Three phases keep every observable bit identical to the serial
        path: (1) *serial resolve* -- payload validation, plan-cache
        lookups and program compilation happen on this thread in
        submission order; (2) *parallel execute* -- members run
        concurrently against pre-materialized PEs, writing provably
        disjoint MRAM footprints (see ``scheduler.assert_wave_safety``
        for the invariant); (3) *serial record* -- stats accumulate in
        submission order, so float sums never depend on completion
        interleaving.
        """
        reqs = [normalized[i] for i in indices]
        resolved = []
        for req in reqs:
            if functional and req.primitive in ("scatter", "broadcast") \
                    and req.payloads is None:
                raise CollectiveError(
                    f"functional {req.primitive} needs payloads")
            resolved.append(self._resolve(req))
        # Touch every member PE now: concurrent execution must never
        # trigger an arena growth or a lazy per-PE materialization.
        system = self.manager.system
        for req in reqs:
            system.materialize(member_pes(self.manager, req.dims))

        def member_task(req: NormalizedRequest, res):
            def run() -> tuple[CommResult, float | None, float]:
                start = perf_counter()
                result, replay_s = self._execute_resolved(req, res,
                                                          functional)
                return result, replay_s, perf_counter() - start
            return run

        start = perf_counter()
        outs = self._pool.run([member_task(req, res)
                               for req, res in zip(reqs, resolved)])
        wall = perf_counter() - start
        results = []
        task_seconds = 0.0
        for req, (result, replay_s, seconds) in zip(reqs, outs):
            self._record_execution(req, result, replay_s)
            task_seconds += seconds
            results.append(result)
        self.stats.record_parallel_wave(len(reqs), wall, task_seconds)
        return results

    # ------------------------------------------------------------------
    # The eight primitives (Figure 10, keyword-only buffer arguments)
    # ------------------------------------------------------------------
    def alltoall(self, comm_dimensions: str | Sequence[int],
                 total_data_size: int, *, src_offset: int = 0,
                 dst_offset: int = 0, data_type: DataType | str = "int64",
                 config: OptConfig | None = None,
                 functional: bool | None = None) -> CommResult:
        """AlltoAll across the cube slices selected by ``comm_dimensions``."""
        return self._call(CommRequest(
            "alltoall", comm_dimensions, total_data_size,
            src_offset=src_offset, dst_offset=dst_offset,
            data_type=data_type, config=config), functional)

    def allgather(self, comm_dimensions: str | Sequence[int],
                  total_data_size: int, *, src_offset: int = 0,
                  dst_offset: int = 0, data_type: DataType | str = "int64",
                  config: OptConfig | None = None,
                  functional: bool | None = None) -> CommResult:
        """AllGather: every group member ends with all members' chunks."""
        return self._call(CommRequest(
            "allgather", comm_dimensions, total_data_size,
            src_offset=src_offset, dst_offset=dst_offset,
            data_type=data_type, config=config), functional)

    def reduce_scatter(self, comm_dimensions: str | Sequence[int],
                       total_data_size: int, *, src_offset: int = 0,
                       dst_offset: int = 0,
                       data_type: DataType | str = "int64",
                       reduction_type: ReduceOp | str = "sum",
                       config: OptConfig | None = None,
                       functional: bool | None = None) -> CommResult:
        """ReduceScatter (consumes the source buffer, like the PIM kernel)."""
        return self._call(CommRequest(
            "reduce_scatter", comm_dimensions, total_data_size,
            src_offset=src_offset, dst_offset=dst_offset,
            data_type=data_type, reduction_type=reduction_type,
            config=config), functional)

    def allreduce(self, comm_dimensions: str | Sequence[int],
                  total_data_size: int, *, src_offset: int = 0,
                  dst_offset: int = 0, data_type: DataType | str = "int64",
                  reduction_type: ReduceOp | str = "sum",
                  config: OptConfig | None = None,
                  functional: bool | None = None) -> CommResult:
        """AllReduce as a fused ReduceScatter + AllGather."""
        return self._call(CommRequest(
            "allreduce", comm_dimensions, total_data_size,
            src_offset=src_offset, dst_offset=dst_offset,
            data_type=data_type, reduction_type=reduction_type,
            config=config), functional)

    def scatter(self, comm_dimensions: str | Sequence[int],
                total_data_size: int, *, dst_offset: int = 0,
                data_type: DataType | str = "int64",
                payloads: Mapping[int, np.ndarray] | None = None,
                config: OptConfig | None = None,
                functional: bool | None = None) -> CommResult:
        """Scatter host chunks to the PEs."""
        return self._call(CommRequest(
            "scatter", comm_dimensions, total_data_size,
            dst_offset=dst_offset, data_type=data_type, payloads=payloads,
            config=config), functional)

    def gather(self, comm_dimensions: str | Sequence[int],
               total_data_size: int, *, src_offset: int = 0,
               data_type: DataType | str = "int64",
               config: OptConfig | None = None,
               functional: bool | None = None) -> CommResult:
        """Gather to the host; results in ``result.host_outputs``."""
        return self._call(CommRequest(
            "gather", comm_dimensions, total_data_size,
            src_offset=src_offset, data_type=data_type, config=config),
            functional)

    def reduce(self, comm_dimensions: str | Sequence[int],
               total_data_size: int, *, src_offset: int = 0,
               data_type: DataType | str = "int64",
               reduction_type: ReduceOp | str = "sum",
               config: OptConfig | None = None,
               functional: bool | None = None) -> CommResult:
        """Reduce to the host; results in ``result.host_outputs``."""
        return self._call(CommRequest(
            "reduce", comm_dimensions, total_data_size,
            src_offset=src_offset, data_type=data_type,
            reduction_type=reduction_type, config=config), functional)

    def broadcast(self, comm_dimensions: str | Sequence[int],
                  total_data_size: int, *, dst_offset: int = 0,
                  data_type: DataType | str = "int64",
                  payloads: Mapping[int, np.ndarray] | None = None,
                  config: OptConfig | None = None,
                  functional: bool | None = None) -> CommResult:
        """Broadcast per-instance host buffers to every member PE."""
        return self._call(CommRequest(
            "broadcast", comm_dimensions, total_data_size,
            dst_offset=dst_offset, data_type=data_type, payloads=payloads,
            config=config), functional)

    # ------------------------------------------------------------------
    # Session management
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the instrumentation counters (cache contents persist)."""
        self.stats = EngineStats(
            parallel_workers=self.session_config.parallel_workers)

    @property
    def parallel_workers(self) -> int:
        """Configured worker count (1 = serial execution)."""
        return self.session_config.parallel_workers

    def close(self) -> None:
        """Join the session's worker threads, if any (idempotent).

        Optional: an unclosed pool's daemon-less threads are joined at
        interpreter shutdown anyway, but explicit close makes teardown
        deterministic in tests and long-lived services.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None  # later calls run serially

    def describe(self) -> str:
        """One-line session summary."""
        workers = self.session_config.parallel_workers
        suffix = f", {workers} workers" if workers > 1 else ""
        return (f"Communicator({self.manager.shape} cube, "
                f"config {self.config.label}, {len(self.cache)} cached "
                f"plans, {self.stats.calls} calls{suffix})")


def shared_communicator(manager: HypercubeManager) -> Communicator:
    """The per-manager session the legacy ``pidcomm_*`` shims delegate to.

    Stored on the manager itself, so repeated legacy calls enjoy the
    same plan cache the session API provides and the session's
    lifetime tracks the manager's (the manager -> session -> manager
    reference cycle is ordinary garbage-collected state).
    """
    session = getattr(manager, "_engine_session", None)
    if session is None or session.manager is not manager:
        session = Communicator(manager)
        manager._engine_session = session
    return session
