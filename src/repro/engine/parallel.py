"""Session-owned worker pool: host-side thread parallelism for replay.

PID-Comm's collectives expose two kinds of concurrency the serial
engine leaves on the table: hazard-independent requests inside one
:meth:`~repro.engine.Communicator.submit` wave touch disjoint MRAM
byte ranges, and the row bands of a streamed replay write disjoint
output rows.  Both are pure numpy gathers/folds that release the GIL,
so plain threads scale them on multi-core hosts -- the UPMEM
literature's observation that *host orchestration*, not PIM compute,
is the bottleneck.

:class:`WorkerPool` wraps a ``ThreadPoolExecutor`` with the three
properties the engine needs:

* **Deterministic results** -- :meth:`run` returns results in task
  submission order, and raises the first (by submission order)
  task's exception, regardless of completion interleaving.
* **Private scratch** -- each worker thread lazily owns one
  :class:`~repro.hw.arena.ScratchPool` (:meth:`scratch`), so no tile
  buffer is ever shared between concurrent band gathers.
* **No nested deadlock** -- :meth:`run` called from inside a worker
  thread executes the tasks inline on that thread (a wave member that
  would band-parallelize its own replay must not wait on the bounded
  executor it is occupying).

Parallelism changes wall-clock only.  Everything priced or counted --
CostLedger, SimdCounter, WRAM tiles, MRAM images, host outputs -- is
bit-identical at every worker count (``tests/test_parallel.py``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from ..hw.arena import ScratchPool

#: Stamped on worker threads so nested :meth:`WorkerPool.run` calls
#: (and per-worker scratch lookups) recognize pool context.
_worker_state = threading.local()


class WorkerPool:
    """A bounded thread pool with per-worker streaming scratch.

    Args:
        workers: Maximum concurrent tasks (>= 1).  One worker degrades
            to inline serial execution with zero thread overhead.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        #: worker label -> bands executed (main thread counts as
        #: ``"inline"``); guarded by ``_lock``, read via band_counts().
        self._bands: dict[str, int] = {}
        self._pools: list[ScratchPool] = []
        self._next_worker = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Worker-thread context
    # ------------------------------------------------------------------
    @property
    def in_worker(self) -> bool:
        """True when the calling thread is one of this pool's workers."""
        return getattr(_worker_state, "pool", None) is self

    def scratch(self) -> ScratchPool:
        """The calling thread's private :class:`ScratchPool`.

        Lazily created per thread (worker or not) and cached on the
        thread, so steady-state band gathers allocate nothing and two
        threads can never hand out views of the same buffer.
        """
        pools = getattr(_worker_state, "scratch", None)
        if pools is None:
            pools = {}
            _worker_state.scratch = pools
        pool = pools.get(id(self))
        if pool is None:
            pool = ScratchPool()
            pools[id(self)] = pool
            with self._lock:
                self._pools.append(pool)
        return pool

    @property
    def scratch_peak_bytes(self) -> int:
        """High-water scratch bytes summed across all worker pools."""
        with self._lock:
            return sum(p.peak_bytes for p in self._pools)

    def count_bands(self, n: int) -> None:
        """Attribute ``n`` executed bands to the calling worker."""
        label = getattr(_worker_state, "label", None) \
            if self.in_worker else "inline"
        if label is None:
            label = "inline"
        with self._lock:
            self._bands[label] = self._bands.get(label, 0) + n

    def band_counts(self) -> dict[str, int]:
        """Snapshot of per-worker executed-band counters."""
        with self._lock:
            return dict(self._bands)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is shut down")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="pidcomm-worker",
                    initializer=self._init_worker)
            return self._executor

    def _init_worker(self) -> None:
        _worker_state.pool = self
        with self._lock:
            label = f"worker-{self._next_worker}"
            self._next_worker += 1
        _worker_state.label = label

    def run(self, tasks: Sequence[Callable[[], object]]) -> list:
        """Execute ``tasks``; results in submission order.

        Serial inline when the pool has one worker, a single task, or
        the caller *is* a pool worker (nested parallelism would
        deadlock the bounded executor).  Exceptions propagate: the
        first submitted task that failed raises after all tasks have
        settled, so no task is ever abandoned mid-write.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1 or self.in_worker:
            return [task() for task in tasks]
        futures = [self._ensure_executor().submit(task) for task in tasks]
        results = []
        error = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
                results.append(None)
        if error is not None:
            raise error
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Join the worker threads (idempotent; pool stays queryable)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self._closed = True
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkerPool({self.workers} workers, "
                f"{sum(self.band_counts().values())} bands)")
