"""Engine instrumentation: per-call metrics and the EngineStats report.

Every collective that flows through the engine records what the session
actually did -- plans compiled vs. served from cache, payload bytes
moved, modelled seconds split by cost category and by primitive, and
(for batched submissions) how much the overlap-aware schedule saved
over pricing the same requests serially.  ``report()`` renders the
counters as a text block in the house style of ``analysis/trace.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.collectives import CommPlan
from ..hw.timing import CATEGORIES, CostLedger


def plan_payload_bytes(plan: CommPlan) -> int:
    """Payload bytes one invocation of ``plan`` carries through the system.

    Derived from plan metadata: per-PE input plus output bytes, over
    every member PE of every instance.  This is an application-level
    traffic measure (what the user asked to move), not bus occupancy --
    the ledger's ``bus`` term prices that.
    """
    meta = plan.meta
    per_pe = meta.get("per_pe_bytes", 0) + meta.get("out_bytes_per_pe", 0)
    return per_pe * meta.get("instances", 1) * meta.get("group_size", 1)


@dataclass
class EngineStats:
    """Counters accumulated by one engine session."""

    calls: int = 0
    plans_compiled: int = 0
    cache_hits: int = 0
    #: Plans (with their programs) dropped by LRU cache eviction.
    plan_evictions: int = 0
    #: tenant -> latest plan-cache partition counter snapshot
    #: (``plans`` / ``hits`` / ``misses`` / ``evictions``), refreshed on
    #: every tenant-attributed plan lookup.  Empty unless the serving
    #: front-end (or a tenant-tagged request) is in play; the global
    #: eviction counter above stays tenant-blind.
    plan_partitions: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Plans lowered into compiled programs (one per cached shape).
    programs_compiled: int = 0
    #: Calls served by compiled-program replay instead of interpretation.
    program_replays: int = 0
    #: Wall-clock seconds spent lowering plans / replaying programs
    #: (host-process time, not modelled time -- the amortization data).
    compile_seconds: float = 0.0
    replay_seconds: float = 0.0
    #: Payload tiles replayed by streamed executions across the session.
    tiles_replayed: int = 0
    #: High-water mark of streaming scratch-pool bytes across replays.
    peak_scratch_bytes: int = 0
    batches: int = 0
    waves: int = 0
    #: Worker threads the session was configured with (1 = serial).
    parallel_workers: int = 1
    #: Waves whose members actually executed concurrently.
    parallel_waves: int = 0
    #: Requests executed via the worker pool (across parallel waves).
    parallel_requests: int = 0
    #: Multi-request waves a pooled session ran serially anyway
    #: (fault injector attached / reliability policy active).
    parallel_fallbacks: int = 0
    #: Wall-clock seconds parallel waves took vs. their members' summed
    #: task seconds; the ratio is :attr:`parallel_speedup`.
    parallel_wall_seconds: float = 0.0
    parallel_task_seconds: float = 0.0
    #: worker label -> streamed bands executed on that worker
    #: (mirrors the session pool's lifetime counters).
    worker_bands: dict[str, int] = field(default_factory=dict)
    # Autotuner counters (all zero unless SessionConfig(autotune=...)).
    #: Fresh schedule-space searches performed (cold keys + re-tunes).
    tuner_searches: int = 0
    #: Lookups served by a cached schedule decision.
    tuner_cache_hits: int = 0
    #: Executions handed a shortlist candidate to measure (online mode).
    tuner_probes: int = 0
    #: Replay-seconds observations folded into probe/monitor state.
    tuner_observations: int = 0
    #: Committed decisions invalidated because observed cost diverged
    #: from modelled cost (each forces a fresh search).
    tuner_retunes: int = 0
    # Content-aware elision counters (all zero unless
    # SessionConfig(elide_transfers=True) or a tuned elide schedule).
    #: Calls whose replay fingerprint-scanned at least one source.
    elision_scans: int = 0
    #: Source chunks fingerprint-scanned across the session.
    chunks_scanned: int = 0
    #: Destination chunks whose transfer was elided.
    chunks_elided: int = 0
    #: Destination bytes those elided chunks cover.
    elided_bytes: int = 0
    # Multi-host counters (all zero outside hierarchical runs; accrue
    # on host 0's session, which represents the symmetric hosts).
    #: Global (inter-host) phases executed.
    global_phases: int = 0
    #: ``"primitive/algorithm"`` -> times the tuner chose it.
    global_algorithms: dict[str, int] = field(default_factory=dict)
    #: Payload bytes global phases put on the inter-host fabric.
    fabric_bytes: int = 0
    #: Modelled seconds global phases spent on the fabric.
    fabric_seconds: float = 0.0
    #: Fabric bytes skipped by content-aware elision (zero blocks
    #: crossing as fingerprint markers).
    elided_fabric_bytes: int = 0
    bytes_moved: int = 0
    modelled_seconds: float = 0.0
    overlap_saved_seconds: float = 0.0
    per_primitive_calls: dict[str, int] = field(default_factory=dict)
    per_primitive_seconds: dict[str, float] = field(default_factory=dict)
    per_category_seconds: dict[str, float] = field(default_factory=dict)
    # Reliability counters (all zero unless a fault injector is active).
    retries: int = 0
    faults_seen: dict[str, int] = field(default_factory=dict)
    degradations: int = 0
    backoff_seconds: float = 0.0

    @property
    def cache_misses(self) -> int:
        """Lookups that had to compile (== plans compiled)."""
        return self.plans_compiled

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.plans_compiled
        return self.cache_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_call(self, primitive: str, plan: CommPlan,
                    ledger: CostLedger, cached: bool, *,
                    attempts: int = 1, backoff_s: float = 0.0,
                    degraded: bool = False) -> None:
        """Account one collective invocation."""
        self.calls += 1
        if attempts > 1:
            self.retries += attempts - 1
        self.backoff_seconds += backoff_s
        if degraded:
            self.degradations += 1
        if cached:
            self.cache_hits += 1
        else:
            self.plans_compiled += 1
        self.bytes_moved += plan_payload_bytes(plan)
        self.modelled_seconds += ledger.total
        self.per_primitive_calls[primitive] = (
            self.per_primitive_calls.get(primitive, 0) + 1)
        self.per_primitive_seconds[primitive] = (
            self.per_primitive_seconds.get(primitive, 0.0) + ledger.total)
        for category, seconds in ledger.seconds.items():
            self.per_category_seconds[category] = (
                self.per_category_seconds.get(category, 0.0) + seconds)

    def record_compile(self, seconds: float) -> None:
        """Account one plan -> program lowering (wall-clock)."""
        self.programs_compiled += 1
        self.compile_seconds += seconds

    def record_replay(self, seconds: float, *, tiles: int = 0,
                      peak_scratch_bytes: int = 0) -> None:
        """Account one compiled-program replay (wall-clock).

        Streamed replays also report their tile count and the scratch
        pool's high-water mark; both stay zero for untiled replays.
        """
        self.program_replays += 1
        self.replay_seconds += seconds
        self.tiles_replayed += tiles
        if peak_scratch_bytes > self.peak_scratch_bytes:
            self.peak_scratch_bytes = peak_scratch_bytes

    def record_elision(self, *, chunks_scanned: int, chunks_elided: int,
                       elided_bytes: int) -> None:
        """Account one replay's content-aware elision activity.

        Calls with zero scan work record nothing -- the dense fast
        path (``elide_transfers`` off, or the tuner deciding scanning
        cannot pay) must leave every elision counter untouched, which
        ``tests/test_elision.py`` asserts.
        """
        if not chunks_scanned:
            return
        self.elision_scans += 1
        self.chunks_scanned += chunks_scanned
        self.chunks_elided += chunks_elided
        self.elided_bytes += elided_bytes

    @property
    def elision_rate(self) -> float:
        """Elided chunks over scanned chunks (0.0 when never scanned)."""
        if not self.chunks_scanned:
            return 0.0
        return self.chunks_elided / self.chunks_scanned

    def record_global_phase(self, primitive: str, algorithm: str, *,
                            fabric_bytes: int, fabric_seconds: float,
                            elided_bytes: int = 0) -> None:
        """Account one hierarchical collective's inter-host phase."""
        self.global_phases += 1
        key = f"{primitive}/{algorithm}"
        self.global_algorithms[key] = self.global_algorithms.get(key, 0) + 1
        self.fabric_bytes += fabric_bytes
        self.fabric_seconds += fabric_seconds
        self.elided_fabric_bytes += elided_bytes

    def record_fault(self, kind: str) -> None:
        """Account one observed fault (by kind, e.g. ``"bit_flip"``)."""
        self.faults_seen[kind] = self.faults_seen.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        """Faults observed across every kind."""
        return sum(self.faults_seen.values())

    def record_batch(self, waves: int, serial_seconds: float,
                     overlapped_seconds: float) -> None:
        """Account one ``submit()``: overlap credit vs. the serial sum."""
        self.batches += 1
        self.waves += waves
        self.overlap_saved_seconds += max(0.0,
                                          serial_seconds - overlapped_seconds)

    def record_parallel_wave(self, members: int, wall_seconds: float,
                             task_seconds: float) -> None:
        """Account one wave executed across the worker pool.

        ``wall_seconds`` is the wave's elapsed time, ``task_seconds``
        the sum of its members' individual execution times -- their
        ratio is the realized (wall-clock-only) parallel speedup.
        Recorded serially by the submitting thread, so these floats
        accumulate in deterministic order.
        """
        self.parallel_waves += 1
        self.parallel_requests += members
        self.parallel_wall_seconds += wall_seconds
        self.parallel_task_seconds += task_seconds

    @property
    def parallel_speedup(self) -> float:
        """Realized wall-clock speedup of pooled waves (1.0 when none)."""
        if self.parallel_wall_seconds <= 0.0:
            return 1.0
        return self.parallel_task_seconds / self.parallel_wall_seconds

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy for result metadata / persistence."""
        return {
            "calls": self.calls,
            "plans_compiled": self.plans_compiled,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "plan_evictions": self.plan_evictions,
            "plan_partitions": {tenant: dict(counters) for tenant, counters
                                in self.plan_partitions.items()},
            "programs_compiled": self.programs_compiled,
            "program_replays": self.program_replays,
            "compile_seconds": self.compile_seconds,
            "replay_seconds": self.replay_seconds,
            "tiles_replayed": self.tiles_replayed,
            "peak_scratch_bytes": self.peak_scratch_bytes,
            "batches": self.batches,
            "waves": self.waves,
            "parallel_workers": self.parallel_workers,
            "parallel_waves": self.parallel_waves,
            "parallel_requests": self.parallel_requests,
            "parallel_fallbacks": self.parallel_fallbacks,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "parallel_task_seconds": self.parallel_task_seconds,
            "worker_bands": dict(self.worker_bands),
            "tuner_searches": self.tuner_searches,
            "tuner_cache_hits": self.tuner_cache_hits,
            "tuner_probes": self.tuner_probes,
            "tuner_observations": self.tuner_observations,
            "tuner_retunes": self.tuner_retunes,
            "elision_scans": self.elision_scans,
            "chunks_scanned": self.chunks_scanned,
            "chunks_elided": self.chunks_elided,
            "elided_bytes": self.elided_bytes,
            "elision_rate": self.elision_rate,
            "global_phases": self.global_phases,
            "global_algorithms": dict(self.global_algorithms),
            "fabric_bytes": self.fabric_bytes,
            "fabric_seconds": self.fabric_seconds,
            "elided_fabric_bytes": self.elided_fabric_bytes,
            "bytes_moved": self.bytes_moved,
            "modelled_seconds": self.modelled_seconds,
            "overlap_saved_seconds": self.overlap_saved_seconds,
            "per_primitive_calls": dict(self.per_primitive_calls),
            "per_primitive_seconds": dict(self.per_primitive_seconds),
            "per_category_seconds": dict(self.per_category_seconds),
            "retries": self.retries,
            "faults_seen": dict(self.faults_seen),
            "degradations": self.degradations,
            "backoff_seconds": self.backoff_seconds,
        }

    def report(self) -> str:
        """Multi-line text report of the session's activity."""
        lines = [
            "EngineStats",
            f"  calls           {self.calls}",
            f"  plans compiled  {self.plans_compiled}",
            f"  cache hits      {self.cache_hits} "
            f"({self.cache_hit_rate:.1%} hit rate)",
            f"  batches         {self.batches} ({self.waves} waves)",
            f"  bytes moved     {self.bytes_moved}",
            f"  modelled time   {self.modelled_seconds * 1e3:.3f} ms",
            f"  overlap saved   {self.overlap_saved_seconds * 1e3:.3f} ms",
        ]
        if self.programs_compiled or self.program_replays \
                or self.plan_evictions:
            lines.append("  compiled programs:")
            lines.append(f"    compiled        {self.programs_compiled} "
                         f"({self.compile_seconds * 1e3:.3f} ms)")
            lines.append(f"    replays         {self.program_replays} "
                         f"({self.replay_seconds * 1e3:.3f} ms)")
            lines.append(f"    evictions       {self.plan_evictions}")
            if self.tiles_replayed:
                lines.append(f"    tiles replayed  {self.tiles_replayed}")
                lines.append(f"    peak scratch    "
                             f"{self.peak_scratch_bytes} B")
        if self.parallel_workers > 1 or self.parallel_waves \
                or self.parallel_fallbacks:
            lines.append("  parallel replay:")
            lines.append(f"    workers         {self.parallel_workers}")
            lines.append(f"    parallel waves  {self.parallel_waves} "
                         f"({self.parallel_requests} requests)")
            lines.append(f"    wall / task     "
                         f"{self.parallel_wall_seconds * 1e3:.3f} / "
                         f"{self.parallel_task_seconds * 1e3:.3f} ms "
                         f"({self.parallel_speedup:.2f}x)")
            lines.append(f"    fallbacks       {self.parallel_fallbacks}")
            for label in sorted(self.worker_bands):
                lines.append(f"    {label:<15s} "
                             f"{self.worker_bands[label]} bands")
        if self.elision_scans:
            lines.append("  content elision:")
            lines.append(f"    scans           {self.elision_scans} calls "
                         f"({self.chunks_scanned} chunks)")
            lines.append(f"    chunks elided   {self.chunks_elided} "
                         f"({self.elision_rate:.1%})")
            lines.append(f"    bytes elided    {self.elided_bytes}")
        if self.global_phases:
            lines.append("  multihost:")
            lines.append(f"    global phases   {self.global_phases}")
            lines.append(f"    fabric bytes    {self.fabric_bytes}")
            lines.append(f"    fabric time     "
                         f"{self.fabric_seconds * 1e3:.3f} ms")
            if self.elided_fabric_bytes:
                lines.append(f"    fabric elided   "
                             f"{self.elided_fabric_bytes} B")
            for key in sorted(self.global_algorithms):
                lines.append(f"    {key:<22s} "
                             f"x{self.global_algorithms[key]}")
        if self.tuner_searches or self.tuner_cache_hits:
            lines.append("  autotuner:")
            lines.append(f"    searches        {self.tuner_searches}")
            lines.append(f"    decision hits   {self.tuner_cache_hits}")
            lines.append(f"    probes          {self.tuner_probes} "
                         f"({self.tuner_observations} observations)")
            lines.append(f"    re-tunes        {self.tuner_retunes}")
        if self.plan_partitions:
            lines.append("  plan-cache partitions:")
            for tenant in sorted(self.plan_partitions):
                c = self.plan_partitions[tenant]
                lines.append(
                    f"    {tenant:<16s} {c.get('plans', 0):>3d} plans  "
                    f"{c.get('hits', 0):>5d} hits  "
                    f"{c.get('evictions', 0):>3d} evictions")
        if self.per_primitive_calls:
            lines.append("  per primitive:")
            for name in sorted(self.per_primitive_calls):
                seconds = self.per_primitive_seconds.get(name, 0.0)
                lines.append(f"    {name:<16s} x{self.per_primitive_calls[name]:<5d}"
                             f" {seconds * 1e3:>10.3f} ms")
        if self.per_category_seconds:
            lines.append("  per category:")
            for category in CATEGORIES:
                seconds = self.per_category_seconds.get(category)
                if seconds:
                    lines.append(f"    {category:<16s} "
                                 f"{seconds * 1e3:>10.3f} ms")
        if self.retries or self.faults_seen or self.degradations:
            lines.append("  reliability:")
            lines.append(f"    retries         {self.retries}")
            lines.append(f"    backoff         "
                         f"{self.backoff_seconds * 1e3:.3f} ms")
            lines.append(f"    degradations    {self.degradations}")
            for kind in sorted(self.faults_seen):
                lines.append(f"    fault {kind:<10s} "
                             f"x{self.faults_seen[kind]}")
        return "\n".join(lines)
