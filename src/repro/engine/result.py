"""Results and futures returned by the execution engine.

:class:`CommResult` is the outcome of one collective (also returned by
the legacy ``pidcomm_*`` shims, which re-export it from
``repro.core.api`` for compatibility).  :class:`CommFuture` and
:class:`BatchResult` are what ``Communicator.submit`` hands back: one
future per request plus the batch-level overlap-aware ledger.

The simulator executes eagerly, so futures resolve before ``submit``
returns; the future API exists so calling code is already shaped for a
backend that really runs collectives asynchronously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..core.collectives import CommPlan
from ..dtypes import DataType
from ..errors import PidCommError
from ..hw.host import SimdCounter
from ..hw.timing import CostLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scheduler import WaveCost


@dataclass
class CommResult:
    """Outcome of one collective invocation."""

    plan: CommPlan
    ledger: CostLedger
    #: instance -> host output array (rooted primitives only).
    host_outputs: dict[int, np.ndarray] | None = None
    #: True when the plan came from the engine's compilation cache.
    cached: bool = False
    #: Executions attempted before the collective completed (> 1 means
    #: the reliability layer retried after injected/transient faults).
    attempts: int = 1
    #: Fault kinds observed across all attempts, in occurrence order.
    faults_seen: tuple[str, ...] = ()
    #: True when the collective ran on a degraded (remapped) hypercube.
    degraded: bool = False
    #: Register-operation counts from the functional host pass (None
    #: for analytic runs).  Backend-invariant: the vectorized backend
    #: charges exactly what the scalar per-slot kernels would.
    simd: SimdCounter | None = None
    #: WRAM tiles moved by PE-local kernels (0 for analytic runs);
    #: also backend-invariant.
    wram_tiles: int = 0
    #: ``"interpreted"`` (step-by-step ``apply``), ``"compiled"``
    #: (single-dispatch program replay), or ``"streamed"`` (tiled
    #: replay through the scratch pool); bit-identical by construction.
    execution: str = "interpreted"
    #: Payload tiles a streamed replay ran (0 unless streamed).
    tiles: int = 0
    #: Scratch-pool high-water mark of a streamed replay, in bytes
    #: (bounded by ~2 tiles: one ping staging + one pong output view).
    peak_scratch_bytes: int = 0
    #: Source chunks fingerprint-scanned by content-aware elision
    #: (0 unless the call ran with ``elide_transfers``/a tuned
    #: ``elide`` schedule on a big-enough movement op).
    chunks_scanned: int = 0
    #: Destination chunks whose transfer was elided (zero-filled or
    #: alias-copied from a byte-verified duplicate representative).
    chunks_elided: int = 0
    #: Destination bytes those elided chunks cover.
    elided_bytes: int = 0
    #: The execution :class:`~repro.core.collectives.Schedule` this
    #: call ran under (None unless the session autotunes).
    schedule: object | None = None

    @property
    def seconds(self) -> float:
        """Modelled execution time."""
        return self.ledger.total

    @property
    def breakdown(self) -> dict[str, float]:
        """Per-category modelled seconds (non-zero entries only)."""
        return self.ledger.breakdown()

    def __repr__(self) -> str:
        parts = [f"CommResult({self.plan.primitive}",
                 f"{self.seconds * 1e3:.3f} ms"]
        fractions = self.ledger.fractions()
        if fractions:
            top = sorted(fractions.items(), key=lambda kv: -kv[1])[:3]
            parts.append(" ".join(f"{c}={f:.0%}" for c, f in top))
        if self.host_outputs is not None:
            parts.append(f"{len(self.host_outputs)} host outputs")
        if self.cached:
            parts.append("cached plan")
        if self.execution == "compiled":
            parts.append("compiled replay")
        if self.execution == "streamed":
            parts.append(f"streamed replay ({self.tiles} tiles)")
        if self.chunks_elided:
            parts.append(f"{self.chunks_elided} chunks elided")
        if self.attempts > 1:
            parts.append(f"{self.attempts} attempts")
        if self.faults_seen:
            parts.append(f"faults: {','.join(self.faults_seen)}")
        if self.degraded:
            parts.append("degraded")
        if self.schedule is not None:
            parts.append(f"tuned [{self.schedule.describe()}]")
        return ", ".join(parts) + ")"


def reduced_vector(buf: np.ndarray, dtype: DataType) -> np.ndarray:
    """Assemble a reduce result: lane-major rows -> one typed vector."""
    arr = np.asarray(buf)
    if arr.ndim == 2:  # optimized path keeps the (lanes, elems) matrix
        return np.ascontiguousarray(arr).reshape(-1)
    return arr.view(dtype.np_dtype)  # conventional path stores raw bytes


@dataclass
class CommFuture:
    """Handle to one request inside a submitted batch.

    The simulated engine resolves futures synchronously; ``result()``
    raises if the batch was priced analytically but the caller asks for
    functional outputs that were never produced -- it never blocks.
    """

    index: int
    label: str
    wave: int
    _result: CommResult | None = None

    def done(self) -> bool:
        """Whether the result is available (always True today)."""
        return self._result is not None

    def result(self) -> CommResult:
        """The request's :class:`CommResult`."""
        if self._result is None:
            raise PidCommError(
                f"request {self.index} ({self.label}) has no result yet")
        return self._result

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"CommFuture(#{self.index} {self.label}, wave {self.wave}, {state})"


@dataclass
class BatchResult:
    """Everything ``submit()`` produced: futures plus batch pricing."""

    futures: list[CommFuture]
    #: Overlap-aware combined cost (waves serialized, instances merged).
    ledger: CostLedger
    #: Cost of the same requests priced one after another.
    serial_ledger: CostLedger
    #: Wave -> request indices, in execution order.
    waves: list[list[int]] = field(default_factory=list)
    #: Per-wave priced records (for timelines).
    wave_costs: list["WaveCost"] = field(default_factory=list)

    def __iter__(self) -> Iterator[CommFuture]:
        return iter(self.futures)

    def __len__(self) -> int:
        return len(self.futures)

    def __getitem__(self, index: int) -> CommFuture:
        return self.futures[index]

    @property
    def seconds(self) -> float:
        """Modelled batch time under the overlap-aware schedule."""
        return self.ledger.total

    @property
    def serial_seconds(self) -> float:
        """Modelled time had the requests been issued one at a time."""
        return self.serial_ledger.total

    @property
    def speedup(self) -> float:
        """Serial over batched time (>= 1.0 for any valid schedule)."""
        return self.serial_seconds / self.seconds if self.seconds else 1.0

    def results(self) -> list[CommResult]:
        """All per-request results, in submission order."""
        return [future.result() for future in self.futures]

    def __repr__(self) -> str:
        return (f"BatchResult({len(self.futures)} requests, "
                f"{len(self.waves)} waves, {self.seconds * 1e3:.3f} ms, "
                f"{self.speedup:.2f}x vs serial)")
