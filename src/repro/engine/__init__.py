"""Session-based execution engine for PID-Comm collectives.

Sits between the public API and ``core/collectives``: the
:class:`Communicator` session -- constructed from one frozen
:class:`SessionConfig` -- compiles each collective shape once (plan
cache, optionally partitioned per tenant), submits batches with
overlap-aware scheduling (:func:`schedule_waves` +
:meth:`CostLedger.merge_concurrent`), and instruments every call
(:class:`EngineStats`).  The deprecated ``pidcomm_*`` functions in
:mod:`repro.core.api` are thin shims over a shared per-manager
session; many concurrent callers should go through
:mod:`repro.serving` instead.
"""

from .cache import CachePartition, PartitionKey, PlanCache, bind_payloads
from .communicator import Communicator, shared_communicator
from .parallel import WorkerPool
from .request import CommRequest, NormalizedRequest, PlanKey
from .result import BatchResult, CommFuture, CommResult
from .scheduler import (WaveCost, assert_wave_safety, price_waves,
                        schedule_waves)
from .session_config import EXECUTION_MODES, SessionConfig
from .stats import EngineStats

__all__ = [
    "Communicator", "CommRequest", "CommResult", "CommFuture",
    "BatchResult", "PlanCache", "CachePartition", "PartitionKey",
    "PlanKey", "EngineStats", "SessionConfig", "EXECUTION_MODES",
    "NormalizedRequest", "WaveCost", "WorkerPool", "bind_payloads",
    "schedule_waves", "price_waves", "assert_wave_safety",
    "shared_communicator",
]
