"""Session-based execution engine for PID-Comm collectives.

Sits between the public API and ``core/collectives``: the
:class:`Communicator` session compiles each collective shape once (plan
cache), submits batches with overlap-aware scheduling
(:func:`schedule_waves` + :meth:`CostLedger.merge_concurrent`), and
instruments every call (:class:`EngineStats`).  The legacy
``pidcomm_*`` functions in :mod:`repro.core.api` are thin shims over a
shared per-manager session.
"""

from .cache import PlanCache, bind_payloads
from .communicator import Communicator, shared_communicator
from .request import CommRequest, NormalizedRequest, PlanKey
from .result import BatchResult, CommFuture, CommResult
from .scheduler import WaveCost, price_waves, schedule_waves
from .stats import EngineStats

__all__ = [
    "Communicator", "CommRequest", "CommResult", "CommFuture",
    "BatchResult", "PlanCache", "PlanKey", "EngineStats",
    "NormalizedRequest", "WaveCost", "bind_payloads",
    "schedule_waves", "price_waves", "shared_communicator",
]
