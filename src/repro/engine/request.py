"""Collective requests: the one description every engine entry point uses.

A :class:`CommRequest` captures a single collective invocation the way
the :class:`~repro.engine.communicator.Communicator` methods would --
primitive name, dimension bitmap, byte size, keyword-only offsets and
payloads -- but as data, so requests can be built up front, batched,
and submitted together.  ``normalize`` resolves the string conveniences
(dtype/op names, dimension bitmaps) once, producing the hashable form
the plan cache and the scheduler work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.collectives import OptConfig
from ..core.collectives.planner import PLANNERS
from ..core.groups import group_size, resolve_dims
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, ReduceOp, SUM, dtype_by_name, op_by_name
from ..errors import CollectiveError

#: Primitives whose plans embed a reduction operator.
ARITHMETIC_PRIMITIVES = frozenset({"reduce_scatter", "allreduce", "reduce"})
#: Primitives fed from per-instance host payloads.
PAYLOAD_PRIMITIVES = frozenset({"scatter", "broadcast"})
#: Primitives that permute their source buffer in place (PE-assisted
#: reordering runs its preparation kernel on the src region).
INPLACE_SRC_PRIMITIVES = frozenset({"reduce_scatter", "allreduce", "reduce"})


@dataclass
class CommRequest:
    """One collective invocation, as data.

    Args:
        primitive: One of :data:`~repro.core.api.ALL_PRIMITIVES`.
        comm_dimensions: Dimension bitmap (``"010"``) or index sequence.
        total_data_size: Bytes per PE, following the planner's buffer
            conventions (see ``core/collectives/planner.py``).
        src_offset/dst_offset: Per-PE MRAM offsets (keyword-only in the
            :class:`Communicator` methods; plain fields here).
        data_type: :class:`DataType` or name (``"int32"``).
        reduction_type: :class:`ReduceOp` or name; arithmetic
            primitives only.
        payloads: instance -> host array, for scatter/broadcast.
        config: Per-request :class:`OptConfig` override (None = the
            communicator's default).
        tag: Free-form label surfaced in traces and futures.
        tenant: Owning tenant id, stamped by the serving front-end
            (``repro.serving``).  Routes plan lookups through that
            tenant's plan-cache partition; None (direct session use)
            keeps the shared cache.
    """

    primitive: str
    comm_dimensions: str | Sequence[int]
    total_data_size: int
    src_offset: int = 0
    dst_offset: int = 0
    data_type: DataType | str = "int64"
    reduction_type: ReduceOp | str = "sum"
    payloads: Mapping[int, np.ndarray] | None = None
    config: OptConfig | None = None
    tag: str | None = None
    tenant: str | None = None

    def normalize(self, manager: HypercubeManager,
                  default_config: OptConfig,
                  backend: str = "scalar") -> "NormalizedRequest":
        """Resolve names/bitmaps against ``manager``; validate early.

        ``backend`` records the execution backend the session will run
        the plan on; it is folded into the cache key so scalar and
        vectorized sessions sharing a cache never alias plans.
        """
        if self.primitive not in PLANNERS:
            raise CollectiveError(
                f"unknown primitive {self.primitive!r}; "
                f"known: {tuple(PLANNERS)}")
        dtype = (self.data_type if isinstance(self.data_type, DataType)
                 else dtype_by_name(self.data_type))
        op = (self.reduction_type
              if isinstance(self.reduction_type, ReduceOp)
              else op_by_name(self.reduction_type))
        if self.primitive not in ARITHMETIC_PRIMITIVES:
            op = SUM  # irrelevant; pin it so cache keys coalesce
        dims = resolve_dims(manager, self.comm_dimensions)
        return NormalizedRequest(
            primitive=self.primitive, dims=dims,
            total_data_size=int(self.total_data_size),
            src_offset=int(self.src_offset),
            dst_offset=int(self.dst_offset), dtype=dtype, op=op,
            config=self.config if self.config is not None else default_config,
            group_size=group_size(manager, dims),
            backend=backend,
            topology=manager.topology_signature(),
            payloads=self.payloads, tag=self.tag, tenant=self.tenant)


@dataclass
class NormalizedRequest:
    """A :class:`CommRequest` with every convenience resolved."""

    primitive: str
    dims: tuple[int, ...]
    total_data_size: int
    src_offset: int
    dst_offset: int
    dtype: DataType
    op: ReduceOp
    config: OptConfig
    group_size: int
    #: Execution backend the session runs this plan on.
    backend: str = "scalar"
    #: The manager's :meth:`topology_signature` at normalization time.
    #: Folded into the cache key so plans compiled for a degraded
    #: (remapped) cube never alias the healthy cube's plans.
    topology: Any = None
    payloads: Mapping[int, np.ndarray] | None = None
    tag: str | None = None
    #: Owning tenant id (serving front-end); selects the plan-cache
    #: partition the engine resolves this request through.
    tenant: str | None = None
    #: The resolved execution :class:`~repro.core.collectives.Schedule`
    #: stamped by the session's tuner (None = untuned; the session
    #: knobs apply as configured).
    schedule: Any = None

    @property
    def plan_key(self) -> "PlanKey":
        """Cache key: everything that shapes the plan except payloads."""
        op_name = (self.op.name if self.primitive in ARITHMETIC_PRIMITIVES
                   else None)
        variant: Any = self.config
        if self.schedule is not None \
                and self.schedule.fusion_depth is not None:
            # A capped fusion depth changes the compiled program's
            # structure, so differently-fused programs must never
            # alias under one key (the rung alone is not enough).
            variant = (self.config, "fuse", self.schedule.fusion_depth)
        return PlanKey(primitive=self.primitive, dims=self.dims,
                       total_data_size=self.total_data_size,
                       src_offset=self.src_offset,
                       dst_offset=self.dst_offset,
                       dtype=self.dtype.name, op=op_name,
                       variant=variant, topology=self.topology,
                       backend=self.backend)

    @property
    def schedule_key(self) -> tuple:
        """Identity of one *tuning problem*: the request facts a
        schedule decision depends on, and nothing the tuner itself
        chooses.  Unlike :attr:`plan_key` it omits the config rung and
        backend (both are tuner outputs) but keeps the offsets --
        streaming safety and band shapes depend on how src and dst
        regions overlap.
        """
        op_name = (self.op.name if self.primitive in ARITHMETIC_PRIMITIVES
                   else None)
        return ("schedule", self.primitive, self.dims,
                self.total_data_size, self.src_offset, self.dst_offset,
                self.dtype.name, op_name, self.topology)

    def describe(self) -> str:
        """Short label for traces and futures."""
        dims = "".join(str(d) for d in self.dims)
        label = self.tag or self.primitive
        return f"{label}[d{dims}] {self.total_data_size}B"

    # ------------------------------------------------------------------
    # Buffer footprint (the scheduler's dependency currency)
    # ------------------------------------------------------------------
    def footprint(self) -> "Footprint":
        """Per-PE MRAM intervals this request reads and writes.

        Host-side buffers (gather outputs, scatter/broadcast payloads)
        are private to the request and never alias, so only PE memory
        matters.  In-place primitives report their src interval as both
        read and written (the PE-assisted preparation kernel permutes
        the source region).
        """
        n = self.group_size
        size = self.total_data_size
        src = (self.src_offset, size)
        reads: list[tuple[int, int]] = []
        writes: list[tuple[int, int]] = []
        if self.primitive == "alltoall":
            reads, writes = [src], [(self.dst_offset, size)]
        elif self.primitive == "reduce_scatter":
            reads = [src]
            writes = [src, (self.dst_offset, size // n)]
        elif self.primitive == "allgather":
            reads, writes = [src], [(self.dst_offset, n * size)]
        elif self.primitive == "allreduce":
            reads = [src]
            writes = [src, (self.dst_offset, size)]
        elif self.primitive == "gather":
            reads = [src]
        elif self.primitive == "reduce":
            reads, writes = [src], [src]
        elif self.primitive == "scatter":
            writes = [(self.dst_offset, size)]
        elif self.primitive == "broadcast":
            writes = [(self.dst_offset, size)]
        return Footprint(reads=tuple(reads), writes=tuple(writes))


@dataclass(frozen=True)
class PlanKey:
    """Hashable identity of a compiled plan.

    ``variant`` distinguishes plan-shaping context beyond the request
    itself: the :class:`OptConfig` for PID-Comm plans, or a backend
    name for the application harness (whose baseline backend compiles
    different flows for the same request).  ``topology`` carries the
    manager's virtual -> physical mapping signature; degraded cubes
    (post rank failure) therefore key separately from healthy ones.
    """

    primitive: str
    dims: tuple[int, ...]
    total_data_size: int
    src_offset: int
    dst_offset: int
    dtype: str
    op: str | None
    variant: Any
    topology: Any = None
    #: Execution backend (``"scalar"``/``"vectorized"``); keyed so a
    #: cache shared across sessions never hands one backend's plan to
    #: the other.
    backend: str = "scalar"


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[0] + b[1] and b[0] < a[0] + a[1]


@dataclass(frozen=True)
class Footprint:
    """Read/write byte intervals, as ``(offset, nbytes)`` pairs."""

    reads: tuple[tuple[int, int], ...]
    writes: tuple[tuple[int, int], ...]

    def conflicts_with(self, other: "Footprint") -> bool:
        """True on any RAW / WAR / WAW hazard between the two."""
        for w in self.writes:
            for span in other.reads + other.writes:
                if _overlaps(w, span):
                    return True
        for w in other.writes:
            for span in self.reads:
                if _overlaps(w, span):
                    return True
        return False
