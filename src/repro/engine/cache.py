"""Plan compilation cache: steady-state collectives skip the planner.

The paper's applications issue the *same* collective shape thousands of
times per run (one AllReduce per GNN layer per epoch, one AlltoAll per
BFS frontier round, ...), yet planning re-slices the hypercube into
groups, re-validates sizes, and rebuilds step lists on every call.
Plans are stateless once built -- steps hold only static parameters and
every execution threads its own :class:`ExecContext` -- so a compiled
plan is reusable verbatim.  The only per-call state a plan can carry is
scatter/broadcast payloads; cached plans are therefore compiled
*payload-free* and :func:`bind_payloads` grafts the call's payloads
onto a shallow copy at submission time.

Keys are :class:`~repro.engine.request.PlanKey` instances:
``(primitive, dims, size, offsets, dtype, op, variant)`` where
``variant`` is the (frozen, hashable) :class:`OptConfig` -- or a
backend name, for the application harness.  Hit/miss counters feed
:class:`~repro.engine.stats.EngineStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

import numpy as np

from ..core.collectives import CommPlan
from ..core.collectives.planner import _payload_bytes
from ..core.collectives.program import CommProgram
from .request import PlanKey

#: Default plan-cache bound.  Far above any application's working set
#: (a handful of distinct shapes), yet it keeps a service cycling
#: through unbounded shape sequences from leaking plans -- and, since
#: compiled programs hang off cache entries, index tables.
DEFAULT_MAXSIZE = 128

#: Sentinel for :meth:`PlanCache.partition`'s ``maxsize`` ("keep the
#: partition's current bound").
_KEEP: Any = object()


@dataclass
class _CacheEntry:
    """One cached plan plus its lazily compiled program."""

    plan: CommPlan
    program: CommProgram | None = None


@dataclass(frozen=True)
class PartitionKey:
    """A tenant-namespaced cache key.

    Partition views store their entries in the parent cache under
    ``PartitionKey(tenant, key)``, so two tenants issuing the identical
    collective shape compile (and evict) independently -- the isolation
    the serving front-end's per-tenant quotas rely on.
    """

    tenant: str
    key: Any


class CachePartition:
    """One tenant's view of a shared :class:`PlanCache`.

    The view namespaces every key with the tenant id, keeps its own LRU
    order and (optional) ``maxsize`` bound, and counts its own hits,
    misses, and evictions.  A partition evicting never touches another
    tenant's entries; conversely, when the *parent's* global LRU bound
    drops a partitioned entry, the owning partition is notified so its
    bookkeeping (and eviction count) stays truthful.
    """

    def __init__(self, parent: "PlanCache", tenant: str,
                 maxsize: int | None = None) -> None:
        self.parent = parent
        self.tenant = tenant
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._order: OrderedDict[PartitionKey, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Any) -> bool:
        return self._wrap(key) in self.parent

    def _wrap(self, key: Any) -> PartitionKey:
        return PartitionKey(self.tenant, key)

    def fetch(self, key: Any,
              builder: Callable[[], CommPlan]) -> tuple[CommPlan, bool]:
        """Cached plan for ``key`` within this partition; (plan, hit)."""
        wrapped = self._wrap(key)
        plan, hit = self.parent.fetch(wrapped, builder)
        if hit:
            self.hits += 1
            if wrapped in self._order:
                self._order.move_to_end(wrapped)
        else:
            self.misses += 1
            self._order[wrapped] = None
            self._enforce()
        return plan, hit

    def fetch_program(self, key: Any,
                      builder: Callable[[], CommProgram]
                      ) -> tuple[CommProgram, bool]:
        """Compiled program for ``key``'s partitioned plan entry."""
        return self.parent.fetch_program(self._wrap(key), builder)

    def fetch_schedule(self, key: Any) -> Any:
        """This partition's cached schedule decision (None = undecided)."""
        return self.parent.fetch_schedule(self._wrap(key))

    def store_schedule(self, key: Any, schedule: Any) -> None:
        """Commit a tuner decision under this partition's namespace."""
        self.parent.store_schedule(self._wrap(key), schedule)

    def invalidate_schedule(self, key: Any) -> None:
        """Drop this partition's decision for ``key`` (re-tune trigger)."""
        self.parent.invalidate_schedule(self._wrap(key))

    def _enforce(self) -> None:
        """Apply this partition's LRU bound (parent entries drop too)."""
        while self.maxsize is not None and len(self._order) > self.maxsize:
            victim, _ = self._order.popitem(last=False)
            self.parent.discard(victim)
            self.evictions += 1

    def _dropped(self, wrapped: PartitionKey) -> None:
        """Parent callback: the global LRU evicted one of our entries."""
        if wrapped in self._order:
            del self._order[wrapped]
            self.evictions += 1

    def counters(self) -> dict[str, int]:
        """Plain-dict snapshot for :class:`~repro.engine.EngineStats`."""
        return {"plans": len(self._order), "hits": self.hits,
                "misses": self.misses, "evictions": self.evictions}

    def clear(self) -> None:
        """Drop this partition's entries (parent entries included)."""
        while self._order:
            victim, _ = self._order.popitem(last=False)
            self.parent.discard(victim)
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class PlanCache:
    """An LRU map from :class:`PlanKey` to compiled :class:`CommPlan`.

    Each entry also carries the plan's lowered :class:`CommProgram`
    once the engine first compiles it (:meth:`fetch_program`), so the
    steady state hits both the plan and its replay program with one
    lookup.  Eviction (LRU order, bound :data:`DEFAULT_MAXSIZE` unless
    overridden) drops both together; ``maxsize=None`` never evicts.
    """

    def __init__(self, maxsize: int | None = DEFAULT_MAXSIZE) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._plans: OrderedDict[PlanKey, _CacheEntry] = OrderedDict()
        self._partitions: dict[str, CachePartition] = {}
        # Tuner decisions (schedule_key -> Schedule) live in their own
        # LRU map: a decision is a few dozen bytes while a plan entry
        # carries a compiled program, so plan eviction pressure must
        # not wash out tuning decisions (and vice versa).  Bounded by
        # the same maxsize; a dropped decision merely re-searches.
        self._schedules: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def fetch(self, key: PlanKey,
              builder: Callable[[], CommPlan]) -> tuple[CommPlan, bool]:
        """Cached plan for ``key`` plus whether it was a hit.

        The flag refers to *this* lookup, so callers no longer have to
        infer it by differencing the global ``hits`` counter -- a
        race-of-meaning that breaks as soon as ``builder`` performs a
        nested lookup of its own.
        """
        entry = self._plans.get(key)
        if entry is not None:
            self.hits += 1
            self._plans.move_to_end(key)
            return entry.plan, True
        self.misses += 1
        plan = builder()
        self._plans[key] = _CacheEntry(plan)
        if self.maxsize is not None and len(self._plans) > self.maxsize:
            evicted, _ = self._plans.popitem(last=False)
            self.evictions += 1
            self._notify_evicted(evicted)
        return plan, False

    def fetch_program(self, key: PlanKey,
                      builder: Callable[[], CommProgram]
                      ) -> tuple[CommProgram, bool]:
        """Compiled program for ``key``'s cached plan; (program, hit).

        Compiles lazily on first request and parks the program on the
        plan's cache entry.  If the plan itself is no longer cached
        (evicted between the plan fetch and this call), the program is
        built but not stored -- correctness never depends on the cache.
        """
        entry = self._plans.get(key)
        if entry is None:
            return builder(), False
        self._plans.move_to_end(key)
        if entry.program is not None:
            return entry.program, True
        entry.program = builder()
        return entry.program, False

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], CommPlan]) -> CommPlan:
        """Return the cached plan for ``key``, compiling on first use."""
        plan, _ = self.fetch(key, builder)
        return plan

    # ------------------------------------------------------------------
    # Tuner decisions
    # ------------------------------------------------------------------
    def fetch_schedule(self, key: Any) -> Any:
        """The committed schedule decision for ``key``, or None."""
        schedule = self._schedules.get(key)
        if schedule is not None:
            self._schedules.move_to_end(key)
        return schedule

    def store_schedule(self, key: Any, schedule: Any) -> None:
        """Commit one tuner decision (LRU-bounded by ``maxsize``)."""
        self._schedules[key] = schedule
        self._schedules.move_to_end(key)
        while self.maxsize is not None \
                and len(self._schedules) > self.maxsize:
            self._schedules.popitem(last=False)

    def invalidate_schedule(self, key: Any) -> None:
        """Drop one decision so the next lookup re-searches."""
        self._schedules.pop(key, None)

    @property
    def schedules(self) -> int:
        """Number of committed schedule decisions currently cached."""
        return len(self._schedules)

    # ------------------------------------------------------------------
    # Tenant partitions
    # ------------------------------------------------------------------
    def partition(self, tenant: str,
                  maxsize: int | None = _KEEP) -> CachePartition:
        """The (lazily created) :class:`CachePartition` for ``tenant``.

        ``maxsize`` sets or updates the partition's own LRU bound
        (``None`` = only the parent's global bound applies); omit it to
        keep the partition's current bound.  Entries live in this
        cache's map under tenant-namespaced keys, so the global
        ``maxsize`` still bounds total memory.
        """
        view = self._partitions.get(tenant)
        if view is None:
            view = CachePartition(self, tenant,
                                  None if maxsize is _KEEP else maxsize)
            self._partitions[tenant] = view
        elif maxsize is not _KEEP:
            view.maxsize = maxsize
            view._enforce()
        return view

    def partition_counters(self) -> dict[str, dict[str, int]]:
        """tenant -> counter snapshot, for stats and reports."""
        return {tenant: view.counters()
                for tenant, view in sorted(self._partitions.items())}

    def discard(self, key: Any) -> None:
        """Drop one entry (plan and program) without LRU accounting.

        Used by partitions enforcing their own bounds; a partition
        counts the eviction itself, so the global ``evictions`` counter
        keeps meaning "dropped by the *global* LRU bound".
        """
        self._plans.pop(key, None)

    def _notify_evicted(self, key: Any) -> None:
        """Tell the owning partition its entry fell to the global LRU."""
        if isinstance(key, PartitionKey):
            view = self._partitions.get(key.tenant)
            if view is not None:
                view._dropped(key)

    @property
    def lookups(self) -> int:
        """Total lookups performed (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache.

        Defined as 0.0 for a fresh (zero-lookup) cache, so sessions can
        report statistics before their first collective without a
        division hazard.
        """
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def clear(self) -> None:
        """Drop all plans (and their programs) and reset the counters.

        Partition views survive (their bounds are configuration), but
        their contents and counters reset along with the parent.
        """
        self._plans.clear()
        self._schedules.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        for view in self._partitions.values():
            view._order.clear()
            view.hits = 0
            view.misses = 0
            view.evictions = 0


def bind_payloads(plan: CommPlan,
                  payloads: Mapping[int, np.ndarray] | None) -> CommPlan:
    """Graft per-call payloads onto a cached, payload-free plan.

    Returns ``plan`` unchanged when there is nothing to bind.  Only
    steps that source data from host payloads (and are not already fed
    from a scratch key by an earlier step) are copied; all other steps
    are shared with the cached plan, which stays payload-free.
    """
    if payloads is None:
        return plan
    raw = _payload_bytes(payloads)
    steps = []
    bound = False
    for step in plan.steps:
        takes_payloads = (hasattr(step, "payloads")
                          and getattr(step, "scratch_key", None) is None)
        if takes_payloads:
            steps.append(replace(step, payloads=raw))
            bound = True
        else:
            steps.append(step)
    if not bound:
        return plan
    return CommPlan(plan.primitive, steps, plan.meta)
