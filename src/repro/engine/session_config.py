"""The frozen session configuration: one object, one construction path.

:class:`SessionConfig` consolidates what used to be eight sprawling
``Communicator.__init__`` keyword arguments (``config``, ``functional``,
``cache_size``, ``reliability``, ``fault_injector``, ``backend``,
``execution``, ``stream_tile_bytes``) into a single frozen dataclass::

    from repro import Communicator, SessionConfig

    cfg = SessionConfig(functional=False, backend="vectorized",
                        stream_tile_bytes=8 << 20)
    comm = Communicator(manager, cfg)

Freezing matters for the serving front-end (``repro.serving``): a
:class:`~repro.serving.CollectiveServer` admits many tenants onto one
session, so the session's configuration must be a value that can be
validated once, shared, compared, and stamped into reports -- not a
bag of mutable attributes.  The legacy keyword arguments keep working
(they route through :meth:`SessionConfig.from_kwargs` and emit a
:class:`DeprecationWarning` naming the migration).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any

from ..core.collectives import FULL, OptConfig
from ..errors import CollectiveError
from ..reliability import FaultInjector, ReliabilityPolicy
from .cache import DEFAULT_MAXSIZE

#: Execution strategies for cached plans (``SessionConfig(execution=...)``).
EXECUTION_MODES = ("auto", "interpreted", "compiled")


@dataclass(frozen=True)
class SessionConfig:
    """Everything that shapes one :class:`~repro.engine.Communicator`.

    Args:
        config: Default :class:`OptConfig` (per-call overrides allowed).
        functional: Whether calls move real bytes (False = analytic
            pricing only); overridable per call and per batch.
        cache_size: Plan-cache bound (None = unbounded; default
            :data:`~repro.engine.cache.DEFAULT_MAXSIZE`, LRU).
        reliability: Retry/degradation policy.  Defaults to
            :data:`~repro.reliability.RELIABLE` when a fault injector
            is supplied, else None (faults propagate to the caller).
        fault_injector: Attached to the manager's system so every
            transfer and launch consults it (``docs/reliability.md``).
        backend: Execution backend to switch the manager's system to
            (``"scalar"`` or ``"vectorized"``); None keeps the
            system's current backend (``docs/performance.md``).
        execution: ``"auto"`` (default) replays cached plans through
            compiled programs whenever no fault injector is attached,
            falling back to step interpretation otherwise;
            ``"interpreted"`` always interprets; ``"compiled"``
            demands program replay and raises if an injector (which
            only the interpreted steps consult) is attached.
        stream_tile_bytes: Streaming scratch budget per buffer.  When
            set, compiled replays run tile-by-tile through one
            session-owned double-buffered scratch pool; peak working
            memory is bounded to O(tile) (``docs/performance.md``).
            None (default) replays unstreamed.  Requires a
            compiled-capable execution mode.
        parallel_workers: Host threads replaying independent work
            concurrently (default 1 = serial, today's behavior).
            With N > 1 the session owns a
            :class:`~repro.engine.parallel.WorkerPool`: hazard-free
            requests of one ``submit()`` wave run concurrently, and
            streamed replays fan their row bands across the workers,
            each with private scratch.  Results, ledgers and counters
            are bit-identical at every worker count -- only wall-clock
            changes.  Sessions with a fault injector or reliability
            policy fall back to serial execution (the injector's RNG
            is stateful), counted in ``EngineStats.parallel_fallbacks``
            (``docs/performance.md``).
        autotune: ``None`` (default) runs the knobs exactly as
            configured.  ``"offline"`` lets a cost-model-guided
            :class:`~repro.analysis.autotune.Tuner` pick the execution
            schedule (backend/execution/tile/rung) per collective
            shape, caching decisions beside the compiled plans;
            ``"online"`` additionally probes the model's shortlist
            with measured replay seconds and re-tunes when observed
            cost diverges from modelled cost.  Knobs set explicitly
            (``backend``, ``execution``, ``stream_tile_bytes``) pin
            their axis -- the tuner only decides what was left open.
            Incompatible with ``fault_injector``/``reliability``
            (``docs/performance.md``).
        elide_transfers: Content-aware transfer elision (default
            False).  When True, compiled replays fingerprint-scan
            their movement sources and skip the gather and bus charge
            for all-zero / byte-identical output rows, substituting a
            broadcast fill or an aliased copy of the verified
            representative -- results stay bit-identical to the
            interpreted oracle at any elision rate, and scan work is
            priced to the ledger's ``elide`` category.  Requires a
            compiled-capable execution mode
            (``execution="interpreted"`` raises); calls that fall back
            to the interpreted path -- a fault injector is attached,
            for example -- simply run without elision
            (``docs/performance.md``).
    """

    config: OptConfig = FULL
    functional: bool = True
    cache_size: int | None = DEFAULT_MAXSIZE
    reliability: ReliabilityPolicy | None = None
    fault_injector: FaultInjector | None = None
    backend: str | None = None
    execution: str = "auto"
    stream_tile_bytes: int | None = None
    parallel_workers: int = 1
    autotune: str | None = None
    elide_transfers: bool = False

    def __post_init__(self) -> None:
        """Validate the combination once, at construction."""
        if self.execution not in EXECUTION_MODES:
            raise CollectiveError(
                f"unknown execution mode {self.execution!r}; "
                f"known: {EXECUTION_MODES}")
        if self.stream_tile_bytes is not None:
            if self.stream_tile_bytes <= 0:
                raise CollectiveError(
                    f"stream_tile_bytes must be positive, got "
                    f"{self.stream_tile_bytes}")
            if self.execution == "interpreted":
                raise CollectiveError(
                    "stream_tile_bytes streams compiled replays; use "
                    "execution='auto' or 'compiled'")
        if not isinstance(self.parallel_workers, int) \
                or self.parallel_workers < 1:
            raise CollectiveError(
                f"parallel_workers must be an int >= 1, got "
                f"{self.parallel_workers!r}")
        if self.backend is not None \
                and self.backend not in ("scalar", "vectorized"):
            raise CollectiveError(
                f"unknown backend {self.backend!r}; "
                f"known: ('scalar', 'vectorized')")
        if self.elide_transfers and self.execution == "interpreted":
            raise CollectiveError(
                "elide_transfers runs in compiled replay; use "
                "execution='auto' or 'compiled'")
        if self.autotune is not None:
            if self.autotune not in ("offline", "online"):
                raise CollectiveError(
                    f"unknown autotune mode {self.autotune!r}; "
                    f"known: ('offline', 'online')")
            if self.fault_injector is not None or self.reliability is not None:
                raise CollectiveError(
                    "autotune cannot run under a fault injector or "
                    "reliability policy: tuned schedules replay compiled "
                    "programs, and fault handling is interpreted-only")

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "SessionConfig":
        """Build a config from the legacy ``Communicator`` kwargs.

        Rejects unknown names with the same error a mistyped keyword
        argument used to raise, so legacy call sites migrate loudly.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            raise CollectiveError(
                f"unknown session option(s) {unknown}; "
                f"known: {sorted(known)}")
        return cls(**kwargs)

    def evolve(self, **changes: Any) -> "SessionConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary naming only the non-default choices."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                label = getattr(value, "label", value)
                parts.append(f"{f.name}={label}")
        return f"SessionConfig({', '.join(parts)})"
