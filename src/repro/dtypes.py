"""Element types and reduction operators supported by the library.

UPMEM DPUs natively operate on 8/16/32/64-bit integers; host-side
reductions additionally support IEEE floats (the host performs all
arithmetic in PID-Comm, so float support is a host property).  A
:class:`DataType` couples the numpy dtype with the properties the
collective planner needs: the element width (which decides how many
elements share a 64-bit PIM word) and whether the *cross-domain
modulation* shortcut applies to arithmetic primitives (it does only for
8-bit elements, because single bytes are interpretable by the host
without a domain transfer -- paper section V-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import CollectiveError

#: Width in bytes of the PIM word striped across an entangled group.
PIM_WORD_BYTES = 8


@dataclass(frozen=True)
class DataType:
    """An element type usable in PID-Comm buffers.

    Attributes:
        name: Short name used in APIs and reports (e.g. ``"int32"``).
        np_dtype: The numpy dtype carrying the values.
    """

    name: str
    np_dtype: np.dtype

    @property
    def itemsize(self) -> int:
        """Element width in bytes."""
        return self.np_dtype.itemsize

    @property
    def elems_per_word(self) -> int:
        """How many elements pack into one 64-bit PIM word."""
        return PIM_WORD_BYTES // self.itemsize

    @property
    def cross_domain_reducible(self) -> bool:
        """Whether arithmetic on this type works on raw PIM-domain bytes.

        True only for 1-byte types: each byte is a full element, so the
        host can reduce without undoing the byte striping (paper V-C).
        """
        return self.itemsize == 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _dt(name: str) -> DataType:
    return DataType(name, np.dtype(name))


INT8 = _dt("int8")
UINT8 = _dt("uint8")
INT16 = _dt("int16")
UINT16 = _dt("uint16")
INT32 = _dt("int32")
UINT32 = _dt("uint32")
INT64 = _dt("int64")
UINT64 = _dt("uint64")
FLOAT32 = _dt("float32")
FLOAT64 = _dt("float64")

ALL_TYPES = (
    INT8, UINT8, INT16, UINT16, INT32, UINT32, INT64, UINT64,
    FLOAT32, FLOAT64,
)

_BY_NAME = {t.name: t for t in ALL_TYPES}


def dtype_by_name(name: str) -> DataType:
    """Look up a :class:`DataType` by its short name.

    Raises:
        CollectiveError: If the name is unknown.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CollectiveError(
            f"unknown data type {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


@dataclass(frozen=True)
class ReduceOp:
    """A reduction operator usable by Reduce/ReduceScatter/AllReduce.

    Attributes:
        name: Operator name (``"sum"``, ``"min"``, ...).
        ufunc: The numpy ufunc implementing it elementwise.
        identity_for: Callable giving the identity element for a dtype.
    """

    name: str
    ufunc: np.ufunc

    def identity(self, dtype: DataType) -> np.ndarray:
        """Return a scalar identity element for ``dtype``."""
        if self.name == "sum":
            value = 0
        elif self.name == "prod":
            value = 1
        elif self.name == "min":
            info = _type_bounds(dtype)
            value = info[1]
        elif self.name == "max":
            info = _type_bounds(dtype)
            value = info[0]
        elif self.name == "bor":
            value = 0
        elif self.name == "band":
            value = -1 if dtype.np_dtype.kind == "i" else np.iinfo(dtype.np_dtype).max
        else:  # pragma: no cover - defensive
            raise CollectiveError(f"no identity for op {self.name!r}")
        return np.asarray(value, dtype=dtype.np_dtype)

    def combine(self, left: np.ndarray, right: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """Elementwise-reduce two arrays of the same dtype.

        Pass ``out`` (may alias ``left``) to accumulate in place --
        the allocation-free variant streamed replay folds with.
        """
        return self.ufunc(left, right, out=out)

    def reduce_axis(self, stacked: np.ndarray, axis: int = 0,
                    out: np.ndarray | None = None) -> np.ndarray:
        """Reduce a stacked array along ``axis``.

        The accumulator keeps the input dtype (fixed-width modular
        arithmetic, as the hardware would), instead of numpy's default
        promotion of small integers to 64-bit.  ``out`` receives the
        result without allocating when provided.
        """
        return self.ufunc.reduce(stacked, axis=axis, dtype=stacked.dtype,
                                 out=out)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _type_bounds(dtype: DataType) -> tuple[float, float]:
    if dtype.np_dtype.kind in "iu":
        info = np.iinfo(dtype.np_dtype)
        return (info.min, info.max)
    finfo = np.finfo(dtype.np_dtype)
    return (-finfo.max, finfo.max)


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MIN = ReduceOp("min", np.minimum)
MAX = ReduceOp("max", np.maximum)
BOR = ReduceOp("bor", np.bitwise_or)
BAND = ReduceOp("band", np.bitwise_and)

ALL_OPS = (SUM, PROD, MIN, MAX, BOR, BAND)
_OPS_BY_NAME = {op.name: op for op in ALL_OPS}

#: Ops that only make sense on integer types.
BITWISE_OPS = frozenset({"bor", "band"})


def op_by_name(name: str) -> ReduceOp:
    """Look up a :class:`ReduceOp` by name.

    Raises:
        CollectiveError: If the name is unknown.
    """
    try:
        return _OPS_BY_NAME[name]
    except KeyError:
        raise CollectiveError(
            f"unknown reduce op {name!r}; known: {sorted(_OPS_BY_NAME)}"
        ) from None


def check_op_dtype(op: ReduceOp, dtype: DataType) -> None:
    """Validate an op/dtype pairing.

    Raises:
        CollectiveError: For bitwise ops on float types.
    """
    if op.name in BITWISE_OPS and dtype.np_dtype.kind == "f":
        raise CollectiveError(
            f"reduce op {op.name!r} is not defined for float type {dtype.name!r}"
        )
