"""One harness per evaluation table/figure (see DESIGN.md section 5).

Every function reruns the corresponding experiment on the analytic
simulator at paper scale and returns structured rows; the benchmark
suite prints them in the paper's format and EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Sequence

from ..apps import BaselineCommBackend, PidCommBackend
from ..baselines import (
    baseline_plan,
    capability_table,
    ring_allreduce_plan,
    tree_allreduce_plan,
)
from ..apps.registry import app_table
from ..core.collectives import (
    ABLATION_LADDER,
    FULL,
    OptConfig,
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)
from ..core.hypercube import HypercubeManager
from ..dtypes import INT64, SUM
from ..errors import PidCommError
from ..hw.timing import throughput_gbps
from ..multihost import (
    MultiHostSystem,
    multihost_allgather,
    multihost_allreduce,
    multihost_alltoall,
    multihost_reduce_scatter,
)
from .report import geomean
from .workloads import (
    MB,
    PAPER_APPS,
    PRIMITIVE_PAYLOAD,
    app_manager,
    manager_2d,
    testbed,
)

ALL_PRIMITIVES = ("alltoall", "reduce_scatter", "allgather", "allreduce",
                  "scatter", "gather", "reduce", "broadcast")
INTER_PE_PRIMITIVES = ("alltoall", "reduce_scatter", "allreduce", "allgather")


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _pid_plan(primitive: str, manager: HypercubeManager, dims: str,
              payload: int, config: OptConfig = FULL):
    """PID-Comm plan with Figure 14/17 payload conventions.

    ``payload`` is the *large* side per PE: AllGather's input chunk is
    ``payload / group_size`` so every PE *receives* ``payload`` bytes.
    """
    from ..core.groups import group_size
    if primitive == "alltoall":
        return plan_alltoall(manager, dims, payload, 0, 0, INT64, config)
    if primitive == "allgather":
        chunk = payload // group_size(manager, dims)
        return plan_allgather(manager, dims, chunk, 0, 0, INT64, config)
    if primitive == "reduce_scatter":
        return plan_reduce_scatter(manager, dims, payload, 0, 0, INT64, SUM,
                                   config)
    if primitive == "allreduce":
        return plan_allreduce(manager, dims, payload, 0, 0, INT64, SUM,
                              config)
    if primitive == "scatter":
        return plan_scatter(manager, dims, payload, 0, INT64, None, config)
    if primitive == "gather":
        return plan_gather(manager, dims, payload, 0, INT64, config)
    if primitive == "reduce":
        return plan_reduce(manager, dims, payload, 0, INT64, SUM, config)
    if primitive == "broadcast":
        return plan_broadcast(manager, dims, payload, 0, INT64, None, config)
    raise PidCommError(f"unknown primitive {primitive!r}")


def _base_plan(primitive: str, manager: HypercubeManager, dims: str,
               payload: int):
    from ..core.groups import group_size
    size = payload
    if primitive == "allgather":
        size = payload // group_size(manager, dims)
    return baseline_plan(primitive, manager, dims, size, 0, 0, INT64, SUM)


def _tput(payload_total: float, seconds: float) -> float:
    return throughput_gbps(payload_total, seconds)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1():
    """Table I: framework capability matrix."""
    return capability_table()


def table2():
    """Table II: which technique applies to which primitive.

    Introspected from the planners: build every primitive's plan at
    each ablation rung and observe which steps/costs change -- the
    matrix is read off the implementation, not hard-coded.
    """
    manager = manager_2d()
    system = manager.system
    payload = 256 << 10
    rows = []
    for prim in ALL_PRIMITIVES:
        ladder = {}
        for config in ABLATION_LADDER:
            ladder[config.label] = _pid_plan(
                prim, manager, "10", payload, config).estimate(system)
        def differs(a, b):
            return abs(ladder[a].total - ladder[b].total) > 1e-12
        rows.append({
            "primitive": prim,
            "pe_assisted_reordering": ladder["+PR"].get("pe") > 0,
            "in_register_modulation": differs("+PR", "+IM"),
            "cross_domain_modulation": differs("+IM", "+CM"),
        })
    return rows


def table3():
    """Table III: benchmark application characteristics."""
    return app_table()


# ----------------------------------------------------------------------
# Figure 4 -- motivation: baseline application time breakdown
# ----------------------------------------------------------------------
def fig04_motivation():
    """Comm share of baseline apps + where the comm time goes."""
    rows = []
    system = testbed()
    for name, factory in PAPER_APPS.items():
        app = factory()
        manager = app_manager(name, system, 1024)
        result = app.run(manager, BaselineCommBackend(), functional=False)
        comm = result.comm_seconds
        ledger = result.ledger
        comm_shares = {}
        for cat in ("host_mod", "host_mem", "dt"):
            comm_shares[cat] = (ledger.get(cat) / comm) if comm else 0.0
        rows.append({
            "app": name,
            "total_s": result.seconds,
            "comm_frac": comm / result.seconds,
            "modulation_frac_of_comm": comm_shares["host_mod"],
            "host_mem_frac_of_comm": comm_shares["host_mem"],
            "dt_frac_of_comm": comm_shares["dt"],
        })
    return rows


# ----------------------------------------------------------------------
# Figures 13 & 15 -- applications: breakdown and speedup
# ----------------------------------------------------------------------
def fig13_app_breakdown():
    """Per-primitive time inside each app, baseline vs PID-Comm."""
    rows = []
    system = testbed()
    for name, factory in PAPER_APPS.items():
        for backend in (BaselineCommBackend(), PidCommBackend()):
            app = factory()
            manager = app_manager(name, system, 1024)
            result = app.run(manager, backend, functional=False)
            row = {"app": name, "backend": backend.name,
                   "total_s": result.seconds}
            for prim in ("kernel",) + ALL_PRIMITIVES:
                row[prim] = result.per_primitive.get(prim, 0.0)
            rows.append(row)
    return rows


def fig15_app_speedup(include_variants: bool = False):
    """End-to-end app speedup of PID-Comm over the baseline.

    ``include_variants`` adds the paper's secondary configurations
    (MLP with 32k x 32k weights, DLRM with embedding dim 32).
    """
    from .workloads import paper_dlrm, paper_mlp
    rows = []
    system = testbed()
    apps = dict(PAPER_APPS)
    if include_variants:
        apps["MLP-32k"] = lambda: paper_mlp(features=32 * 1024)
        apps["DLRM-e32"] = lambda: paper_dlrm(embedding_dim=32)
    for name, factory in apps.items():
        base_name = name.split("-")[0] if name in ("MLP-32k", "DLRM-e32") \
            else name
        manager = app_manager(base_name, system, 1024)
        base = factory().run(manager, BaselineCommBackend(),
                             functional=False)
        pid = factory().run(manager, PidCommBackend(), functional=False)
        rows.append({"app": name, "baseline_s": base.seconds,
                     "pidcomm_s": pid.seconds,
                     "speedup": base.seconds / pid.seconds})
    rows.append({"app": "geomean", "baseline_s": 0.0, "pidcomm_s": 0.0,
                 "speedup": geomean([r["speedup"] for r in rows])})
    return rows


# ----------------------------------------------------------------------
# Figure 14 -- primitive throughput at (32, 32)
# ----------------------------------------------------------------------
def fig14_primitives(payload: int = PRIMITIVE_PAYLOAD):
    """Throughput of all 8 primitives, baseline vs PID-Comm."""
    manager = manager_2d()
    total = payload * manager.num_nodes
    rows = []
    for prim in ALL_PRIMITIVES:
        base_s = _base_plan(prim, manager, "10", payload).estimate(
            manager.system).total
        pid_s = _pid_plan(prim, manager, "10", payload).estimate(
            manager.system).total
        rows.append({
            "primitive": prim,
            "baseline_gbps": _tput(total, base_s),
            "pidcomm_gbps": _tput(total, pid_s),
            "speedup": base_s / pid_s,
        })
    rows.append({"primitive": "geomean", "baseline_gbps": 0.0,
                 "pidcomm_gbps": 0.0,
                 "speedup": geomean([r["speedup"] for r in rows])})
    return rows


# ----------------------------------------------------------------------
# Figures 16 & 17 -- ablation and per-technique breakdown
# ----------------------------------------------------------------------
def fig16_ablation(payload: int = PRIMITIVE_PAYLOAD):
    """Throughput ladder Baseline -> +PR -> +IM -> +CM."""
    manager = manager_2d()
    total = payload * manager.num_nodes
    rows = []
    for prim in INTER_PE_PRIMITIVES:
        row = {"primitive": prim}
        for config in ABLATION_LADDER:
            seconds = _pid_plan(prim, manager, "10", payload,
                                config).estimate(manager.system).total
            row[config.label] = _tput(total, seconds)
        rows.append(row)
    return rows


def fig16_step_geomeans(rows: Sequence[dict] | None = None):
    """Geomean improvement of each technique step (the paper's numbers)."""
    rows = rows or fig16_ablation()
    steps = []
    ladder = [c.label for c in ABLATION_LADDER]
    for prev, nxt in zip(ladder, ladder[1:]):
        ratios = [r[nxt] / r[prev] for r in rows]
        applicable = [r[nxt] / r[prev] for r in rows
                      if r[nxt] / r[prev] > 1.001]
        steps.append({
            "step": f"{prev} -> {nxt}",
            "geomean_all": geomean(ratios),
            "geomean_where_applicable": (geomean(applicable)
                                         if applicable else 1.0),
        })
    return steps


def fig17_breakdown(payload: int = PRIMITIVE_PAYLOAD):
    """Category breakdown per primitive per ablation level."""
    manager = manager_2d()
    rows = []
    for prim in INTER_PE_PRIMITIVES:
        for config in ABLATION_LADDER:
            ledger = _pid_plan(prim, manager, "10", payload,
                               config).estimate(manager.system)
            row = {"primitive": prim, "config": config.label,
                   "total_s": ledger.total}
            for cat in ("bus", "dt", "host_mem", "host_mod", "host_reduce",
                        "pe", "launch"):
                row[cat] = ledger.get(cat)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 18 -- data-size sensitivity
# ----------------------------------------------------------------------
def fig18_datasize(sizes: Sequence[int] = (128 << 10, 512 << 10,
                                           2 * MB, 8 * MB)):
    """Primitive throughput over payload sizes for 1-D and 2-D cubes."""
    rows = []
    system = testbed()
    configs = {"1D": (HypercubeManager(system, shape=(1024,)), "1"),
               "2D": (HypercubeManager(system, shape=(32, 32)), "10")}
    for label, (manager, dims) in configs.items():
        total_pes = manager.num_nodes
        for prim in INTER_PE_PRIMITIVES:
            for size in sizes:
                base_s = _base_plan(prim, manager, dims, size).estimate(
                    system).total
                pid_s = _pid_plan(prim, manager, dims, size).estimate(
                    system).total
                rows.append({
                    "cube": label, "primitive": prim, "size_kb": size >> 10,
                    "baseline_gbps": _tput(size * total_pes, base_s),
                    "pidcomm_gbps": _tput(size * total_pes, pid_s),
                    "speedup": base_s / pid_s,
                })
    return rows


# ----------------------------------------------------------------------
# Figure 19 -- PE-count scaling
# ----------------------------------------------------------------------
def fig19_pe_scaling(pe_counts: Sequence[int] = (64, 128, 256, 512, 1024),
                     payload: int = 2 * MB):
    """Primitive throughput as the PE count grows (1-D cubes)."""
    rows = []
    system = testbed()
    for pes in pe_counts:
        manager = HypercubeManager(system, shape=(pes,))
        for prim in INTER_PE_PRIMITIVES:
            base_s = _base_plan(prim, manager, "1", payload).estimate(
                system).total
            pid_s = _pid_plan(prim, manager, "1", payload).estimate(
                system).total
            rows.append({
                "pes": pes, "primitive": prim,
                "baseline_gbps": _tput(payload * pes, base_s),
                "pidcomm_gbps": _tput(payload * pes, pid_s),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 20 -- hypercube shape sensitivity
# ----------------------------------------------------------------------
def fig20_shapes(payload: int = PRIMITIVE_PAYLOAD):
    """3-D shapes of 1024 PEs; communication along the x axis."""
    shapes = [(4, 16, 16), (8, 16, 8), (16, 16, 4), (32, 16, 2),
              (64, 16, 1)]
    rows = []
    system = testbed()
    for shape in shapes:
        manager = HypercubeManager(system, shape=shape)
        row = {"shape": "x".join(map(str, shape))}
        for prim in INTER_PE_PRIMITIVES:
            seconds = _pid_plan(prim, manager, "100", payload).estimate(
                system).total
            row[prim] = _tput(payload * manager.num_nodes, seconds)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 21 -- CPU-only comparison
# ----------------------------------------------------------------------
def fig21_cpu_comparison(pe_counts: Sequence[int] = (64, 256, 1024)):
    """App speedup over the CPU-only system vs PE count."""
    rows = []
    system = testbed()
    for name, factory in PAPER_APPS.items():
        app = factory()
        cpu_s = app.cpu_only_seconds(system.params)
        counts = list(pe_counts)
        if name == "DLRM":
            counts = [c for c in counts if c >= 256]  # paper: OOM below
        if name == "CC":
            counts = [32] + counts  # paper adds 32 to show the sweet spot
        for pes in counts:
            try:
                manager = app_manager(name, system, pes)
            except PidCommError:
                continue
            base = factory().run(manager, BaselineCommBackend(),
                                 functional=False)
            pid = factory().run(manager, PidCommBackend(), functional=False)
            rows.append({
                "app": name, "pes": pes, "cpu_s": cpu_s,
                "pim_baseline_x": cpu_s / base.seconds,
                "pidcomm_x": cpu_s / pid.seconds,
            })
    return rows


# ----------------------------------------------------------------------
# Figure 22 -- word-width sensitivity (GNN)
# ----------------------------------------------------------------------
def fig22_wordbits(widths: Sequence[str] = ("int8", "int32", "int64")):
    """GNN baseline-vs-PID breakdown across element widths."""
    from .workloads import paper_gnn
    rows = []
    system = testbed()
    for width in widths:
        for strategy in ("rs_ar", "ar_ag"):
            app = paper_gnn(strategy, dtype_name=width)
            manager = app_manager("GNN", system, 1024)
            base = app.run(manager, BaselineCommBackend(), functional=False)
            pid = app.run(manager, PidCommBackend(), functional=False)
            rows.append({
                "width": width, "strategy": strategy,
                "baseline_s": base.seconds, "pidcomm_s": pid.seconds,
                "speedup": base.seconds / pid.seconds,
                "pid_comm_s": pid.comm_seconds,
                "pid_kernel_s": pid.per_primitive.get("kernel", 0.0),
            })
    return rows


# ----------------------------------------------------------------------
# Figure 23a -- topology comparison
# ----------------------------------------------------------------------
def fig23a_topologies(payload: int = 1 * MB):
    """Hypercube vs ring vs tree AllReduce (32x32, all optimizations).

    At 1 MB per PE the ring's 2(N-1) synchronous rounds cost ~2x, as in
    the paper; at very large payloads the per-round overheads amortize.
    """
    manager = manager_2d()
    system = manager.system
    pid = plan_allreduce(manager, "10", payload, 0, 0, INT64, SUM,
                         FULL).estimate(system).total
    ring = ring_allreduce_plan(manager, "10", payload, 0, 0, INT64,
                               SUM).estimate(system).total
    tree = tree_allreduce_plan(manager, "10", payload, 0, 0, INT64,
                               SUM).estimate(system).total
    return [
        {"topology": "hypercube (PID-Comm)", "seconds": pid, "slowdown": 1.0},
        {"topology": "ring", "seconds": ring, "slowdown": ring / pid},
        {"topology": "tree", "seconds": tree, "slowdown": tree / pid},
    ]


# ----------------------------------------------------------------------
# Figure 23b -- multi-host scaling
# ----------------------------------------------------------------------
def fig23b_multihost(host_counts: Sequence[int] = (1, 2, 3, 4),
                     payload: int = 2 * MB):
    """AllReduce/AlltoAll with 1-4 hosts, 256 PEs + 2 MB per PE each."""
    rows = []
    for hosts in host_counts:
        mh = MultiHostSystem(hosts)
        ar = multihost_allreduce(mh, payload, 0, 0, functional=False)
        aligned = _aligned_alltoall_payload(payload, mh.total_pes)
        aa = multihost_alltoall(MultiHostSystem(hosts), aligned, 0, 0,
                                functional=False)
        # The discussion also mentions ReduceScatter (data sent after
        # reduction) and AllGather (sent before duplication).
        rs = multihost_reduce_scatter(MultiHostSystem(hosts), aligned, 0, 0,
                                      functional=False)
        ag = multihost_allgather(
            MultiHostSystem(hosts), max(8, payload // mh.total_pes // 8 * 8),
            0, 0, functional=False)
        rows.append({
            "hosts": hosts,
            "allreduce_local_s": ar.ledger.total,
            "allreduce_mpi_s": ar.mpi_seconds,
            "reduce_scatter_mpi_s": rs.mpi_seconds,
            "allgather_mpi_s": ag.mpi_seconds,
            "alltoall_local_s": aa.ledger.total,
            "alltoall_mpi_s": aa.mpi_seconds,
            "alltoall_mpi_frac": (aa.mpi_seconds / aa.seconds
                                  if aa.seconds else 0.0),
        })
    return rows


def _aligned_alltoall_payload(payload: int, total_pes: int) -> int:
    chunk = max(8, (payload // total_pes) // 8 * 8)
    return chunk * total_pes


# ----------------------------------------------------------------------
# Extra ablations called out in DESIGN.md
# ----------------------------------------------------------------------
def ablation_fused_allreduce(payload: int = PRIMITIVE_PAYLOAD):
    """Fused AllReduce vs composed ReduceScatter + AllGather."""
    manager = manager_2d()
    system = manager.system
    fused = plan_allreduce(manager, "10", payload, 0, 0, INT64, SUM,
                           FULL).estimate(system).total
    from ..core.groups import group_size
    g = group_size(manager, "10")
    rs = plan_reduce_scatter(manager, "10", payload, 0, 0, INT64, SUM,
                             FULL).estimate(system).total
    ag = plan_allgather(manager, "10", payload // g, 0, 0, INT64,
                        FULL).estimate(system).total
    return [
        {"variant": "fused (PID-Comm)", "seconds": fused},
        {"variant": "RS + AG composed", "seconds": rs + ag,
         "overhead_x": (rs + ag) / fused},
    ]


def ablation_eg_alignment(payload: int = 1 * MB):
    """Cost of ignoring entangled groups when picking PEs.

    Compares an AlltoAll over one full entangled group against one over
    the same number of PEs spread one-per-group (what a naive symmetric
    mapping can produce) -- the section III-B motivation.
    """
    system = testbed()
    geom = system.geometry
    aligned = list(range(geom.chips_per_rank))
    spread = [i * geom.chips_per_rank for i in range(geom.chips_per_rank)]
    rows = []
    for label, pes in (("EG-aligned", aligned), ("spread (naive)", spread)):
        util = geom.lane_utilization(pes)
        seconds = system.params.bus_time(
            2 * payload * len(pes), geom.channels_used(pes), util)
        rows.append({"placement": label, "lane_utilization": util,
                     "bus_seconds": seconds})
    rows[1]["slowdown_x"] = rows[1]["bus_seconds"] / rows[0]["bus_seconds"]
    return rows
