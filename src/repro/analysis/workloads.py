"""Paper-scale workload definitions shared by the benchmark harnesses.

These mirror the evaluation setup of section VIII: the 1024-PE testbed,
8 MB-per-PE primitive payloads, and the five applications at the
dataset scales of Table III (with the synthetic stand-ins documented in
DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

from ..apps import (
    BfsApp,
    BfsConfig,
    CcApp,
    CcConfig,
    DlrmApp,
    DlrmConfig,
    GnnApp,
    GnnConfig,
    MlpApp,
    MlpConfig,
)
from ..core.hypercube import HypercubeManager
from ..data.graphs import GraphStats
from ..data.synthetic import criteo_like
from ..errors import AppError
from ..hw.system import DimmSystem

MB = 1 << 20

#: Per-PE payload of the primitive studies (Figures 14, 16, 17).
PRIMITIVE_PAYLOAD = 8 * MB

#: The (32, 32) 2-D configuration of Figures 14-17.
GRID_2D = (32, 32)


def testbed() -> DimmSystem:
    """The paper's 1024-PE evaluation system (analytic use)."""
    return DimmSystem.paper_testbed()


def manager_2d(system: DimmSystem | None = None) -> HypercubeManager:
    """The (32, 32) hypercube of Figures 14-17."""
    return HypercubeManager(system or testbed(), shape=GRID_2D)


def manager_1d(system: DimmSystem | None = None,
               pes: int = 1024) -> HypercubeManager:
    """A 1-D hypercube over ``pes`` PEs (Figures 18/19)."""
    return HypercubeManager(system or testbed(), shape=(pes,))


# ----------------------------------------------------------------------
# Paper-scale applications (analytic runs)
# ----------------------------------------------------------------------
def paper_mlp(features: int = 16 * 1024) -> MlpApp:
    """MLP with 16k x 16k (or 32k x 32k) weights, 5 layers."""
    return MlpApp(MlpConfig(features=features, layers=5, batch=256))


def paper_bfs() -> BfsApp:
    """BFS at LiveJournal scale (4.8M vertices / 69M edges)."""
    return BfsApp(GraphStats(4 << 20, 64 << 20), BfsConfig())


def paper_cc() -> CcApp:
    """CC at LiveJournal scale."""
    return CcApp(GraphStats(4 << 20, 64 << 20), CcConfig())


def paper_gnn(strategy: str = "rs_ar", dtype_name: str = "int64",
              features: int = 256) -> GnnApp:
    """GNN at Reddit scale (256k vertices, ~100M edges, 3 layers)."""
    return GnnApp(GraphStats(256 << 10, 100 << 20),
                  GnnConfig(features=features, layers=3, strategy=strategy,
                            dtype_name=dtype_name))


def paper_dlrm(embedding_dim: int = 16) -> DlrmApp:
    """DLRM on the synthetic Criteo-like log (32 tables, 1M rows)."""
    data = criteo_like(batch_size=4096, num_tables=32, num_rows=1 << 20,
                       hots=4)
    return DlrmApp(data, DlrmConfig(embedding_dim=embedding_dim))


def app_manager(app_name: str, system: DimmSystem,
                num_pes: int) -> HypercubeManager:
    """The hypercube each app uses at a given PE count (Figure 21)."""
    if app_name in ("MLP", "BFS", "CC"):
        return HypercubeManager(system, shape=(num_pes,))
    if app_name.startswith("GNN"):
        side = int(round(num_pes ** 0.5))
        if side * side != num_pes:
            raise AppError(
                f"GNN needs a square PE count, got {num_pes}")
        return HypercubeManager(system, shape=(side, side))
    if app_name == "DLRM":
        shapes = {64: (4, 4, 4), 128: (4, 4, 8), 256: (4, 8, 8),
                  512: (4, 8, 16), 1024: (4, 8, 32)}
        if num_pes not in shapes:
            raise AppError(f"no DLRM cube defined for {num_pes} PEs")
        return HypercubeManager(system, shape=shapes[num_pes])
    raise AppError(f"unknown app {app_name!r}")


#: name -> factory for the five paper applications (Table III order).
PAPER_APPS: dict[str, Callable] = {
    "DLRM": paper_dlrm,
    "GNN-RS&AR": lambda: paper_gnn("rs_ar"),
    "GNN-AR&AG": lambda: paper_gnn("ar_ag"),
    "BFS": paper_bfs,
    "CC": paper_cc,
    "MLP": paper_mlp,
}
