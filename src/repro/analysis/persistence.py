"""Persist and compare experiment results (JSON).

``save_results`` writes an experiment's rows plus provenance (machine
parameters, package version) so runs can be archived and diffed;
``compare_results`` reports per-cell relative drift between two runs --
the regression check for cost-model changes.
"""

from __future__ import annotations

import dataclasses
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

from .. import __version__
from ..errors import PidCommError
from ..hw.timing import MachineParams

SCHEMA_VERSION = 1


def save_results(path: str | Path, experiment: str, rows: Sequence[dict],
                 params: MachineParams | None = None) -> Path:
    """Write rows + provenance as JSON; returns the written path."""
    path = Path(path)
    payload = {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "version": __version__,
        "generated": datetime.now(timezone.utc).isoformat(),
        "machine_params": dataclasses.asdict(params or MachineParams()),
        "rows": list(rows),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def load_results(path: str | Path) -> dict:
    """Load a result file, validating the schema."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise PidCommError(
            f"unsupported result schema {payload.get('schema')!r} "
            f"in {path}")
    if "rows" not in payload or "experiment" not in payload:
        raise PidCommError(f"malformed result file {path}")
    return payload


def compare_results(old: dict, new: dict, rel_tol: float = 0.02
                    ) -> list[dict]:
    """Cell-wise relative drift between two result payloads.

    Rows are matched positionally (experiments are deterministic);
    returns one record per numeric cell whose drift exceeds
    ``rel_tol``.  An empty list means no regression.
    """
    if old["experiment"] != new["experiment"]:
        raise PidCommError(
            f"comparing different experiments: {old['experiment']!r} "
            f"vs {new['experiment']!r}")
    drifts = []
    for index, (row_old, row_new) in enumerate(zip(old["rows"],
                                                   new["rows"])):
        for key, value_old in row_old.items():
            if not isinstance(value_old, (int, float)) \
                    or isinstance(value_old, bool):
                continue
            value_new = row_new.get(key)
            if value_new is None:
                drifts.append({"row": index, "column": key,
                               "old": value_old, "new": None,
                               "drift": float("inf")})
                continue
            base = max(abs(value_old), 1e-12)
            drift = abs(value_new - value_old) / base
            if drift > rel_tol:
                drifts.append({"row": index, "column": key,
                               "old": value_old, "new": value_new,
                               "drift": round(drift, 4)})
    if len(old["rows"]) != len(new["rows"]):
        drifts.append({"row": -1, "column": "(row count)",
                       "old": len(old["rows"]), "new": len(new["rows"]),
                       "drift": float("inf")})
    return drifts


def export_all(directory: str | Path,
               names: Sequence[str] | None = None) -> list[Path]:
    """Regenerate experiments and save each as ``<dir>/<name>.json``."""
    from ..__main__ import EXPERIMENTS
    directory = Path(directory)
    written = []
    for name, (fn, _title) in EXPERIMENTS.items():
        if names and name not in names:
            continue
        rows = fn()
        written.append(save_results(directory / f"{name}.json", name, rows))
    return written
