"""Experiment harnesses regenerating every table and figure."""

from .report import geomean, render_table
from . import experiments

__all__ = ["geomean", "render_table", "experiments"]
