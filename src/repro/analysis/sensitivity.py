"""Calibration sensitivity: how robust are the headline results?

A model-based reproduction owes its readers an answer to "what if your
machine constants are off?".  ``parameter_sensitivity`` perturbs each
cost-model parameter by a factor and reports how the headline AlltoAll
speedup (Figure 14's flagship number) moves -- a tornado analysis over
:class:`~repro.hw.timing.MachineParams`.

Parameters whose perturbation barely moves the result cannot have been
the source of the reproduction's agreement with the paper; the ones
that move it most are exactly the ones the calibration pinned against
published numbers (see docs/cost_model.md).
"""

from __future__ import annotations

from dataclasses import fields
from typing import Sequence

from ..core.collectives import FULL, plan_alltoall
from ..core.hypercube import HypercubeManager
from ..baselines import baseline_plan
from ..dtypes import INT64, SUM
from ..hw.system import DimmSystem
from ..hw.timing import MachineParams

#: Parameters meaningfully perturbable (rates and overheads; not counts).
TUNABLE_FIELDS = (
    "bus_gbps_per_channel", "dt_gbps_per_core",
    "mod_scalar_gbps_per_core", "mod_local_gbps_per_core",
    "mod_simd_gbps_per_core", "mod_shuffle_gbps_per_core",
    "reduce_simd_gbps_per_core", "reduce_scalar_gbps_per_core",
    "host_mem_gbps", "pe_mram_gbps", "pe_ops_per_sec",
    "collective_launch_s", "kernel_launch_s",
)


def _headline_speedup(params: MachineParams, payload: int) -> float:
    system = DimmSystem.paper_testbed(params=params)
    manager = HypercubeManager(system, shape=(32, 32))
    base = baseline_plan("alltoall", manager, "10", payload, 0, 0,
                         INT64, SUM).estimate(system).total
    pid = plan_alltoall(manager, "10", payload, 0, 0, INT64,
                        FULL).estimate(system).total
    return base / pid


def parameter_sensitivity(factor: float = 1.3,
                          payload: int = 8 << 20,
                          field_names: Sequence[str] = TUNABLE_FIELDS
                          ) -> list[dict]:
    """Perturb each parameter by ``factor`` up and down.

    Returns one row per parameter with the headline AlltoAll speedup at
    baseline, scaled-up, and scaled-down values, sorted by swing.
    """
    base_params = MachineParams()
    valid = {f.name for f in fields(MachineParams)}
    baseline = _headline_speedup(base_params, payload)
    rows = []
    for name in field_names:
        if name not in valid:
            raise ValueError(f"unknown MachineParams field {name!r}")
        value = getattr(base_params, name)
        up = _headline_speedup(
            base_params.scaled(**{name: value * factor}), payload)
        down = _headline_speedup(
            base_params.scaled(**{name: value / factor}), payload)
        rows.append({
            "parameter": name,
            "baseline_x": round(baseline, 3),
            "scaled_up_x": round(up, 3),
            "scaled_down_x": round(down, 3),
            "swing": round(abs(up - down), 3),
        })
    return sorted(rows, key=lambda r: r["swing"], reverse=True)
