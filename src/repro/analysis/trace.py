"""Plan tracing: per-step cost timelines and category charts (text).

``trace_plan`` prices every step of a plan individually and renders a
timeline like::

    CommPlan(allreduce)                          total 601.7 ms
    0 Launch x1                    |  0.5 ms
    1 PeReorder[rotate_left_rank]  | 11.2 ms  ##
    2 ReduceExchange[inregister]   |401.3 ms  ######################
    3 FanoutFromHost[inregister]   |170.1 ms  #########
    4 PeReorder[reflect_rank]      | 11.2 ms  ##

plus a per-category bar chart -- the same decomposition Figure 17
plots, but for one concrete invocation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collectives.plan import CommPlan
from ..hw.system import DimmSystem
from ..hw.timing import CATEGORIES, CostLedger

_BAR_WIDTH = 40


@dataclass
class StepTrace:
    """Priced record of one plan step."""

    index: int
    label: str
    ledger: CostLedger

    @property
    def seconds(self) -> float:
        return self.ledger.total


def trace_plan(plan: CommPlan, system: DimmSystem) -> list[StepTrace]:
    """Price each step of ``plan`` individually."""
    return [StepTrace(index=i, label=step.describe(),
                      ledger=step.cost(system))
            for i, step in enumerate(plan.steps)]


def _bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0:
        return ""
    return "#" * max(0, round(width * value / maximum))


def render_timeline(plan: CommPlan, system: DimmSystem) -> str:
    """Render a per-step timeline of the plan's modelled time."""
    traces = trace_plan(plan, system)
    total = sum(t.seconds for t in traces)
    label_width = max((len(t.label) for t in traces), default=0)
    lines = [f"CommPlan({plan.primitive})"
             f"{'':{max(1, label_width - len(plan.primitive) - 4)}s}"
             f"total {total * 1e3:.3f} ms"]
    longest = max((t.seconds for t in traces), default=0.0)
    for t in traces:
        lines.append(
            f"{t.index:>2d} {t.label:<{label_width}s} "
            f"|{t.seconds * 1e3:>9.3f} ms  {_bar(t.seconds, longest)}")
    return "\n".join(lines)


def render_categories(plan: CommPlan, system: DimmSystem) -> str:
    """Render the plan's per-category breakdown as a bar chart."""
    ledger = plan.estimate(system)
    breakdown = ledger.breakdown()
    if not breakdown:
        return "(empty plan)"
    longest = max(breakdown.values())
    width = max(len(c) for c in CATEGORIES)
    lines = [f"total {ledger.total * 1e3:.3f} ms"]
    for category, seconds in breakdown.items():
        share = seconds / ledger.total
        lines.append(f"{category:<{width}s} {seconds * 1e3:>9.3f} ms "
                     f"{share:>5.1%}  {_bar(seconds, longest)}")
    return "\n".join(lines)


def dominant_category(plan: CommPlan, system: DimmSystem) -> str:
    """The category the plan spends most of its modelled time in."""
    breakdown = plan.estimate(system).breakdown()
    if not breakdown:
        return "none"
    return max(breakdown, key=breakdown.get)
