"""Plan tracing: per-step cost timelines and category charts (text).

``trace_plan`` prices every step of a plan individually and renders a
timeline like::

    CommPlan(allreduce)                          total 601.7 ms
    0 Launch x1                    |  0.5 ms
    1 PeReorder[rotate_left_rank]  | 11.2 ms  ##
    2 ReduceExchange[inregister]   |401.3 ms  ######################
    3 FanoutFromHost[inregister]   |170.1 ms  #########
    4 PeReorder[reflect_rank]      | 11.2 ms  ##

plus a per-category bar chart -- the same decomposition Figure 17
plots, but for one concrete invocation.

``render_batch_timeline`` does the same for one engine
:class:`~repro.engine.result.BatchResult`: one line per dependency
wave, showing the overlap-aware wave cost against what the same
requests cost serially.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collectives.plan import CommPlan
from ..engine.result import BatchResult
from ..hw.system import DimmSystem
from ..hw.timing import CATEGORIES, CostLedger

_BAR_WIDTH = 40


@dataclass
class StepTrace:
    """Priced record of one plan step."""

    index: int
    label: str
    ledger: CostLedger

    @property
    def seconds(self) -> float:
        return self.ledger.total


def trace_plan(plan: CommPlan, system: DimmSystem) -> list[StepTrace]:
    """Price each step of ``plan`` individually."""
    return [StepTrace(index=i, label=step.describe(),
                      ledger=step.cost(system))
            for i, step in enumerate(plan.steps)]


def _bar(value: float, maximum: float, width: int = _BAR_WIDTH) -> str:
    if maximum <= 0:
        return ""
    return "#" * max(0, round(width * value / maximum))


def render_timeline(plan: CommPlan, system: DimmSystem) -> str:
    """Render a per-step timeline of the plan's modelled time."""
    traces = trace_plan(plan, system)
    total = sum(t.seconds for t in traces)
    label_width = max((len(t.label) for t in traces), default=0)
    lines = [f"CommPlan({plan.primitive})"
             f"{'':{max(1, label_width - len(plan.primitive) - 4)}s}"
             f"total {total * 1e3:.3f} ms"]
    longest = max((t.seconds for t in traces), default=0.0)
    for t in traces:
        lines.append(
            f"{t.index:>2d} {t.label:<{label_width}s} "
            f"|{t.seconds * 1e3:>9.3f} ms  {_bar(t.seconds, longest)}")
    return "\n".join(lines)


def render_categories(plan: CommPlan, system: DimmSystem) -> str:
    """Render the plan's per-category breakdown as a bar chart."""
    ledger = plan.estimate(system)
    breakdown = ledger.breakdown()
    if not breakdown:
        return "(empty plan)"
    longest = max(breakdown.values())
    width = max(len(c) for c in CATEGORIES)
    lines = [f"total {ledger.total * 1e3:.3f} ms"]
    for category, seconds in breakdown.items():
        share = seconds / ledger.total
        lines.append(f"{category:<{width}s} {seconds * 1e3:>9.3f} ms "
                     f"{share:>5.1%}  {_bar(seconds, longest)}")
    return "\n".join(lines)


@dataclass
class WaveTrace:
    """Priced record of one batch wave."""

    index: int
    labels: list[str]
    ledger: CostLedger
    serial_seconds: float
    #: Extra executions the reliability layer spent in this wave
    #: (sum of ``result.attempts - 1`` over the wave's requests).
    retries: int = 0
    #: Payload tiles streamed replay ran across the wave's requests
    #: (0 when the wave executed unstreamed).
    tiles: int = 0

    @property
    def seconds(self) -> float:
        """Overlap-aware modelled time of the wave."""
        return self.ledger.total

    @property
    def overlap_saved(self) -> float:
        """Seconds the concurrent schedule hides vs. serial issue."""
        return max(0.0, self.serial_seconds - self.seconds)


def trace_batch(batch: BatchResult) -> list[WaveTrace]:
    """Per-wave priced records of a submitted batch."""
    labels = {future.index: future.label for future in batch.futures}
    attempts = {future.index: (future.result().attempts
                               if future.done() else 1)
                for future in batch.futures}
    tiles = {future.index: (future.result().tiles
                            if future.done() else 0)
             for future in batch.futures}
    return [WaveTrace(index=cost.index,
                      labels=[labels[i] for i in cost.request_indices],
                      ledger=cost.ledger,
                      serial_seconds=cost.serial_seconds,
                      retries=sum(attempts[i] - 1
                                  for i in cost.request_indices),
                      tiles=sum(tiles[i] for i in cost.request_indices))
            for cost in batch.wave_costs]


def render_batch_timeline(batch: BatchResult) -> str:
    """Render a per-wave timeline of a batch's modelled time.

    Example::

        Batch(3 requests, 2 waves)  total 2.9 ms  serial 4.4 ms  1.52x
        wave 0 |  1.9 ms  ######   alltoall[d1] 4096B + allreduce[d0] ...
        wave 1 |  1.0 ms  ###      allgather[d1] 512B
    """
    traces = trace_batch(batch)
    lines = [f"Batch({len(batch.futures)} requests, {len(traces)} waves)"
             f"  total {batch.seconds * 1e3:.3f} ms"
             f"  serial {batch.serial_seconds * 1e3:.3f} ms"
             f"  {batch.speedup:.2f}x"]
    longest = max((t.seconds for t in traces), default=0.0)
    for t in traces:
        members = " + ".join(t.labels)
        saved = (f"  (hides {t.overlap_saved * 1e3:.3f} ms)"
                 if t.overlap_saved > 0 else "")
        retried = f"  [{t.retries} retries]" if t.retries else ""
        tiled = f"  [{t.tiles} tiles]" if t.tiles else ""
        lines.append(f"wave {t.index} |{t.seconds * 1e3:>9.3f} ms  "
                     f"{_bar(t.seconds, longest):<{_BAR_WIDTH}s} "
                     f"{members}{saved}{retried}{tiled}")
    return "\n".join(lines)


def render_stream(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` streaming block.

    Example::

        Streamed replay(96 tiles over 12 replays)
        peak scratch 16777216 B
        replay time  4.200 ms
    """
    if not stats.tiles_replayed:
        return "Streamed replay(no streamed replays)"
    lines = [f"Streamed replay({stats.tiles_replayed} tiles over "
             f"{stats.program_replays} replays)",
             f"peak scratch {stats.peak_scratch_bytes} B",
             f"replay time  {stats.replay_seconds * 1e3:.3f} ms"]
    return "\n".join(lines)


def render_reliability(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` reliability block.

    Example::

        Reliability(12 faults over 40 calls)
        retries      9   (0.900 ms backing off)
        degradations 1
        bit_flip     |  7  #######
        timeout      |  4  ####
        rank_failure |  1  #
    """
    total = stats.total_faults
    if not (total or stats.retries or stats.degradations):
        return "Reliability(no faults observed)"
    lines = [f"Reliability({total} faults over {stats.calls} calls)",
             f"retries      {stats.retries}   "
             f"({stats.backoff_seconds * 1e3:.3f} ms backing off)",
             f"degradations {stats.degradations}"]
    if stats.faults_seen:
        longest = max(stats.faults_seen.values())
        width = max(len(k) for k in stats.faults_seen)
        for kind in sorted(stats.faults_seen):
            count = stats.faults_seen[kind]
            lines.append(f"{kind:<{width}s} |{count:>3d}  "
                         f"{_bar(count, longest, width=20)}")
    return "\n".join(lines)


def render_parallel(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` parallel block.

    Example::

        Parallel replay(4 workers)
        waves     3 parallel (12 requests), 1 serial fallback
        wall/task 1.200 / 4.100 ms (3.42x)
        worker-0 | 37 bands  ##########
        worker-1 | 35 bands  #########
    """
    if stats.parallel_workers <= 1 and not stats.parallel_waves:
        return "Parallel replay(serial session)"
    lines = [f"Parallel replay({stats.parallel_workers} workers)",
             f"waves     {stats.parallel_waves} parallel "
             f"({stats.parallel_requests} requests), "
             f"{stats.parallel_fallbacks} serial fallback"
             f"{'' if stats.parallel_fallbacks == 1 else 's'}",
             f"wall/task {stats.parallel_wall_seconds * 1e3:.3f} / "
             f"{stats.parallel_task_seconds * 1e3:.3f} ms "
             f"({stats.parallel_speedup:.2f}x)"]
    if stats.worker_bands:
        longest = max(stats.worker_bands.values())
        width = max(len(label) for label in stats.worker_bands)
        for label in sorted(stats.worker_bands):
            count = stats.worker_bands[label]
            lines.append(f"{label:<{width}s} |{count:>4d} bands  "
                         f"{_bar(count, longest, width=20)}")
    return "\n".join(lines)


def render_serving(stats) -> str:
    """Render a :class:`~repro.serving.server.ServerStats` block.

    Example::

        Serving(24 requests over 5 batches, clock 12.400 ms)
        goodput 1234567 B/s
        tenant-a | 12 done   0 shed  p50  3.100 ms  p99  8.800 ms  ######
        tenant-b | 12 done   2 shed  p50  4.000 ms  p99  9.100 ms  ######

    When the owned session elides transfers, each tenant line also
    reports its elided chunk count and bytes (satisfying per-tenant
    attribution: a sparse tenant's savings never blur into a dense
    neighbour's).
    """
    if not stats.dispatched:
        return "Serving(no requests dispatched)"
    lines = [f"Serving({stats.dispatched} requests over {stats.batches} "
             f"batches, clock {stats.clock * 1e3:.3f} ms)",
             f"goodput {stats.goodput_bytes_per_second:.0f} B/s"]
    tenants = {tid: t for tid, t in stats.tenants.items()
               if t.submitted or t.completed}
    if tenants:
        longest = max(t.bytes_completed for t in tenants.values())
        width = max(len(tid) for tid in tenants)
        show_elision = any(t.chunks_scanned for t in tenants.values())
        for tid in sorted(tenants):
            t = tenants[tid]
            elided = (f"  elided {t.chunks_elided:>5d} chunks "
                      f"({t.elided_bytes} B)" if show_elision else "")
            lines.append(
                f"{tid:<{width}s} |{t.completed:>4d} done {t.shed:>3d} shed"
                f"  p50 {t.p50 * 1e3:>8.3f} ms  p99 {t.p99 * 1e3:>8.3f} ms"
                f"{elided}  {_bar(t.bytes_completed, longest, width=20)}")
    return "\n".join(lines)


def render_autotune(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` autotuner block.

    Example::

        Autotune(3 searches, 117 decision hits)
        decision hit rate 97.5%
        probes       18  (24 observations)
        re-tunes     1
    """
    searches = stats.tuner_searches
    hits = stats.tuner_cache_hits
    if not (searches or hits):
        return "Autotune(tuner idle)"
    lookups = searches + hits
    lines = [f"Autotune({searches} search"
             f"{'' if searches == 1 else 'es'}, {hits} decision hits)",
             f"decision hit rate {hits / lookups:.1%}",
             f"probes       {stats.tuner_probes}  "
             f"({stats.tuner_observations} observations)",
             f"re-tunes     {stats.tuner_retunes}"]
    return "\n".join(lines)


def render_elision(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` elision block.

    Example::

        Elision(5 scans, 4096 chunks fingerprinted)
        chunks elided 3072  (75.0%)
        bytes elided  786432
    """
    if not stats.elision_scans:
        return "Elision(no scans -- dense fast path)"
    lines = [f"Elision({stats.elision_scans} scan"
             f"{'' if stats.elision_scans == 1 else 's'}, "
             f"{stats.chunks_scanned} chunks fingerprinted)",
             f"chunks elided {stats.chunks_elided}  "
             f"({stats.elision_rate:.1%})",
             f"bytes elided  {stats.elided_bytes}"]
    return "\n".join(lines)


def render_multihost(stats) -> str:
    """Render an :class:`~repro.engine.stats.EngineStats` multihost block.

    Example::

        Multihost(4 global phases, fabric 12.400 ms)
        fabric bytes  786432  (65536 elided)
        alltoall/exchange     x2  ####################
        allreduce/ring        x2  ####################
    """
    if not stats.global_phases:
        return "Multihost(no global phases -- single-host session)"
    elided = (f"  ({stats.elided_fabric_bytes} elided)"
              if stats.elided_fabric_bytes else "")
    lines = [f"Multihost({stats.global_phases} global phase"
             f"{'' if stats.global_phases == 1 else 's'}, "
             f"fabric {stats.fabric_seconds * 1e3:.3f} ms)",
             f"fabric bytes  {stats.fabric_bytes}{elided}"]
    if stats.global_algorithms:
        longest = max(stats.global_algorithms.values())
        width = max(len(key) for key in stats.global_algorithms)
        for key in sorted(stats.global_algorithms):
            count = stats.global_algorithms[key]
            lines.append(f"{key:<{width}s} x{count:<4d} "
                         f"{_bar(count, longest, width=20)}")
    return "\n".join(lines)


def dominant_category(plan: CommPlan, system: DimmSystem) -> str:
    """The category the plan spends most of its modelled time in."""
    breakdown = plan.estimate(system).breakdown()
    if not breakdown:
        return "none"
    return max(breakdown, key=breakdown.get)
