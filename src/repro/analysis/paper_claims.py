"""The paper's quantitative claims, as machine-checkable records.

Each :class:`Claim` names a number the paper reports, how to measure it
on the reproduction, and the tolerance within which we consider the
shape reproduced.  ``evaluate_claims()`` regenerates the whole verdict
table (the basis of EXPERIMENTS.md); the test suite asserts the claims
marked ``strict`` hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import experiments as E
from .report import geomean


@dataclass(frozen=True)
class Claim:
    """One quantitative statement from the paper's evaluation."""

    id: str
    figure: str
    description: str
    paper_value: float
    #: Extracts the measured value from the shared experiment cache.
    measure: Callable[[dict], float]
    #: Relative tolerance for the "within" verdict.
    rel_tol: float = 0.30
    #: Strict claims gate the test suite; loose ones are documented only.
    strict: bool = True


def _rows(cache: dict, name: str):
    if name not in cache:
        cache[name] = getattr(E, name)()
    return cache[name]


def _fig14(cache, primitive, field="speedup"):
    return next(r[field] for r in _rows(cache, "fig14_primitives")
                if r["primitive"] == primitive)


def _fig16_step(cache, step, field="geomean_all"):
    rows = E.fig16_step_geomeans(_rows(cache, "fig16_ablation"))
    return next(r[field] for r in rows if r["step"] == step)


def _fig21(cache, app, pes, field="pidcomm_x"):
    return next(r[field] for r in _rows(cache, "fig21_cpu_comparison")
                if r["app"] == app and r["pes"] == pes)


def _fig23a(cache, topology):
    return next(r["slowdown"] for r in _rows(cache, "fig23a_topologies")
                if r["topology"] == topology)


CLAIMS: tuple[Claim, ...] = (
    Claim("aa-speedup", "Fig 14", "AlltoAll speedup at (32,32), 8 MB/PE",
          5.19, lambda c: _fig14(c, "alltoall")),
    Claim("rs-speedup", "Fig 14", "ReduceScatter speedup",
          4.46, lambda c: _fig14(c, "reduce_scatter")),
    Claim("ar-speedup", "Fig 14", "AllReduce speedup",
          4.23, lambda c: _fig14(c, "allreduce")),
    Claim("br-speedup", "Fig 14", "Broadcast speedup (native is optimal)",
          1.00, lambda c: _fig14(c, "broadcast"), rel_tol=0.05),
    Claim("prim-geomean", "Fig 14", "geomean speedup over 8 primitives",
          2.83, lambda c: _fig14(c, "geomean")),
    Claim("aa-throughput", "Fig 20", "AlltoAll throughput (GB/s)",
          20.6, lambda c: _fig14(c, "alltoall", "pidcomm_gbps")),
    Claim("ag-throughput", "Fig 20", "AllGather peak throughput (GB/s)",
          36.1, lambda c: max(r["allgather"]
                              for r in _rows(c, "fig20_shapes"))),
    Claim("ar-throughput", "Fig 20", "AllReduce peak throughput (GB/s)",
          12.2, lambda c: max(r["allreduce"]
                              for r in _rows(c, "fig20_shapes"))),
    Claim("pr-step", "Fig 16", "PE-assisted reordering geomean step",
          1.48, lambda c: _fig16_step(c, "Baseline -> +PR")),
    Claim("im-step", "Fig 16", "in-register modulation geomean step",
          2.03, lambda c: _fig16_step(c, "+PR -> +IM"),
          rel_tol=0.45, strict=False),
    Claim("cm-step", "Fig 16", "cross-domain modulation step (AA/AG)",
          1.42, lambda c: _fig16_step(c, "+IM -> +CM",
                                      "geomean_where_applicable")),
    Claim("size-geomean", "Fig 18", "geomean speedup at 8 MB payloads",
          2.89, lambda c: geomean(
              [r["speedup"] for r in _rows(c, "fig18_datasize")
               if r["size_kb"] == 8192])),
    Claim("app-geomean", "Fig 15", "application speedup geomean",
          1.99, lambda c: next(
              r["speedup"] for r in _rows(c, "fig15_app_speedup")
              if r["app"] == "geomean"), rel_tol=0.50, strict=False),
    Claim("mlp-peak", "Fig 21", "MLP peak speedup over CPU (1024 PEs)",
          7.89, lambda c: _fig21(c, "MLP", 1024), rel_tol=0.15),
    Claim("cc-sweet", "Fig 21", "CC speedup at its 64-PE sweet spot",
          2.58, lambda c: _fig21(c, "CC", 64), rel_tol=0.15),
    Claim("cpu-base-geomean", "Fig 21", "PIM-baseline geomean over CPU",
          2.27, lambda c: geomean(
              [r["pim_baseline_x"]
               for r in _rows(c, "fig21_cpu_comparison")]),
          rel_tol=0.50, strict=False),
    Claim("cpu-pid-geomean", "Fig 21", "PID-Comm geomean over CPU",
          4.07, lambda c: geomean(
              [r["pidcomm_x"] for r in _rows(c, "fig21_cpu_comparison")]),
          rel_tol=0.50, strict=False),
    Claim("gnn-8bit", "Fig 22", "GNN 8-bit geomean speedup",
          1.64, lambda c: geomean(
              [r["speedup"] for r in _rows(c, "fig22_wordbits")
               if r["width"] == "int8"])),
    Claim("ring-slowdown", "Fig 23a", "ring topology slowdown",
          2.05, lambda c: _fig23a(c, "ring")),
    Claim("tree-slowdown", "Fig 23a", "tree topology slowdown (<=)",
          7.89, lambda c: _fig23a(c, "tree"), rel_tol=0.70, strict=False),
)


def evaluate_claims(claims: tuple[Claim, ...] = CLAIMS) -> list[dict]:
    """Measure every claim; returns verdict rows."""
    cache: dict = {}
    rows = []
    for claim in claims:
        measured = float(claim.measure(cache))
        deviation = abs(measured - claim.paper_value) / claim.paper_value
        rows.append({
            "id": claim.id,
            "figure": claim.figure,
            "description": claim.description,
            "paper": claim.paper_value,
            "measured": round(measured, 3),
            "deviation": round(deviation, 3),
            "within_tol": deviation <= claim.rel_tol,
            "strict": claim.strict,
        })
    return rows
