"""Plain-text rendering helpers for experiment outputs."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate of choice)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean needs positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned text table (the benches' stdout format)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_dict_rows(rows: Sequence[dict], title: str | None = None) -> str:
    """Render a list of homogeneous dicts as a table."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    return render_table(headers, [[r[h] for h in headers] for r in rows],
                        title=title)
