"""Auto-tuning: hypercube shapes and execution schedules.

The paper shows that primitive throughput depends on the cube shape
(Figure 20) and that "the configuration on PIM-based systems has to be
carefully chosen" (section VIII-G).  Because plans are cheap to price,
the best shape for a given communication mix can simply be searched:

    mix = [("reduce_scatter", "100", 8 << 20), ("allgather", "100", ...)]
    best = autotune_shape(system, num_pes=1024, ndim=3, mix=mix)

The same argument extends to the engine's *execution schedule* -- the
five knobs PRs 3-7 grew (backend, execution mode, streaming tile,
band parallelism, optimization rung), now one frozen
:class:`~repro.core.collectives.schedule.Schedule` value.
:class:`Tuner` searches that space per ``(primitive, shape, dtype,
traffic pattern)`` using the pre-priced
:class:`~repro.hw.timing.CostLedger` (``pipelined(depth)`` prices
streamed candidates), commits the cheapest schedule into the engine's
:class:`~repro.engine.cache.PlanCache` beside the compiled program --
steady-state lookups pay zero search cost -- and, in ``"online"``
mode, refines the model's shortlist with measured replay seconds and
re-tunes when observed cost diverges from modelled cost.  Every
candidate schedule replays bit-identical to the scalar interpreted
oracle, so tuning can never change results -- only wall-clock.

Enable it per session with ``SessionConfig(autotune="offline")`` (pure
model) or ``"online"`` (model prunes, measurements decide); see
``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from statistics import fmean
from typing import Any, Callable, Iterator, Sequence

from ..core.collectives import (
    ABLATION_LADDER,
    GLOBAL_ALGORITHMS,
    CommPlan,
    OptConfig,
    Schedule,
)
from ..core.hypercube import HypercubeManager
from ..errors import HypercubeError, PidCommError
from ..hw.system import DimmSystem
from ..hw.timing import ELIDABLE_CATEGORIES
from .experiments import _pid_plan

#: Modes ``SessionConfig(autotune=...)`` accepts (None disables tuning).
AUTOTUNE_MODES = ("offline", "online")

#: Smallest streaming tile the schedule search will propose.  The cost
#: model's pipeline credit grows monotonically with depth, so without a
#: floor the search would always pick pathological one-row bands whose
#: per-band dispatch overhead wrecks wall-clock.
MIN_TILE_BYTES = 4096

#: Fractions of the gathered payload the search offers as tile
#: candidates (pipeline depths ~4/8/16 -- deep enough to hide a stage,
#: shallow enough to keep per-band dispatch negligible).
TILE_FRACTIONS = (4, 8, 16)


@dataclass(frozen=True)
class ShapeScore:
    """Estimated cost of one candidate shape."""

    shape: tuple[int, ...]
    seconds: float


@lru_cache(maxsize=None)
def _factorizations(num_pes: int, ndim: int) -> tuple[tuple[int, ...], ...]:
    """Memoized enumeration backing :func:`candidate_shapes`.

    The recursion re-enumerates identical ``(num_pes, ndim)`` subtrees
    many times (every prefix length shares the same suffix problem), so
    both the recursive calls and repeated top-level tuning runs hit the
    cache.
    """
    if ndim == 1:
        return ((num_pes,),)
    shapes = []
    length = 1
    while length <= num_pes:
        if num_pes % length == 0:
            shapes.extend((length,) + rest
                          for rest in _factorizations(num_pes // length,
                                                      ndim - 1))
        length *= 2
    return tuple(shapes)


def candidate_shapes(num_pes: int, ndim: int) -> Iterator[tuple[int, ...]]:
    """All ordered factorizations of ``num_pes`` into ``ndim`` dims.

    All dimensions except the last must be powers of two (the
    hypercube's rule); the last may be any factor, which covers
    non-power-of-two channel counts.  Enumeration is memoized, so
    repeated tuning runs over the same PE count re-derive nothing.
    """
    if ndim < 1:
        raise PidCommError("ndim must be >= 1")
    yield from _factorizations(num_pes, ndim)


def autotune_shape(system: DimmSystem, num_pes: int, ndim: int,
                   mix: Sequence[tuple[str, str, int]],
                   min_dim: int = 1) -> list[ShapeScore]:
    """Rank all candidate shapes by the modelled cost of a workload mix.

    Args:
        system: The target system (cost parameters + geometry).
        num_pes: PEs the hypercube must cover.
        ndim: Number of hypercube dimensions.
        mix: Sequence of ``(primitive, dims_bitmap, payload_bytes)``
            invocations making up one round of the workload.
        min_dim: Discard shapes with any dimension shorter than this.

    Returns:
        Scores sorted cheapest-first (the head is the recommendation).

    A mix repeating the same ``(primitive, pattern, payload)`` entry
    (one AllReduce per layer, say) prices that plan once per shape and
    reuses the estimate for every repetition, instead of re-planning
    per entry.
    """
    if not mix:
        raise PidCommError("autotune needs a non-empty communication mix")
    scores = []
    for shape in candidate_shapes(num_pes, ndim):
        if min(shape) < min_dim:
            continue
        try:
            manager = HypercubeManager(system, shape=shape)
            priced: dict[tuple[str, str, int], float] = {}
            total = 0.0
            for primitive, dims, payload in mix:
                entry = (primitive, dims, payload)
                if entry not in priced:
                    plan = _pid_plan(primitive, manager, dims, payload)
                    priced[entry] = plan.estimate(system).total
                total += priced[entry]
        except (HypercubeError, PidCommError):
            continue  # shape incompatible with the mix (e.g. indivisible)
        scores.append(ShapeScore(shape=shape, seconds=total))
    if not scores:
        raise PidCommError(
            "no candidate shape was compatible with the workload mix")
    return sorted(scores, key=lambda s: s.seconds)


# ----------------------------------------------------------------------
# Schedule-space search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleSpace:
    """The candidate lattice one session's tuner may search.

    A session pinning a knob (``SessionConfig(backend=...)``,
    ``execution=...``, ``stream_tile_bytes=...``) collapses the
    corresponding axis, so the tuner can never override an explicit
    user choice -- it only decides what was left open.
    """

    backends: tuple[str, ...] = ("vectorized", "scalar")
    executions: tuple[str, ...] = ("compiled", "interpreted")
    rungs: tuple[OptConfig, ...] = tuple(ABLATION_LADDER)
    #: Pinned streaming tile (None = derive candidates per shape).
    tile_bytes: int | None = None
    #: Whether streamed candidates are searched at all.
    streaming: bool = True
    #: Whether chosen schedules fan streamed bands across the pool.
    band_parallel: bool = False
    #: Elision axis: ``(False,)`` never scans; ``(False, True)`` lets
    #: the model decide per shape whether fingerprint scanning pays.
    eliding: tuple[bool, ...] = (False,)
    #: Global-phase algorithm axis, searched only by hierarchical
    #: (multi-host) runs: the per-host tuner never sets
    #: ``Schedule.global_algorithm``, the
    #: :class:`~repro.multihost.GlobalTuner` prices these candidates on
    #: the fabric and picks per (primitive, payload, topology).  Pin a
    #: single entry to force one algorithm.
    global_algorithms: tuple[str, ...] = GLOBAL_ALGORITHMS

    @classmethod
    def from_session(cls, config, *,
                     global_algorithm: str | None = None) -> "ScheduleSpace":
        """The space a :class:`~repro.engine.SessionConfig` leaves open.

        ``global_algorithm`` (a hierarchical caller's pin) collapses
        the global-phase axis to that single algorithm.
        """
        backends = (("vectorized", "scalar") if config.backend is None
                    else (config.backend,))
        executions = {"auto": ("compiled", "interpreted"),
                      "compiled": ("compiled",),
                      "interpreted": ("interpreted",)}[config.execution]
        return cls(backends=backends, executions=executions,
                   tile_bytes=config.stream_tile_bytes,
                   streaming="compiled" in executions,
                   band_parallel=config.parallel_workers > 1,
                   eliding=((False, True) if config.elide_transfers
                            and "compiled" in executions else (False,)),
                   global_algorithms=(GLOBAL_ALGORITHMS
                                      if global_algorithm is None
                                      else (global_algorithm,)))

    @property
    def preferred_backend(self) -> str:
        """The backend every candidate uses.

        Modelled cost is backend-invariant by design (the vectorized
        backend charges exactly the scalar oracle's ledger), so the
        model cannot rank backends; the strictly-less-host-work order
        (vectorized over scalar, measured at 10-100x in
        ``BENCH_backend.json``) decides statically instead.
        """
        for backend in ("vectorized", "scalar"):
            if backend in self.backends:
                return backend
        return self.backends[0]

    @property
    def preferred_execution(self) -> str:
        """Compiled replay when allowed (same static-dominance argument:
        identical ledger, strictly less dispatch work)."""
        return ("compiled" if "compiled" in self.executions
                else self.executions[0])


@dataclass(frozen=True)
class ScheduleScore:
    """One priced candidate schedule."""

    schedule: Schedule
    #: Modelled seconds (``pipelined`` for streamed candidates).
    seconds: float
    #: Rung position in the space (stable tie-break).
    order: int = 0


def tile_candidates(plan: CommPlan, space: ScheduleSpace
                    ) -> tuple[int | None, ...]:
    """Streaming tile sizes worth pricing for ``plan``.

    Derived from the plan's gathered footprint (member rows x per-row
    bytes): fractions giving pipeline depths of roughly
    :data:`TILE_FRACTIONS`, floored at :data:`MIN_TILE_BYTES`.  ``None``
    (untiled) is always a candidate; a session-pinned tile collapses
    the axis to exactly that tile.
    """
    if space.tile_bytes is not None:
        return (space.tile_bytes,)
    if not space.streaming:
        return (None,)
    meta = plan.meta
    rows = max(1, meta.get("group_size", 1) * meta.get("instances", 1))
    row_bytes = max(meta.get("out_bytes_per_pe", 0),
                    meta.get("per_pe_bytes", 0), 1)
    total = rows * row_bytes
    tiles: list[int | None] = [None]
    for fraction in TILE_FRACTIONS:
        tile = total // fraction
        if tile >= MIN_TILE_BYTES and tile not in tiles:
            tiles.append(tile)
    return tuple(tiles)


class _ProbeState:
    """Online probing of one key's shortlist, one candidate at a time."""

    def __init__(self, family: list[ScheduleScore], iters: int) -> None:
        self.family = family
        self.iters = iters
        self.samples: list[list[float]] = [[] for _ in family]
        self.handed = 0
        self.observed = 0

    def current(self) -> ScheduleScore:
        for candidate, taken in zip(self.family, self.samples):
            if len(taken) < self.iters:
                return candidate
        return self.family[0]

    def record(self, schedule: Schedule, seconds: float) -> bool:
        """Attribute one measurement; True once every candidate is full."""
        for candidate, taken in zip(self.family, self.samples):
            if candidate.schedule.signature == schedule.signature:
                taken.append(seconds)
                self.observed += 1
                break
        return all(len(taken) >= self.iters for taken in self.samples)

    def stalled(self) -> bool:
        """Hand-outs far outnumber measurements: the traffic is analytic
        (or interpreted) and will never report replay seconds."""
        return (self.handed - self.observed
                > 2 * self.iters * len(self.family) + 4)

    def best(self) -> ScheduleScore:
        """Measured-fastest candidate (modelled order breaks ties and
        covers never-measured candidates)."""
        def rank(pair):
            index, candidate = pair
            taken = self.samples[index]
            measured = fmean(taken) if taken else float("inf")
            return (measured, candidate.seconds, index)
        return min(enumerate(self.family), key=rank)[1]

    def baseline_ratio(self, chosen: ScheduleScore) -> float | None:
        """Observed/modelled seconds ratio of the committed candidate."""
        for candidate, taken in zip(self.family, self.samples):
            if candidate.schedule.signature == chosen.schedule.signature \
                    and taken and candidate.seconds > 0:
                return fmean(taken) / candidate.seconds
        return None


class _Monitor:
    """Divergence watch on one committed decision (EWMA of the
    observed-over-modelled seconds ratio vs. its commit-time baseline)."""

    def __init__(self, schedule: Schedule, baseline: float | None,
                 alpha: float, factor: float, min_samples: int) -> None:
        self.schedule = schedule
        self.baseline = baseline
        self.alpha = alpha
        self.factor = factor
        self.min_samples = min_samples
        self.ewma = baseline
        self.updates = 0
        self._warmup: list[float] = []

    def update(self, ratio: float) -> bool:
        """Fold in one observation; True when the decision should die."""
        if self.baseline is None:
            # Offline-committed decisions have no probe measurements;
            # the first few observations define what "as modelled"
            # means for this host before divergence can be judged.
            self._warmup.append(ratio)
            if len(self._warmup) >= self.min_samples:
                self.baseline = fmean(self._warmup)
                self.ewma = self.baseline
            return False
        self.updates += 1
        self.ewma = self.alpha * ratio + (1.0 - self.alpha) * self.ewma
        return (self.updates >= self.min_samples
                and self.ewma > self.factor * self.baseline)


class Tuner:
    """Cost-model-guided schedule search with optional online re-tuning.

    ``mode="offline"`` trusts the machine model: per key, enumerate the
    space, price every candidate (streamed ones through
    :meth:`CostLedger.pipelined`), commit the cheapest into the plan
    cache's decision store.  ``mode="online"`` uses the model to prune
    to a shortlist (the cheapest rung/backend/execution's tile family
    plus every other rung's champion), measures each shortlisted
    candidate's replay seconds under live traffic, commits the
    measured-fastest, then keeps watching: when
    the observed/modelled ratio drifts past ``retune_factor`` times its
    commit-time baseline, the decision is invalidated and the next call
    re-searches (counted in ``EngineStats.tuner_retunes``).

    The tuner decides *how* a collective runs, never what it computes:
    every candidate is a valid :class:`Schedule` (construction rejects
    e.g. streamed+interpreted) and replays bit-identical to the scalar
    interpreted oracle.
    """

    def __init__(self, manager: HypercubeManager,
                 space: ScheduleSpace | None = None,
                 mode: str = "offline", *, probe_iters: int = 2,
                 shortlist: int = 8, retune_factor: float = 2.0,
                 min_samples: int = 3, alpha: float = 0.4) -> None:
        if mode not in AUTOTUNE_MODES:
            raise PidCommError(
                f"unknown autotune mode {mode!r}; known: {AUTOTUNE_MODES}")
        self.manager = manager
        self.space = space if space is not None else ScheduleSpace()
        self.mode = mode
        self.probe_iters = probe_iters
        self.shortlist = shortlist
        self.retune_factor = retune_factor
        self.min_samples = min_samples
        self.alpha = alpha
        self._probes: dict[Any, _ProbeState] = {}
        self._monitors: dict[Any, _Monitor] = {}

    @property
    def preferred_backend(self) -> str:
        return self.space.preferred_backend

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def enumerate_schedules(self, plan_for: Callable[[OptConfig], CommPlan],
                            program_for: Callable[[OptConfig], Any]
                            ) -> list[ScheduleScore]:
        """Price every candidate in the space, cheapest first.

        ``plan_for``/``program_for`` resolve one rung's (cached) plan
        and compiled program -- the engine supplies its own plan-cache
        lookups, so search-time compilations are exactly the ones
        steady-state execution reuses.
        """
        space = self.space
        system = self.manager.system
        backend = space.preferred_backend
        execution = space.preferred_execution
        band = space.band_parallel
        scores: list[ScheduleScore] = []
        for order, rung in enumerate(space.rungs):
            plan = plan_for(rung)
            if execution == "interpreted":
                scores.append(ScheduleScore(
                    Schedule(backend=backend, execution="interpreted",
                             band_parallel=band, rung=rung),
                    plan.estimate(system).total, order))
                continue
            program = program_for(rung)
            base = program.priced(system)
            # Elision candidates exist only when the model says the
            # scan can possibly pay: the fingerprint scan over every
            # scannable source byte must cost less than eliding the
            # elidable ops' *entire* transfer share would save.  When
            # it cannot, no elide schedule is offered at all, so dense
            # shapes do zero scan work (the dense fast path).
            scan_s = savable_s = 0.0
            if True in space.eliding:
                scan_s = system.params.scan_time(program.scannable_bytes)
                total_transfer = program.transfer_bytes
                if total_transfer > 0:
                    share = program.elidable_transfer_bytes / total_transfer
                    savable_s = share * sum(base.get(c)
                                            for c in ELIDABLE_CATEGORIES)
            offer_elide = 0.0 < scan_s < savable_s
            for tile in tile_candidates(plan, space):
                if tile is None:
                    seconds = base.total
                else:
                    seconds = base.pipelined(
                        program.pipeline_depth(tile)).total
                scores.append(ScheduleScore(
                    Schedule(backend=backend, execution="compiled",
                             tile_bytes=tile, band_parallel=band,
                             rung=rung),
                    seconds, order))
                if offer_elide:
                    # The model cannot see payload content, so elide
                    # candidates are priced at a 50% reference elision
                    # rate: scan always paid, half the best-case
                    # transfer saving credited (docs/performance.md).
                    scores.append(ScheduleScore(
                        Schedule(backend=backend, execution="compiled",
                                 tile_bytes=tile, band_parallel=band,
                                 elide=True, rung=rung),
                        max(seconds + scan_s - 0.5 * savable_s, scan_s),
                        order))
        # Deterministic order: modelled seconds, then rung position,
        # then the *larger* tile (less per-band dispatch at equal
        # modelled cost; untiled counts as largest).
        big = 1 << 62
        scores.sort(key=lambda s: (
            s.seconds, s.order,
            -(s.schedule.tile_bytes if s.schedule.tile_bytes is not None
              else big)))
        return scores

    def _family(self, scores: list[ScheduleScore]) -> list[ScheduleScore]:
        """The probe shortlist: the winner's tile family plus every
        other rung's champion.

        The model prices every tile of one program within
        pipeline-credit noise of each other, so the tile axis is always
        decided by measurement.  Rungs get different *plans*, and the
        model's rung ranking can invert on wall-clock (a 1-D cube
        prices the Baseline ladder cheapest while its replay does more
        host work than FULL), so each rung's cheapest candidate joins
        the shortlist too -- measurement, not the model, settles the
        rung whenever the traffic reports replay seconds.
        """
        best = scores[0].schedule
        best_key = (best.rung, best.backend, best.execution)
        family = [s for s in scores
                  if (s.schedule.rung, s.schedule.backend,
                      s.schedule.execution) == best_key]
        seen = {best_key}
        for score in scores:  # modelled order: each rung's first = best
            key = (score.schedule.rung, score.schedule.backend,
                   score.schedule.execution)
            if key not in seen:
                family.append(score)
                seen.add(key)
        return family[:self.shortlist]

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def schedule_for(self, req, cache, stats,
                     plan_for: Callable[[OptConfig], CommPlan],
                     program_for: Callable[[OptConfig], Any]) -> Schedule:
        """The schedule ``req`` should run under (cached, probed, or
        freshly searched)."""
        key = req.schedule_key
        state_key = (req.tenant, key)
        cached = cache.fetch_schedule(key)
        if cached is not None:
            stats.tuner_cache_hits += 1
            return cached
        probe = self._probes.get(state_key)
        if probe is None:
            scores = self.enumerate_schedules(plan_for, program_for)
            stats.tuner_searches += 1
            family = self._family(scores)
            if self.mode == "online" and len(family) > 1 \
                    and family[0].schedule.execution == "compiled":
                probe = _ProbeState(family, self.probe_iters)
                self._probes[state_key] = probe
            else:
                self._commit(cache, state_key, key, family[0], None)
                return family[0].schedule
        if probe.stalled():
            chosen = probe.best()
            del self._probes[state_key]
            self._commit(cache, state_key, key, chosen,
                         probe.baseline_ratio(chosen))
            return chosen.schedule
        probe.handed += 1
        stats.tuner_probes += 1
        return probe.current().schedule

    def observe(self, req, schedule: Schedule, modelled_s: float,
                observed_s: float | None, cache, stats) -> bool:
        """Fold one execution's replay seconds into the tuner's state.

        Returns True when the observation triggered a re-tune (the
        cached decision was invalidated; the next call re-searches and,
        online, re-probes under current conditions).
        """
        if self.mode != "online":
            return False
        key = req.schedule_key
        state_key = (req.tenant, key)
        if observed_s is not None:
            stats.tuner_observations += 1
        probe = self._probes.get(state_key)
        if probe is not None:
            if observed_s is None:
                return False
            if probe.record(schedule, observed_s):
                chosen = probe.best()
                del self._probes[state_key]
                self._commit(cache, state_key, key, chosen,
                             probe.baseline_ratio(chosen))
            return False
        monitor = self._monitors.get(state_key)
        if monitor is None or observed_s is None \
                or monitor.schedule.signature != schedule.signature:
            return False
        ratio = observed_s / max(modelled_s, 1e-30)
        if monitor.update(ratio):
            stats.tuner_retunes += 1
            cache.invalidate_schedule(key)
            del self._monitors[state_key]
            return True
        return False

    def _commit(self, cache, state_key, key, chosen: ScheduleScore,
                baseline: float | None) -> None:
        cache.store_schedule(key, chosen.schedule)
        self._monitors[state_key] = _Monitor(
            chosen.schedule, baseline, self.alpha, self.retune_factor,
            self.min_samples)
