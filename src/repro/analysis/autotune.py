"""Hypercube shape auto-tuning.

The paper shows that primitive throughput depends on the cube shape
(Figure 20) and that "the configuration on PIM-based systems has to be
carefully chosen" (section VIII-G).  Because plans are cheap to price,
the best shape for a given communication mix can simply be searched:

    mix = [("reduce_scatter", "100", 8 << 20), ("allgather", "100", ...)]
    best = autotune_shape(system, num_pes=1024, ndim=3, mix=mix)

Every factorization of ``num_pes`` into ``ndim`` power-of-two-but-last
dimensions is estimated and the cheapest returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.hypercube import HypercubeManager
from ..errors import HypercubeError, PidCommError
from ..hw.system import DimmSystem
from .experiments import _pid_plan


@dataclass(frozen=True)
class ShapeScore:
    """Estimated cost of one candidate shape."""

    shape: tuple[int, ...]
    seconds: float


def candidate_shapes(num_pes: int, ndim: int) -> Iterator[tuple[int, ...]]:
    """All ordered factorizations of ``num_pes`` into ``ndim`` dims.

    All dimensions except the last must be powers of two (the
    hypercube's rule); the last may be any factor, which covers
    non-power-of-two channel counts.
    """
    if ndim < 1:
        raise PidCommError("ndim must be >= 1")
    if ndim == 1:
        yield (num_pes,)
        return
    length = 1
    while length <= num_pes:
        if num_pes % length == 0:
            for rest in candidate_shapes(num_pes // length, ndim - 1):
                yield (length,) + rest
        length *= 2


def autotune_shape(system: DimmSystem, num_pes: int, ndim: int,
                   mix: Sequence[tuple[str, str, int]],
                   min_dim: int = 1) -> list[ShapeScore]:
    """Rank all candidate shapes by the modelled cost of a workload mix.

    Args:
        system: The target system (cost parameters + geometry).
        num_pes: PEs the hypercube must cover.
        ndim: Number of hypercube dimensions.
        mix: Sequence of ``(primitive, dims_bitmap, payload_bytes)``
            invocations making up one round of the workload.
        min_dim: Discard shapes with any dimension shorter than this.

    Returns:
        Scores sorted cheapest-first (the head is the recommendation).
    """
    if not mix:
        raise PidCommError("autotune needs a non-empty communication mix")
    scores = []
    for shape in candidate_shapes(num_pes, ndim):
        if min(shape) < min_dim:
            continue
        try:
            manager = HypercubeManager(system, shape=shape)
            total = 0.0
            for primitive, dims, payload in mix:
                plan = _pid_plan(primitive, manager, dims, payload)
                total += plan.estimate(system).total
        except (HypercubeError, PidCommError):
            continue  # shape incompatible with the mix (e.g. indivisible)
        scores.append(ShapeScore(shape=shape, seconds=total))
    if not scores:
        raise PidCommError(
            "no candidate shape was compatible with the workload mix")
    return sorted(scores, key=lambda s: s.seconds)
