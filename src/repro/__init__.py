"""PID-Comm reproduction: collective communication for PIM-enabled DIMMs.

A faithful functional + analytic reimplementation of *PID-Comm: A Fast
and Flexible Collective Communication Framework for Commodity
Processing-in-DIMM Devices* (ISCA 2024) on a simulated UPMEM-like
substrate.

Quickstart (the session API)::

    from repro import Communicator, DimmSystem, HypercubeManager, SessionConfig

    system = DimmSystem.paper_testbed()
    comm = Communicator(HypercubeManager(system, shape=(32, 32)),
                        SessionConfig(functional=False))
    buf = system.alloc(1 << 12)
    out = system.alloc(1 << 12)
    result = comm.allreduce("11", 1 << 12, src_offset=buf, dst_offset=out,
                            data_type="int64")
    print(f"modelled time: {result.seconds * 1e3:.3f} ms")
    print(result.breakdown)          # per-category modelled seconds

Repeated calls with the same shape reuse the compiled plan
(``comm.stats`` reports hits), and ``comm.submit([...])`` schedules a
batch of independent collectives with overlap-aware pricing.  Many
concurrent callers share one machine through the serving front-end
(:mod:`repro.serving`)::

    server = CollectiveServer(manager, SessionConfig(functional=False))
    session = server.session("tenant-a", priority=2, weight=2.0)
    future = session.submit(CommRequest("allreduce", "11", 1 << 12))

The legacy one-call-per-collective surface (paper Figure 10) is kept
for paper fidelity and delegates to the same engine::

    from repro import pidcomm_allreduce
    result = pidcomm_allreduce(manager, "11", 1 << 12, buf, out,
                               data_type="int64", functional=False)
"""

from .core.api import (
    ALL_PRIMITIVES,
    CommResult,
    pidcomm_allgather,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_broadcast,
    pidcomm_gather,
    pidcomm_reduce,
    pidcomm_reduce_scatter,
    pidcomm_scatter,
)
from .core.collectives import (
    ABLATION_LADDER,
    BASELINE,
    FULL,
    PR_IM,
    PR_ONLY,
    OptConfig,
    Schedule,
)
from .core.hypercube import HypercubeManager
from .dtypes import ALL_OPS, ALL_TYPES, dtype_by_name, op_by_name
from .engine import (
    BatchResult,
    CommFuture,
    CommRequest,
    Communicator,
    EngineStats,
    PlanCache,
    SessionConfig,
)
from .errors import PidCommError
from .serving import CollectiveServer, Session, TenantSpec
from .hw import DimmGeometry, DimmSystem, MachineParams
from .reliability import (
    FAIL_FAST,
    FaultInjector,
    FaultSpec,
    RELIABLE,
    ReliabilityPolicy,
    RetryPolicy,
)

__version__ = "1.3.0"

__all__ = [
    "DimmSystem", "DimmGeometry", "MachineParams", "HypercubeManager",
    "OptConfig", "BASELINE", "PR_ONLY", "PR_IM", "FULL", "ABLATION_LADDER",
    "Schedule",
    "Communicator", "CommRequest", "CommResult", "CommFuture",
    "BatchResult", "PlanCache", "EngineStats", "SessionConfig",
    "CollectiveServer", "Session", "TenantSpec",
    "FaultInjector", "FaultSpec", "RetryPolicy", "ReliabilityPolicy",
    "RELIABLE", "FAIL_FAST",
    "ALL_PRIMITIVES", "ALL_TYPES", "ALL_OPS",
    "dtype_by_name", "op_by_name", "PidCommError",
    "pidcomm_alltoall", "pidcomm_allgather", "pidcomm_reduce_scatter",
    "pidcomm_allreduce", "pidcomm_scatter", "pidcomm_gather",
    "pidcomm_reduce", "pidcomm_broadcast",
]
