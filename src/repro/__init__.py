"""PID-Comm reproduction: collective communication for PIM-enabled DIMMs.

A faithful functional + analytic reimplementation of *PID-Comm: A Fast
and Flexible Collective Communication Framework for Commodity
Processing-in-DIMM Devices* (ISCA 2024) on a simulated UPMEM-like
substrate.

Quickstart::

    from repro import DimmSystem, HypercubeManager, pidcomm_allreduce

    system = DimmSystem.paper_testbed()
    manager = HypercubeManager(system, shape=(32, 32))
    buf = system.alloc(1 << 12)
    out = system.alloc(1 << 12)
    result = pidcomm_allreduce(manager, "11", 1 << 12, buf, out,
                               data_type="int64", functional=False)
    print(f"modelled time: {result.seconds * 1e3:.3f} ms")
"""

from .core.api import (
    ALL_PRIMITIVES,
    CommResult,
    pidcomm_allgather,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_broadcast,
    pidcomm_gather,
    pidcomm_reduce,
    pidcomm_reduce_scatter,
    pidcomm_scatter,
)
from .core.collectives import ABLATION_LADDER, BASELINE, FULL, PR_IM, PR_ONLY, OptConfig
from .core.hypercube import HypercubeManager
from .dtypes import ALL_OPS, ALL_TYPES, dtype_by_name, op_by_name
from .errors import PidCommError
from .hw import DimmGeometry, DimmSystem, MachineParams

__version__ = "1.0.0"

__all__ = [
    "DimmSystem", "DimmGeometry", "MachineParams", "HypercubeManager",
    "OptConfig", "BASELINE", "PR_ONLY", "PR_IM", "FULL", "ABLATION_LADDER",
    "CommResult", "ALL_PRIMITIVES", "ALL_TYPES", "ALL_OPS",
    "dtype_by_name", "op_by_name", "PidCommError",
    "pidcomm_alltoall", "pidcomm_allgather", "pidcomm_reduce_scatter",
    "pidcomm_allreduce", "pidcomm_scatter", "pidcomm_gather",
    "pidcomm_reduce", "pidcomm_broadcast",
]
