"""Simulated MPI over a bandwidth-limited interconnect.

The paper's multi-host testbed runs Open MPI with the bandwidth
throttled to 10 Gbps (high-speed ethernet).  We model the standard
ring-based collective costs -- transfer volume proportional to
``(N-1)/N`` as the paper itself notes -- plus per-message latency, and
provide functional (numpy) counterparts for correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dtypes import ReduceOp
from ..errors import CollectiveError
from ..hw.timing import MachineParams


@dataclass
class MpiSimulator:
    """Cost + functional model of MPI collectives among ``num_hosts``."""

    params: MachineParams
    num_hosts: int

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise CollectiveError("MPI needs at least one host")

    # ------------------------------------------------------------------
    # Cost model (seconds)
    # ------------------------------------------------------------------
    def _ring_factor(self) -> float:
        n = self.num_hosts
        return (n - 1) / n

    def allreduce_seconds(self, nbytes_per_host: float) -> float:
        """Ring allreduce: 2 (N-1)/N volume, 2(N-1) messages."""
        if self.num_hosts == 1:
            return 0.0
        return self.params.mpi_time(
            2.0 * self._ring_factor() * nbytes_per_host,
            messages=2 * (self.num_hosts - 1))

    def alltoall_seconds(self, nbytes_per_host: float) -> float:
        """Pairwise alltoall: (N-1)/N of each host's buffer crosses."""
        if self.num_hosts == 1:
            return 0.0
        return self.params.mpi_time(
            self._ring_factor() * nbytes_per_host,
            messages=self.num_hosts - 1)

    def allgather_seconds(self, nbytes_per_host: float) -> float:
        """Ring allgather: each host's share crosses once."""
        if self.num_hosts == 1:
            return 0.0
        return self.params.mpi_time(
            self._ring_factor() * nbytes_per_host * self.num_hosts,
            messages=self.num_hosts - 1)

    def reduce_scatter_seconds(self, nbytes_per_host: float) -> float:
        """Ring reduce-scatter: (N-1)/N of the buffer crosses."""
        if self.num_hosts == 1:
            return 0.0
        return self.params.mpi_time(
            self._ring_factor() * nbytes_per_host,
            messages=self.num_hosts - 1)

    # ------------------------------------------------------------------
    # Functional counterparts
    # ------------------------------------------------------------------
    def allreduce(self, buffers: Sequence[np.ndarray], op: ReduceOp
                  ) -> list[np.ndarray]:
        """Elementwise-reduce per-host buffers; every host gets the result."""
        self._check(buffers)
        reduced = op.reduce_axis(np.stack(buffers), axis=0)
        return [reduced.copy() for _ in buffers]

    def alltoall(self, buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Host h's buffer is num_hosts blocks; block g goes to host g."""
        self._check(buffers)
        n = self.num_hosts
        out = []
        for dest in range(n):
            blocks = []
            for src in range(n):
                buf = buffers[src]
                if buf.shape[0] % n:
                    raise CollectiveError(
                        "alltoall buffers must split evenly across hosts")
                block = buf.reshape(n, -1)[dest]
                blocks.append(block)
            out.append(np.concatenate(blocks))
        return out

    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.num_hosts:
            raise CollectiveError(
                f"expected {self.num_hosts} buffers, got {len(buffers)}")
