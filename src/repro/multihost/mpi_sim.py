"""Simulated MPI over a bandwidth-limited interconnect.

The paper's multi-host testbed runs Open MPI with the bandwidth
throttled to 10 Gbps (high-speed ethernet).  We model the standard
ring-based collective costs -- transfer volume proportional to
``(N-1)/N`` as the paper itself notes -- plus per-message latency, and
provide functional (numpy) counterparts for correctness tests.

Link bandwidth and latency come from
:class:`~repro.hw.timing.MachineParams` (``mpi_gbps`` /
``mpi_latency_s``, defaulting to the paper's throttled 10 Gbps) and can
be overridden per simulator, so a single-link setup and a
single-bandwidth :class:`~repro.multihost.Fabric` price one message
identically (both route through :meth:`MachineParams.link_time`).

The topology-aware hierarchy in ``hierarchical.py`` prices its global
phase on a :class:`~repro.multihost.Fabric` instead; this class
remains the flat-cost reference and the *functional* global exchange
every algorithm shares (which is what makes all global algorithms
bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dtypes import ReduceOp
from ..errors import CollectiveError
from ..hw.timing import MachineParams


@dataclass
class MpiSimulator:
    """Cost + functional model of MPI collectives among ``num_hosts``.

    Args:
        params: Machine parameters supplying the default link rate.
        num_hosts: Participating hosts.
        gbps: Per-link bandwidth override in GB/s (None = the
            testbed's ``params.mpi_gbps``).
        latency_s: Per-message latency override (None =
            ``params.mpi_latency_s``).
    """

    params: MachineParams
    num_hosts: int
    gbps: float | None = None
    latency_s: float | None = None

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise CollectiveError("MPI needs at least one host")
        if self.gbps is not None and self.gbps <= 0:
            raise CollectiveError(
                f"MPI bandwidth must be positive, got {self.gbps}")
        if self.latency_s is not None and self.latency_s < 0:
            raise CollectiveError(
                f"MPI latency must be >= 0, got {self.latency_s}")

    @property
    def link_gbps(self) -> float:
        """Effective link bandwidth (override or machine default)."""
        return self.gbps if self.gbps is not None else self.params.mpi_gbps

    @property
    def link_latency_s(self) -> float:
        """Effective per-message latency (override or machine default)."""
        return (self.latency_s if self.latency_s is not None
                else self.params.mpi_latency_s)

    def _time(self, nbytes: float, messages: int) -> float:
        return self.params.link_time(nbytes, messages=messages,
                                     gbps=self.gbps,
                                     latency_s=self.latency_s)

    # ------------------------------------------------------------------
    # Cost model (seconds)
    # ------------------------------------------------------------------
    def _ring_factor(self) -> float:
        n = self.num_hosts
        return (n - 1) / n

    def allreduce_seconds(self, nbytes_per_host: float) -> float:
        """Ring allreduce: 2 (N-1)/N volume, 2(N-1) messages."""
        if self.num_hosts == 1:
            return 0.0
        return self._time(
            2.0 * self._ring_factor() * nbytes_per_host,
            messages=2 * (self.num_hosts - 1))

    def alltoall_seconds(self, nbytes_per_host: float) -> float:
        """Pairwise alltoall: (N-1)/N of each host's buffer crosses."""
        if self.num_hosts == 1:
            return 0.0
        return self._time(
            self._ring_factor() * nbytes_per_host,
            messages=self.num_hosts - 1)

    def allgather_seconds(self, nbytes_per_host: float) -> float:
        """Ring allgather: each host's share crosses once."""
        if self.num_hosts == 1:
            return 0.0
        return self._time(
            self._ring_factor() * nbytes_per_host * self.num_hosts,
            messages=self.num_hosts - 1)

    def reduce_scatter_seconds(self, nbytes_per_host: float) -> float:
        """Ring reduce-scatter: (N-1)/N of the buffer crosses."""
        if self.num_hosts == 1:
            return 0.0
        return self._time(
            self._ring_factor() * nbytes_per_host,
            messages=self.num_hosts - 1)

    # ------------------------------------------------------------------
    # Functional counterparts
    # ------------------------------------------------------------------
    def allreduce(self, buffers: Sequence[np.ndarray], op: ReduceOp
                  ) -> list[np.ndarray]:
        """Elementwise-reduce per-host buffers; every host gets the result."""
        self._check(buffers)
        reduced = op.reduce_axis(np.stack(buffers), axis=0)
        return [reduced.copy() for _ in buffers]

    def allgather(self, buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Concatenate per-host contributions; every host gets the whole."""
        self._check(buffers)
        full = np.concatenate([np.asarray(buf).reshape(-1)
                               for buf in buffers])
        return [full.copy() for _ in buffers]

    def alltoall(self, buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Host h's buffer is num_hosts blocks; block g goes to host g."""
        self._check(buffers)
        n = self.num_hosts
        out = []
        for dest in range(n):
            blocks = []
            for src in range(n):
                buf = buffers[src]
                if buf.shape[0] % n:
                    raise CollectiveError(
                        "alltoall buffers must split evenly across hosts")
                block = buf.reshape(n, -1)[dest]
                blocks.append(block)
            out.append(np.concatenate(blocks))
        return out

    def _check(self, buffers: Sequence[np.ndarray]) -> None:
        if len(buffers) != self.num_hosts:
            raise CollectiveError(
                f"expected {self.num_hosts} buffers, got {len(buffers)}")
