"""Global-phase algorithms for hierarchical collectives.

The inter-host phase of a hierarchical collective is a first-class
*program*: a sequence of synchronized rounds of ``(src_host, dst_host,
nbytes)`` transfers, built by one of three algorithm families and
priced on a :class:`~repro.multihost.Fabric`:

* ``ring`` -- the classic ring / pairwise schedules (what the flat
  :class:`MpiSimulator` always modelled): ``N-1`` rounds, minimal
  volume, linear latency.
* ``halving_doubling`` -- recursive halving/doubling (and Bruck for
  AlltoAll): ``log2 N`` rounds, so it wins when per-round latency
  dominates; power-of-two host counts only.
* ``exchange`` -- the generalized exchange of Kolmakov & Zhang ("A
  Generalization of the Allreduce Operation"): factor ``N`` into
  phases ``f_1 * ... * f_m``, each phase exchanging within stride
  groups of ``f_j`` hosts.  Rack-aligned factors (hosts-per-rack
  first, racks second) keep the bulky early phases on leaf links and
  shrink what crosses an oversubscribed spine -- the topology win the
  :class:`~repro.multihost.GlobalTuner` searches for.

Round builders shape *cost only*.  The functional global exchange is
canonical numpy (identical for every algorithm, see
``hierarchical.py``), so all algorithms are bit-identical by
construction -- the same plan/estimate split the single-host engine
uses.

Per-primitive payload convention (``nbytes`` below):

* ``allreduce`` / ``reduce_scatter`` -- the locally-reduced host
  vector each host starts with;
* ``allgather`` -- each host's contribution (final size is ``N x``);
* ``alltoall`` -- each host's outbound buffer (``N`` blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collectives import GLOBAL_ALGORITHMS
from ..errors import CollectiveError
from .fabric import Fabric

__all__ = ["GLOBAL_ALGORITHMS", "GlobalProgram", "compile_global",
           "default_factors", "factor_candidates"]

#: Primitives with a global phase.
GLOBAL_PRIMITIVES = ("allreduce", "reduce_scatter", "allgather", "alltoall")

Round = tuple[tuple[int, int, int], ...]


@dataclass(frozen=True)
class GlobalProgram:
    """One compiled inter-host exchange: rounds plus its fabric price."""

    primitive: str
    algorithm: str
    num_hosts: int
    #: Per-host payload bytes the rounds were built from.
    nbytes: int
    #: Phase factors (exchange only; () otherwise).
    factors: tuple[int, ...]
    rounds: tuple[Round, ...]
    #: Modelled seconds on the fabric the program was compiled for.
    seconds: float
    #: Payload bytes entering the fabric (sum of transfer sizes; hops
    #: through switches do not multiply this).
    fabric_bytes: int

    def describe(self) -> str:
        """e.g. ``alltoall/exchange(4x2): 4 rounds, 786432 B``."""
        factors = ("x".join(str(f) for f in self.factors)
                   if self.factors else "")
        suffix = f"({factors})" if factors else ""
        return (f"{self.primitive}/{self.algorithm}{suffix}: "
                f"{len(self.rounds)} rounds, {self.fabric_bytes} B")


def compile_global(primitive: str, num_hosts: int, nbytes: int,
                   algorithm: str, fabric: Fabric,
                   factors: tuple[int, ...] | None = None
                   ) -> GlobalProgram | None:
    """Build and price one global-phase program.

    Returns None when ``algorithm`` cannot serve this host count
    (recursive halving/doubling needs a power of two) -- the tuner
    skips inapplicable candidates.  One host compiles to an empty
    (free) program under every algorithm.
    """
    if primitive not in GLOBAL_PRIMITIVES:
        raise CollectiveError(
            f"no global phase for primitive {primitive!r}; "
            f"known: {GLOBAL_PRIMITIVES}")
    if algorithm not in GLOBAL_ALGORITHMS:
        raise CollectiveError(
            f"unknown global algorithm {algorithm!r}; "
            f"known: {GLOBAL_ALGORITHMS}")
    if fabric.num_hosts != num_hosts:
        raise CollectiveError(
            f"fabric spans {fabric.num_hosts} hosts, program wants "
            f"{num_hosts}")
    if nbytes < 0:
        raise CollectiveError(f"negative payload {nbytes}")
    if num_hosts == 1:
        rounds: tuple[Round, ...] = ()
    elif algorithm == "ring":
        rounds = _ring_rounds(primitive, num_hosts, nbytes)
    elif algorithm == "halving_doubling":
        if num_hosts & (num_hosts - 1):
            return None
        rounds = _hd_rounds(primitive, num_hosts, nbytes)
    else:
        factors = factors or default_factors(num_hosts, fabric)
        rounds = _exchange_rounds(primitive, num_hosts, nbytes, factors)
    moved = sum(b for rnd in rounds for _, _, b in rnd)
    return GlobalProgram(
        primitive=primitive, algorithm=algorithm, num_hosts=num_hosts,
        nbytes=nbytes,
        factors=tuple(factors) if algorithm == "exchange" and factors
        else (),
        rounds=rounds, seconds=fabric.program_seconds(rounds),
        fabric_bytes=moved)


# ----------------------------------------------------------------------
# Ring / pairwise
# ----------------------------------------------------------------------
def _ring_rounds(primitive: str, n: int, nbytes: int) -> tuple[Round, ...]:
    share = -(-nbytes // n)  # ceil: cost never understates a message
    if primitive == "reduce_scatter":
        return _ring_pass(n, share, n - 1)
    if primitive == "allgather":
        return _ring_pass(n, nbytes, n - 1)
    if primitive == "allreduce":
        # Ring reduce-scatter then ring allgather of the B/N shards.
        return _ring_pass(n, share, n - 1) + _ring_pass(n, share, n - 1)
    # alltoall: pairwise exchange, round k partners h and (h+k) mod n.
    return tuple(
        tuple((h, (h + k) % n, share) for h in range(n))
        for k in range(1, n))


def _ring_pass(n: int, nbytes: int, steps: int) -> tuple[Round, ...]:
    one = tuple((h, (h + 1) % n, nbytes) for h in range(n))
    return (one,) * steps


# ----------------------------------------------------------------------
# Recursive halving / doubling (+ Bruck alltoall)
# ----------------------------------------------------------------------
def _hd_rounds(primitive: str, n: int, nbytes: int) -> tuple[Round, ...]:
    log = n.bit_length() - 1
    if primitive == "reduce_scatter":
        return _halving(n, nbytes, log)
    if primitive == "allgather":
        # Recursive doubling: shares double from the contribution up.
        return tuple(
            tuple((h, h ^ (1 << k), nbytes << k) for h in range(n))
            for k in range(log))
    if primitive == "allreduce":
        share = -(-nbytes // n)
        doubling = tuple(
            tuple((h, h ^ (1 << k), share << k) for h in range(n))
            for k in range(log))
        return _halving(n, nbytes, log) + doubling
    # alltoall: Bruck -- log rounds, half the buffer each.
    half = -(-nbytes // 2)
    return tuple(
        tuple((h, (h + (1 << k)) % n, half) for h in range(n))
        for k in range(log))


def _halving(n: int, nbytes: int, log: int) -> tuple[Round, ...]:
    return tuple(
        tuple((h, h ^ (n >> (k + 1)), -(-nbytes // (1 << (k + 1))))
              for h in range(n))
        for k in range(log))


# ----------------------------------------------------------------------
# Generalized exchange (Kolmakov & Zhang)
# ----------------------------------------------------------------------
def _exchange_rounds(primitive: str, n: int, nbytes: int,
                     factors: tuple[int, ...]) -> tuple[Round, ...]:
    _check_factors(n, factors)
    if primitive == "reduce_scatter":
        return _exchange_scatter(n, nbytes, factors)
    if primitive == "allgather":
        return _exchange_gather(n, nbytes, factors)
    if primitive == "allreduce":
        share = -(-nbytes // n)
        return (_exchange_scatter(n, nbytes, factors)
                + _exchange_gather(n, share, factors))
    # alltoall: phase j forwards the blocks whose j-th mixed-radix
    # destination digit differs -- B/f_j bytes to each group partner.
    rounds: list[Round] = []
    stride = 1
    for f in factors:
        share = -(-nbytes // f)
        rounds.extend(_phase(n, stride, f, lambda h: share))
        stride *= f
    return tuple(rounds)


def _exchange_scatter(n: int, nbytes: int,
                      factors: tuple[int, ...]) -> tuple[Round, ...]:
    """Phases of shrinking shares: after phase j each host keeps
    ``1/f_j`` of what it held, so only ``B / prod(f_1..f_j)`` survives
    into later (wider-stride) phases."""
    rounds: list[Round] = []
    stride = 1
    held = nbytes
    for f in factors:
        share = -(-held // f)
        rounds.extend(_phase(n, stride, f, lambda h: share))
        held = share
        stride *= f
    return tuple(rounds)


def _exchange_gather(n: int, nbytes: int,
                     factors: tuple[int, ...]) -> tuple[Round, ...]:
    """Phases of growing shares, the exact mirror of the scatter:
    factors run in reverse order but each keeps its scatter-phase
    stride, so the bulky final phases exchange within the *narrow*
    (stride-1, e.g. intra-rack) groups while only the small early
    shares cross wide strides."""
    strides = []
    s = 1
    for f in factors:
        strides.append(s)
        s *= f
    rounds: list[Round] = []
    held = nbytes
    for f, stride in zip(reversed(factors), reversed(strides)):
        rounds.extend(_phase(n, stride, f, lambda h: held))
        held *= f
    return tuple(rounds)


def _phase(n: int, stride: int, f: int, share_of) -> list[Round]:
    """One exchange phase: ``f - 1`` rounds; in round ``t`` every host
    sends to the group member ``t`` positions ahead (groups are the
    hosts ``{base + i * stride}``)."""
    rounds = []
    for t in range(1, f):
        transfers = []
        for h in range(n):
            pos = (h // stride) % f
            partner = h + (((pos + t) % f) - pos) * stride
            transfers.append((h, partner, share_of(h)))
        rounds.append(tuple(transfers))
    return rounds


def _check_factors(n: int, factors: tuple[int, ...]) -> None:
    product = 1
    for f in factors:
        if f < 2:
            raise CollectiveError(
                f"exchange factors must all be >= 2, got {factors}")
        product *= f
    if product != n:
        raise CollectiveError(
            f"exchange factors {factors} do not multiply to {n} hosts")


def default_factors(num_hosts: int, fabric: Fabric) -> tuple[int, ...]:
    """The exchange factorization to use absent an explicit choice:
    rack-aligned (hosts-per-rack, racks) on a rack topology, the
    ascending prime decomposition otherwise."""
    if num_hosts == 1:
        return ()
    per_rack = fabric.hosts_per_rack
    if per_rack and 1 < per_rack < num_hosts \
            and num_hosts % per_rack == 0:
        return (per_rack, num_hosts // per_rack)
    return _prime_factors(num_hosts)


def factor_candidates(num_hosts: int, fabric: Fabric
                      ) -> tuple[tuple[int, ...], ...]:
    """Factorizations worth pricing: the default, the single-phase
    direct exchange, and (on rack topologies) the rack-aligned split."""
    candidates = [default_factors(num_hosts, fabric)]
    if num_hosts > 1:
        for extra in (_prime_factors(num_hosts), (num_hosts,)):
            if extra not in candidates:
                candidates.append(extra)
    return tuple(candidates)


def _prime_factors(n: int) -> tuple[int, ...]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return tuple(factors)
