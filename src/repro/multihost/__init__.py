"""Multi-host extension (paper section IX-A, Figure 23b).

Rack-scale hierarchical collectives on the compiled engine: each
simulated host runs PID-Comm locally through its own engine session,
and the global phase is a topology-aware inter-host program --
a :class:`Fabric` link graph priced per round, three global-phase
algorithm families (:func:`compile_global`), and a cost-model
:class:`GlobalTuner` choosing per (primitive, payload, topology).
"""

from .fabric import Fabric, Link
from .algorithms import (
    GLOBAL_PRIMITIVES,
    GlobalProgram,
    compile_global,
    default_factors,
    factor_candidates,
)
from .mpi_sim import MpiSimulator
from .tuning import GlobalTuner
from .hierarchical import (
    MultiHostResult,
    MultiHostSystem,
    multihost_allgather,
    multihost_allreduce,
    multihost_alltoall,
    multihost_reduce_scatter,
)
from ..core.collectives import GLOBAL_ALGORITHMS

__all__ = [
    "Fabric", "Link", "GLOBAL_ALGORITHMS", "GLOBAL_PRIMITIVES",
    "GlobalProgram", "compile_global", "default_factors",
    "factor_candidates", "GlobalTuner",
    "MpiSimulator", "MultiHostResult", "MultiHostSystem",
    "multihost_allreduce", "multihost_alltoall",
    "multihost_reduce_scatter", "multihost_allgather",
]
