"""Multi-host extension (paper section IX-A, Figure 23b)."""

from .mpi_sim import MpiSimulator
from .hierarchical import (
    MultiHostSystem,
    multihost_allgather,
    multihost_allreduce,
    multihost_alltoall,
    multihost_reduce_scatter,
)

__all__ = [
    "MpiSimulator", "MultiHostSystem",
    "multihost_allreduce", "multihost_alltoall",
    "multihost_reduce_scatter", "multihost_allgather",
]
