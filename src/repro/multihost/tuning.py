"""Topology-aware selection of the global-phase algorithm.

The single-host autotuner (PR 8) picks tiles and rungs by pricing
candidates on the machine model and caching the argmin per shape.
:class:`GlobalTuner` extends exactly that discipline to the
inter-host phase: per ``(primitive, payload, topology)`` it compiles
every applicable algorithm in the session's
:class:`~repro.analysis.autotune.ScheduleSpace` global axis
(``ring`` / ``halving_doubling`` / ``exchange``, the latter over a
small family of factorizations including the rack-aligned split),
prices each on the :class:`~repro.multihost.Fabric`, and commits the
cheapest into a decision cache keyed by the fabric's signature.

Because selection is an argmin over the same model the fixed
alternatives are priced with, the chosen algorithm is never worse than
the best fixed algorithm *on modelled fabric seconds* -- the property
``BENCH_multihost.json`` gates at <= 1.05x.  And because algorithms
shape cost only (the functional exchange is shared numpy), selection
can never change results.
"""

from __future__ import annotations

from ..core.collectives import GLOBAL_ALGORITHMS
from ..errors import CollectiveError
from .algorithms import GlobalProgram, compile_global, factor_candidates
from .fabric import Fabric


class GlobalTuner:
    """Cost-model argmin over global-phase algorithms, decision-cached.

    Args:
        fabric: The topology programs are priced on.
        algorithms: Candidate algorithms (default: the session
            schedule-space's full global axis).  A single entry pins
            the choice, mirroring how a pinned ``SessionConfig``
            backend collapses that axis for the local tuner.
    """

    def __init__(self, fabric: Fabric,
                 algorithms: tuple[str, ...] | None = None) -> None:
        if algorithms is None:
            algorithms = GLOBAL_ALGORITHMS
        for algorithm in algorithms:
            if algorithm not in GLOBAL_ALGORITHMS:
                raise CollectiveError(
                    f"unknown global algorithm {algorithm!r}; "
                    f"known: {GLOBAL_ALGORITHMS}")
        if not algorithms:
            raise CollectiveError("global tuner needs at least one "
                                  "candidate algorithm")
        self.fabric = fabric
        self.algorithms = tuple(algorithms)
        #: (primitive, nbytes) -> chosen program; the fabric signature
        #: is part of the instance (one tuner per fabric), so the key
        #: stays small.
        self._decisions: dict[tuple[str, int], GlobalProgram] = {}
        self.searches = 0
        self.decision_hits = 0

    def candidates(self, primitive: str, nbytes: int
                   ) -> list[GlobalProgram]:
        """Every applicable priced candidate, cheapest first."""
        scored: list[GlobalProgram] = []
        n = self.fabric.num_hosts
        for algorithm in self.algorithms:
            if algorithm == "exchange":
                for factors in factor_candidates(n, self.fabric):
                    program = compile_global(primitive, n, nbytes,
                                             algorithm, self.fabric,
                                             factors=factors)
                    if program is not None:
                        scored.append(program)
            else:
                program = compile_global(primitive, n, nbytes, algorithm,
                                         self.fabric)
                if program is not None:
                    scored.append(program)
        if not scored:
            raise CollectiveError(
                f"no candidate global algorithm applies to {n} hosts "
                f"(candidates: {self.algorithms})")
        # Stable tie-break: cheapest, then fewer rounds, then the
        # canonical algorithm order.
        order = {name: i for i, name in enumerate(GLOBAL_ALGORITHMS)}
        scored.sort(key=lambda p: (p.seconds, len(p.rounds),
                                   order[p.algorithm]))
        return scored

    def choose(self, primitive: str, nbytes: int) -> GlobalProgram:
        """The cheapest global program for this payload (cached)."""
        key = (primitive, nbytes)
        cached = self._decisions.get(key)
        if cached is not None:
            self.decision_hits += 1
            return cached
        self.searches += 1
        best = self.candidates(primitive, nbytes)[0]
        self._decisions[key] = best
        return best

    def invalidate(self) -> None:
        """Drop every cached decision (e.g. after swapping fabrics)."""
        self._decisions.clear()
