"""Hierarchical multi-host collectives (paper Figure 23b), on the engine.

Each host owns one UPMEM channel (4 ranks x 8 chips x 8 banks = 256
PEs, as in the paper's testbed) and runs PID-Comm locally through its
own :class:`~repro.engine.Communicator` session -- full
:class:`~repro.engine.SessionConfig` support, so the local phases enjoy
compiled replay, streaming, autotuning, and content-aware elision.
The global phase is a first-class inter-host program
(:class:`~repro.multihost.GlobalProgram`) priced on a topology-aware
:class:`~repro.multihost.Fabric` and selected per (primitive, payload,
topology) by the :class:`~repro.multihost.GlobalTuner`; with
``parallel_workers > 1`` the per-host local phases fan out across a
host-level :class:`~repro.engine.WorkerPool`.

AllReduce ships only the locally-reduced vector (1/256th of the data),
so its fabric overhead is small; AlltoAll has no reduction and pays the
full ``(N-1)/N`` crossing cost -- exactly the asymmetry the paper's
figure shows.  The functional global exchange is canonical numpy
(shared by every algorithm and topology), so hierarchical outputs are
bit-identical to the scalar interpreted oracle at every host count,
backend, execution mode, and global algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.collectives import FULL, OptConfig, Schedule
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, INT64, ReduceOp, SUM
from ..engine import Communicator, SessionConfig, WorkerPool
from ..errors import CollectiveError
from ..hw.arena import scan_chunk_classes
from ..hw.geometry import DimmGeometry
from ..hw.system import DimmSystem
from ..hw.timing import CostLedger, MachineParams
from .algorithms import GlobalProgram
from .fabric import Fabric
from .mpi_sim import MpiSimulator
from .tuning import GlobalTuner

_UNSET = object()

#: Target fingerprint-scan granularity for fabric elision.  256 B
#: chunks align with whole-PE runs in the re-blocked AlltoAll wire
#: layout, so a zeroed PE's contribution elides even when its
#: neighbours are dense.
FABRIC_SCAN_CHUNK_BYTES = 256


def _scan_blocks(size: int) -> int:
    """Chunk count for a fabric elision scan over ``size`` bytes: the
    finest split at or above :data:`FABRIC_SCAN_CHUNK_BYTES` whose
    chunk width is a multiple of 8 (the packed zero-scan's word size)
    and divides the payload evenly."""
    if size % 8:
        return 1
    chunk = min(FABRIC_SCAN_CHUNK_BYTES, size)
    while size % chunk:
        chunk -= 8
    return size // chunk


@dataclass
class MultiHostResult:
    """Outcome of one hierarchical collective."""

    ledger: CostLedger          # one host's local work (hosts run in parallel)
    #: Seconds the global phase spends on the inter-host fabric.
    fabric_seconds: float
    #: host -> per-PE output vectors (functional runs only).
    outputs: list[list[np.ndarray]] | None = None
    #: Global-phase algorithm the tuner chose (None on a single host).
    global_algorithm: str | None = None
    #: Payload bytes the global phase put on the fabric.
    fabric_bytes: int = 0
    #: Fabric bytes skipped by content-aware elision (all-zero blocks
    #: replaced by fingerprint markers).
    elided_fabric_bytes: int = 0
    #: The local schedule host 0 executed, with the global algorithm
    #: filled in (None when the session did not resolve a schedule).
    schedule: Schedule | None = None

    @property
    def mpi_seconds(self) -> float:
        """Back-compat alias: the global phase's inter-host seconds."""
        return self.fabric_seconds

    @property
    def seconds(self) -> float:
        return self.ledger.total + self.fabric_seconds

    def combined(self) -> CostLedger:
        """Local ledger plus the global phase as a ``fabric`` entry."""
        merged = self.ledger.copy()
        if self.fabric_seconds > 0.0:
            merged.add("fabric", self.fabric_seconds)
        return merged


class MultiHostSystem:
    """``num_hosts`` single-channel UPMEM systems + an inter-host fabric.

    Args:
        num_hosts: Simulated hosts.
        params: Machine parameters (shared by hosts and fabric links).
        ranks_per_channel / mram_bytes: Per-host system size.
        config: Optimization rung shorthand (kept from the pre-engine
            API); equivalent to ``session_config=SessionConfig(
            config=...)``.
        session_config: Full engine configuration every host's
            :class:`~repro.engine.Communicator` runs under (backend,
            execution mode, streaming, autotune, elision, workers).
        fabric: Inter-host topology (default: fully connected at the
            testbed's throttled MPI link rate, which reproduces the
            flat :class:`MpiSimulator` pricing).
        global_algorithm: Pin the global-phase algorithm (``"ring"`` /
            ``"halving_doubling"`` / ``"exchange"``); None lets the
            :class:`GlobalTuner` pick per (primitive, payload).

    With ``session_config.parallel_workers > 1`` the worker budget is
    spent at the *host* level: local phases of distinct hosts run
    concurrently on a :class:`~repro.engine.WorkerPool` while each
    host's session itself stays serial.
    """

    def __init__(self, num_hosts: int, params: MachineParams | None = None,
                 ranks_per_channel: int = 4, mram_bytes: int = 1 << 20,
                 config: OptConfig = _UNSET, *,
                 session_config: SessionConfig | None = None,
                 fabric: Fabric | None = None,
                 global_algorithm: str | None = None) -> None:
        if num_hosts < 1:
            raise CollectiveError("need at least one host")
        if config is not _UNSET and session_config is not None:
            raise CollectiveError(
                "pass either config= (optimization rung shorthand) or "
                "session_config=, not both")
        if session_config is None:
            session_config = SessionConfig(
                config=config if config is not _UNSET else FULL)
        self.params = params or MachineParams()
        self.session_config = session_config
        self.config = session_config.config
        self.systems = [
            DimmSystem(DimmGeometry(1, ranks_per_channel, 8, 8),
                       self.params, mram_bytes)
            for _ in range(num_hosts)
        ]
        self.managers = [
            HypercubeManager(system, shape=(system.num_pes,))
            for system in self.systems
        ]
        workers = session_config.parallel_workers
        #: Host-level worker pool: when the session asks for parallel
        #: replay, distinct hosts' local phases run concurrently and
        #: each host's own session stays serial (the worker budget is
        #: spent once, at the outermost independent level).
        self._pool = (WorkerPool(min(workers, num_hosts))
                      if workers > 1 and num_hosts > 1 else None)
        host_config = (session_config.evolve(parallel_workers=1)
                       if self._pool is not None else session_config)
        self.communicators = [Communicator(manager, host_config)
                              for manager in self.managers]
        if fabric is not None and fabric.num_hosts != num_hosts:
            raise CollectiveError(
                f"fabric spans {fabric.num_hosts} hosts, system has "
                f"{num_hosts}")
        self.fabric = fabric or Fabric.fully_connected(num_hosts,
                                                       self.params)
        self.global_algorithm = global_algorithm
        # The candidate axis comes from the session's schedule space
        # (imported lazily: analysis pulls in the application harness,
        # which imports this package).
        from ..analysis.autotune import ScheduleSpace
        space = ScheduleSpace.from_session(session_config,
                                           global_algorithm=global_algorithm)
        self.tuner = GlobalTuner(self.fabric,
                                 algorithms=space.global_algorithms)
        self.mpi = MpiSimulator(self.params, num_hosts)

    @property
    def num_hosts(self) -> int:
        return len(self.systems)

    @property
    def pes_per_host(self) -> int:
        return self.systems[0].num_pes

    @property
    def total_pes(self) -> int:
        return self.num_hosts * self.pes_per_host

    @property
    def stats(self):
        """Host 0's :class:`~repro.engine.EngineStats` (hosts run the
        same symmetric work; global-phase counters accrue here)."""
        return self.communicators[0].stats

    def alloc(self, nbytes: int) -> int:
        """Allocate the same buffer on every host (symmetric offsets)."""
        offsets = {system.alloc(nbytes) for system in self.systems}
        if len(offsets) != 1:
            raise CollectiveError("host allocators diverged")
        return offsets.pop()

    def write_pe(self, global_pe: int, offset: int, values: np.ndarray,
                 dtype: DataType = INT64) -> None:
        """Write elements to a PE addressed by its *global* id."""
        host, local = divmod(global_pe, self.pes_per_host)
        self.systems[host].write_elements(local, offset, values, dtype)

    def read_pe(self, global_pe: int, offset: int, count: int,
                dtype: DataType = INT64) -> np.ndarray:
        """Read elements from a PE addressed by its *global* id."""
        host, local = divmod(global_pe, self.pes_per_host)
        return self.systems[host].read_elements(local, offset, count, dtype)

    def close(self) -> None:
        """Join host sessions' worker threads (idempotent)."""
        for comm in self.communicators:
            comm.close()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    # Execution helpers the module-level collectives share
    # ------------------------------------------------------------------
    def _each_host(self, call):
        """Run ``call(host)`` for every host, pooled when configured.

        Results come back in host order either way (the pool preserves
        submission order), so functional outputs stay deterministic.
        """
        if self._pool is None:
            return [call(host) for host in range(self.num_hosts)]
        return self._pool.run(
            [(lambda h=host: call(h)) for host in range(self.num_hosts)])

    def _global_phase(self, primitive: str, nbytes: int,
                      buffers: list[np.ndarray] | None,
                      ledger: CostLedger) -> GlobalProgram | None:
        """Select, elide, price, and record the inter-host program.

        ``buffers`` are the per-host outbound payloads (None on
        analytic runs, which price the program unelided).  Returns the
        chosen program, or None on a single host (no global phase).
        """
        if self.num_hosts == 1:
            return None
        program = self.tuner.choose(primitive, nbytes)
        seconds, moved, elided = program.seconds, program.fabric_bytes, 0
        if buffers is not None and self.session_config.elide_transfers:
            seconds, moved, elided = self._elide_fabric(program, buffers,
                                                        ledger)
        self._last_fabric = (seconds, moved, elided)
        self.stats.record_global_phase(
            primitive, program.algorithm, fabric_bytes=moved,
            fabric_seconds=seconds, elided_bytes=elided)
        return program

    def _elide_fabric(self, program: GlobalProgram,
                      buffers: list[np.ndarray], ledger: CostLedger
                      ) -> tuple[float, int, int]:
        """Content-aware fabric elision: fingerprint-scan each host's
        outbound payload in :data:`FABRIC_SCAN_CHUNK_BYTES`-grained
        chunks; all-zero chunks cross as markers instead of payload,
        scaling that host's transfer bytes by its dense fraction.  The
        scan itself is charged to the ``elide`` category, exactly like
        the single-host replay path (PR 9)."""
        dense: list[float] = []
        scanned_total = 0
        for buf in buffers:
            raw = np.ascontiguousarray(np.asarray(buf)).view(np.uint8)
            raw = raw.reshape(-1)
            if raw.size == 0:
                dense.append(0.0)
                continue
            blocks = _scan_blocks(raw.size)
            chunks = raw.reshape(blocks, -1)
            zero, _, scanned = scan_chunk_classes(chunks, ngroups=1)
            scanned_total += scanned
            dense.append(1.0 - float(np.count_nonzero(zero)) / blocks)
        if scanned_total:
            ledger.add("elide", self.params.scan_time(scanned_total))
        scaled = tuple(
            tuple((src, dst, int(round(nbytes * dense[src])))
                  for src, dst, nbytes in rnd)
            for rnd in program.rounds)
        moved = sum(b for rnd in scaled for _, _, b in rnd)
        seconds = self.fabric.program_seconds(scaled)
        return seconds, moved, program.fabric_bytes - moved

    def _finish(self, ledger: CostLedger, program: GlobalProgram | None,
                local_schedule, outputs) -> MultiHostResult:
        if program is None:
            return MultiHostResult(ledger=ledger, fabric_seconds=0.0,
                                   outputs=outputs,
                                   schedule=local_schedule)
        seconds, moved, elided = self._last_fabric
        schedule = (local_schedule.with_global_algorithm(program.algorithm)
                    if local_schedule is not None else None)
        return MultiHostResult(
            ledger=ledger, fabric_seconds=seconds, outputs=outputs,
            global_algorithm=program.algorithm, fabric_bytes=moved,
            elided_fabric_bytes=elided, schedule=schedule)


def multihost_allreduce(mh: MultiHostSystem, total_data_size: int,
                        src_offset: int, dst_offset: int,
                        dtype: DataType = INT64, op: ReduceOp = SUM,
                        functional: bool = True) -> MultiHostResult:
    """Global AllReduce: local Reduce -> fabric allreduce -> local
    Broadcast.

    Only ``total_data_size`` bytes per host cross the network (the data
    is reduced over the host's PEs first).
    """
    ledger = CostLedger()
    reduce_results = mh._each_host(
        lambda h: mh.communicators[h].reduce(
            "1", total_data_size, src_offset=src_offset, data_type=dtype,
            reduction_type=op, functional=functional))
    ledger.merge(reduce_results[0].ledger)  # hosts run in parallel
    host_vectors = None
    if functional:
        host_vectors = [res.host_outputs[0] for res in reduce_results]

    program = mh._global_phase("allreduce", total_data_size,
                               host_vectors, ledger)
    reduced = mh.mpi.allreduce(host_vectors, op) if functional else None

    broadcast_results = mh._each_host(
        lambda h: mh.communicators[h].broadcast(
            "1", total_data_size, dst_offset=dst_offset, data_type=dtype,
            payloads=({0: reduced[h]} if functional else None),
            functional=functional))
    ledger.merge(broadcast_results[0].ledger)

    outputs = None
    if functional:
        elems = total_data_size // dtype.itemsize
        outputs = [mh.systems[h].gather_elements(
                       range(mh.pes_per_host), dst_offset, elems, dtype)
                   for h in range(mh.num_hosts)]
    return mh._finish(ledger, program, reduce_results[0].schedule, outputs)


def multihost_reduce_scatter(mh: MultiHostSystem, total_data_size: int,
                             src_offset: int, dst_offset: int,
                             dtype: DataType = INT64, op: ReduceOp = SUM,
                             functional: bool = True) -> MultiHostResult:
    """Global ReduceScatter: local Reduce -> fabric reduce_scatter ->
    local Scatter of each host's shard.

    Like AllReduce, the data crosses the network *after* the local
    reduction ("similar trends persist in ReduceScatter whose data are
    sent after reduction", section IX-A).  Semantics: the global vector
    splits into ``total_pes`` chunks; global PE ``i`` receives reduced
    chunk ``i``.
    """
    n_hosts = mh.num_hosts
    p = mh.pes_per_host
    total_global = n_hosts * p
    if total_data_size % total_global:
        raise CollectiveError(
            f"per-PE size {total_data_size}B must split into "
            f"{total_global} global chunks")
    chunk = total_data_size // total_global
    if chunk % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")

    ledger = CostLedger()
    reduce_results = mh._each_host(
        lambda h: mh.communicators[h].reduce(
            "1", total_data_size, src_offset=src_offset, data_type=dtype,
            reduction_type=op, functional=functional))
    ledger.merge(reduce_results[0].ledger)
    host_vectors = None
    if functional:
        host_vectors = [res.host_outputs[0] for res in reduce_results]

    program = mh._global_phase("reduce_scatter", total_data_size,
                               host_vectors, ledger)
    shards = None
    if functional:
        reduced = mh.mpi.allreduce(host_vectors, op)[0]
        raw = np.ascontiguousarray(reduced).view(np.uint8)
        shards = raw.reshape(n_hosts, p * chunk)

    scatter_results = mh._each_host(
        lambda h: mh.communicators[h].scatter(
            "1", chunk, dst_offset=dst_offset, data_type=dtype,
            payloads=({0: shards[h]} if functional else None),
            functional=functional))
    ledger.merge(scatter_results[0].ledger)

    outputs = None
    if functional:
        elems = chunk // dtype.itemsize
        outputs = [mh.systems[h].gather_elements(
                       range(p), dst_offset, elems, dtype)
                   for h in range(n_hosts)]
    return mh._finish(ledger, program, reduce_results[0].schedule, outputs)


def multihost_allgather(mh: MultiHostSystem, total_data_size: int,
                        src_offset: int, dst_offset: int,
                        dtype: DataType = INT64,
                        functional: bool = True) -> MultiHostResult:
    """Global AllGather: local Gather -> fabric allgather -> local
    Broadcast.

    The data crosses *before* duplication ("AllGather whose data are
    sent before duplication", section IX-A): each host ships its own
    ``p * chunk`` bytes once, then replicates locally at bus speed.
    """
    if total_data_size % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")
    n_hosts = mh.num_hosts
    p = mh.pes_per_host

    ledger = CostLedger()
    gather_results = mh._each_host(
        lambda h: mh.communicators[h].gather(
            "1", total_data_size, src_offset=src_offset, data_type=dtype,
            functional=functional))
    ledger.merge(gather_results[0].ledger)
    gathered = None
    if functional:
        gathered = [np.ascontiguousarray(res.host_outputs[0]).view(np.uint8)
                    for res in gather_results]

    program = mh._global_phase("allgather", p * total_data_size,
                               gathered, ledger)
    full = mh.mpi.allgather(gathered)[0] if functional else None

    out_bytes = n_hosts * p * total_data_size
    broadcast_results = mh._each_host(
        lambda h: mh.communicators[h].broadcast(
            "1", out_bytes, dst_offset=dst_offset, data_type=dtype,
            payloads=({0: full} if functional else None),
            functional=functional))
    ledger.merge(broadcast_results[0].ledger)

    outputs = None
    if functional:
        elems = out_bytes // dtype.itemsize
        outputs = [mh.systems[h].gather_elements(
                       range(p), dst_offset, elems, dtype)
                   for h in range(n_hosts)]
    return mh._finish(ledger, program, gather_results[0].schedule, outputs)


def multihost_alltoall(mh: MultiHostSystem, total_data_size: int,
                       src_offset: int, dst_offset: int,
                       dtype: DataType = INT64,
                       functional: bool = True) -> MultiHostResult:
    """Global AlltoAll: local Gather -> fabric alltoall -> local Scatter.

    Every PE's buffer holds ``total_pes`` chunks in global PE order
    (host-major).  Unlike AllReduce, the full ``(N-1)/N`` share of the
    data crosses the network.
    """
    n_hosts = mh.num_hosts
    p = mh.pes_per_host
    total_global = n_hosts * p
    if total_data_size % total_global:
        raise CollectiveError(
            f"per-PE size {total_data_size}B must split into "
            f"{total_global} global chunks")
    chunk = total_data_size // total_global
    if chunk % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")

    ledger = CostLedger()
    gather_results = mh._each_host(
        lambda h: mh.communicators[h].gather(
            "1", total_data_size, src_offset=src_offset, data_type=dtype,
            functional=functional))
    ledger.merge(gather_results[0].ledger)

    # Host-side re-blocking for the wire (charged as local modulation).
    per_host_bytes = p * total_data_size
    ledger.add("host_mod", mh.params.mod_time(per_host_bytes, "local"))
    ledger.add("host_mem", mh.params.host_mem_time(2 * per_host_bytes))

    blocks = None
    if functional:
        blocks = []
        for res in gather_results:
            raw = np.ascontiguousarray(res.host_outputs[0]).view(np.uint8)
            arr = raw.reshape(p, n_hosts, p, chunk)
            blocks.append(np.ascontiguousarray(
                arr.transpose(1, 0, 2, 3)).reshape(-1))

    program = mh._global_phase("alltoall", per_host_bytes, blocks, ledger)
    received = mh.mpi.alltoall(blocks) if functional else None

    def scatter_host(h):
        payloads = None
        if functional:
            arr = np.asarray(received[h], dtype=np.uint8).reshape(
                n_hosts, p, p, chunk)
            # Local PE q receives chunk [src_host, src_local, q].
            payloads = {0: np.ascontiguousarray(
                arr.transpose(2, 0, 1, 3)).reshape(-1)}
        return mh.communicators[h].scatter(
            "1", total_data_size, dst_offset=dst_offset, data_type=dtype,
            payloads=payloads, functional=functional)

    scatter_results = mh._each_host(scatter_host)
    ledger.merge(scatter_results[0].ledger)

    outputs = None
    if functional:
        elems = total_data_size // dtype.itemsize
        outputs = [mh.systems[h].gather_elements(
                       range(mh.pes_per_host), dst_offset, elems, dtype)
                   for h in range(mh.num_hosts)]
    return mh._finish(ledger, program, gather_results[0].schedule, outputs)
