"""Hierarchical multi-host collectives (paper Figure 23b).

Each host owns one UPMEM channel (4 ranks x 8 chips x 8 banks = 256
PEs, as in the paper's testbed) and runs PID-Comm locally; the global
phase runs over simulated MPI at 10 Gbps.  AllReduce ships only the
locally-reduced vector (1/256th of the data), so its MPI overhead is
small; AlltoAll has no reduction and pays the full ``(N-1)/N`` crossing
cost -- exactly the asymmetry the paper's figure shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.collectives import FULL, OptConfig
from ..core.collectives.planner import (
    GATHER_SCRATCH,
    REDUCE_SCRATCH,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_scatter,
)
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, INT64, ReduceOp, SUM
from ..errors import CollectiveError
from ..hw.geometry import DimmGeometry
from ..hw.system import DimmSystem
from ..hw.timing import CostLedger, MachineParams
from .mpi_sim import MpiSimulator


@dataclass
class MultiHostResult:
    """Outcome of one hierarchical collective."""

    ledger: CostLedger          # one host's local work (hosts run in parallel)
    mpi_seconds: float
    #: host -> per-PE output vectors (functional runs only).
    outputs: list[list[np.ndarray]] | None = None

    @property
    def seconds(self) -> float:
        return self.ledger.total + self.mpi_seconds


class MultiHostSystem:
    """``num_hosts`` single-channel UPMEM systems + an MPI fabric."""

    def __init__(self, num_hosts: int, params: MachineParams | None = None,
                 ranks_per_channel: int = 4, mram_bytes: int = 1 << 20,
                 config: OptConfig = FULL) -> None:
        if num_hosts < 1:
            raise CollectiveError("need at least one host")
        self.params = params or MachineParams()
        self.config = config
        self.systems = [
            DimmSystem(DimmGeometry(1, ranks_per_channel, 8, 8),
                       self.params, mram_bytes)
            for _ in range(num_hosts)
        ]
        self.managers = [
            HypercubeManager(system, shape=(system.num_pes,))
            for system in self.systems
        ]
        self.mpi = MpiSimulator(self.params, num_hosts)

    @property
    def num_hosts(self) -> int:
        return len(self.systems)

    @property
    def pes_per_host(self) -> int:
        return self.systems[0].num_pes

    @property
    def total_pes(self) -> int:
        return self.num_hosts * self.pes_per_host

    def alloc(self, nbytes: int) -> int:
        """Allocate the same buffer on every host (symmetric offsets)."""
        offsets = {system.alloc(nbytes) for system in self.systems}
        if len(offsets) != 1:
            raise CollectiveError("host allocators diverged")
        return offsets.pop()

    def write_pe(self, global_pe: int, offset: int, values: np.ndarray,
                 dtype: DataType = INT64) -> None:
        """Write elements to a PE addressed by its *global* id."""
        host, local = divmod(global_pe, self.pes_per_host)
        self.systems[host].write_elements(local, offset, values, dtype)

    def read_pe(self, global_pe: int, offset: int, count: int,
                dtype: DataType = INT64) -> np.ndarray:
        """Read elements from a PE addressed by its *global* id."""
        host, local = divmod(global_pe, self.pes_per_host)
        return self.systems[host].read_elements(local, offset, count, dtype)


def multihost_allreduce(mh: MultiHostSystem, total_data_size: int,
                        src_offset: int, dst_offset: int,
                        dtype: DataType = INT64, op: ReduceOp = SUM,
                        functional: bool = True) -> MultiHostResult:
    """Global AllReduce: local Reduce -> MPI allreduce -> local Broadcast.

    Only ``total_data_size`` bytes per host cross the network (the data
    is reduced over the host's PEs first).
    """
    ledger = CostLedger()
    host_vectors: list[np.ndarray] = []
    for host, manager in enumerate(mh.managers):
        plan = plan_reduce(manager, "1", total_data_size, src_offset, dtype,
                           op, mh.config)
        host_ledger, ctx = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)  # hosts run in parallel
        if functional and ctx is not None:
            acc = ctx.scratch[REDUCE_SCRATCH][0]
            host_vectors.append(np.ascontiguousarray(acc).reshape(-1))

    mpi_seconds = mh.mpi.allreduce_seconds(total_data_size)
    reduced = None
    if functional:
        reduced = mh.mpi.allreduce(host_vectors, op)

    outputs = None
    for host, manager in enumerate(mh.managers):
        payloads = ({0: reduced[host]} if functional else None)
        plan = plan_broadcast(manager, "1", total_data_size, dst_offset,
                              dtype, payloads, mh.config)
        host_ledger, _ = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
    if functional:
        elems = total_data_size // dtype.itemsize
        outputs = [[mh.systems[h].read_elements(pe, dst_offset, elems, dtype)
                    for pe in range(mh.pes_per_host)]
                   for h in range(mh.num_hosts)]
    return MultiHostResult(ledger=ledger, mpi_seconds=mpi_seconds,
                           outputs=outputs)


def multihost_reduce_scatter(mh: MultiHostSystem, total_data_size: int,
                             src_offset: int, dst_offset: int,
                             dtype: DataType = INT64, op: ReduceOp = SUM,
                             functional: bool = True) -> MultiHostResult:
    """Global ReduceScatter: local Reduce -> MPI reduce_scatter -> local
    Scatter of each host's shard.

    Like AllReduce, the data crosses the network *after* the local
    reduction ("similar trends persist in ReduceScatter whose data are
    sent after reduction", section IX-A).  Semantics: the global vector
    splits into ``total_pes`` chunks; global PE ``i`` receives reduced
    chunk ``i``.
    """
    n_hosts = mh.num_hosts
    p = mh.pes_per_host
    total_global = n_hosts * p
    if total_data_size % total_global:
        raise CollectiveError(
            f"per-PE size {total_data_size}B must split into "
            f"{total_global} global chunks")
    chunk = total_data_size // total_global
    if chunk % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")

    ledger = CostLedger()
    host_vectors: list[np.ndarray] = []
    for host, manager in enumerate(mh.managers):
        plan = plan_reduce(manager, "1", total_data_size, src_offset, dtype,
                           op, mh.config)
        host_ledger, ctx = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
        if functional and ctx is not None:
            acc = ctx.scratch[REDUCE_SCRATCH][0]
            host_vectors.append(np.ascontiguousarray(acc).reshape(-1))

    mpi_seconds = mh.mpi.reduce_scatter_seconds(total_data_size)
    shards = None
    if functional:
        reduced = mh.mpi.allreduce(host_vectors, op)[0]
        raw = np.ascontiguousarray(reduced).view(np.uint8)
        shards = raw.reshape(n_hosts, p * chunk)

    outputs = None
    for host, manager in enumerate(mh.managers):
        payloads = ({0: shards[host]} if functional else None)
        plan = plan_scatter(manager, "1", chunk, dst_offset, dtype,
                            payloads, mh.config)
        host_ledger, _ = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
    if functional:
        elems = chunk // dtype.itemsize
        outputs = [[mh.systems[h].read_elements(pe, dst_offset, elems, dtype)
                    for pe in range(p)]
                   for h in range(n_hosts)]
    return MultiHostResult(ledger=ledger, mpi_seconds=mpi_seconds,
                           outputs=outputs)


def multihost_allgather(mh: MultiHostSystem, total_data_size: int,
                        src_offset: int, dst_offset: int,
                        dtype: DataType = INT64,
                        functional: bool = True) -> MultiHostResult:
    """Global AllGather: local Gather -> MPI allgather -> local Broadcast.

    The data crosses *before* duplication ("AllGather whose data are
    sent before duplication", section IX-A): each host ships its own
    ``p * chunk`` bytes once, then replicates locally at bus speed.
    """
    if total_data_size % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")
    n_hosts = mh.num_hosts
    p = mh.pes_per_host

    ledger = CostLedger()
    gathered: list[np.ndarray] = []
    for host, manager in enumerate(mh.managers):
        plan = plan_gather(manager, "1", total_data_size, src_offset, dtype,
                           mh.config)
        host_ledger, ctx = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
        if functional and ctx is not None:
            gathered.append(np.asarray(ctx.scratch[GATHER_SCRATCH][0],
                                       dtype=np.uint8))

    mpi_seconds = mh.mpi.allgather_seconds(p * total_data_size)
    full = None
    if functional:
        full = np.concatenate(gathered)

    outputs = None
    out_bytes = n_hosts * p * total_data_size
    for host, manager in enumerate(mh.managers):
        payloads = ({0: full} if functional else None)
        plan = plan_broadcast(manager, "1", out_bytes, dst_offset, dtype,
                              payloads, mh.config)
        host_ledger, _ = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
    if functional:
        elems = out_bytes // dtype.itemsize
        outputs = [[mh.systems[h].read_elements(pe, dst_offset, elems, dtype)
                    for pe in range(p)]
                   for h in range(n_hosts)]
    return MultiHostResult(ledger=ledger, mpi_seconds=mpi_seconds,
                           outputs=outputs)


def multihost_alltoall(mh: MultiHostSystem, total_data_size: int,
                       src_offset: int, dst_offset: int,
                       dtype: DataType = INT64,
                       functional: bool = True) -> MultiHostResult:
    """Global AlltoAll: local Gather -> MPI alltoall -> local Scatter.

    Every PE's buffer holds ``total_pes`` chunks in global PE order
    (host-major).  Unlike AllReduce, the full ``(N-1)/N`` share of the
    data crosses the network.
    """
    n_hosts = mh.num_hosts
    p = mh.pes_per_host
    total_global = n_hosts * p
    if total_data_size % total_global:
        raise CollectiveError(
            f"per-PE size {total_data_size}B must split into "
            f"{total_global} global chunks")
    chunk = total_data_size // total_global
    if chunk % dtype.itemsize:
        raise CollectiveError("chunk must hold whole elements")

    ledger = CostLedger()
    gathered: list[np.ndarray] = []
    for host, manager in enumerate(mh.managers):
        plan = plan_gather(manager, "1", total_data_size, src_offset, dtype,
                           mh.config)
        host_ledger, ctx = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
        if functional and ctx is not None:
            gathered.append(ctx.scratch[GATHER_SCRATCH][0])

    # Host-side re-blocking for MPI (charged as local modulation).
    per_host_bytes = p * total_data_size
    ledger.add("host_mod", mh.params.mod_time(per_host_bytes, "local"))
    ledger.add("host_mem", mh.params.host_mem_time(2 * per_host_bytes))
    mpi_seconds = mh.mpi.alltoall_seconds(per_host_bytes)

    received = None
    if functional:
        blocks = []
        for buf in gathered:
            arr = np.asarray(buf, dtype=np.uint8).reshape(
                p, n_hosts, p, chunk)
            blocks.append(np.ascontiguousarray(
                arr.transpose(1, 0, 2, 3)).reshape(-1))
        received = mh.mpi.alltoall(blocks)

    outputs = None
    for host, manager in enumerate(mh.managers):
        payloads = None
        if functional:
            arr = np.asarray(received[host], dtype=np.uint8).reshape(
                n_hosts, p, p, chunk)
            # Local PE q receives chunk [src_host, src_local, q].
            payloads = {0: np.ascontiguousarray(
                arr.transpose(2, 0, 1, 3)).reshape(-1)}
        plan = plan_scatter(manager, "1", total_data_size, dst_offset,
                            dtype, payloads, mh.config)
        host_ledger, _ = plan.run(manager.system, functional=functional)
        if host == 0:
            ledger.merge(host_ledger)
    if functional:
        elems = total_data_size // dtype.itemsize
        outputs = [[mh.systems[h].read_elements(pe, dst_offset, elems, dtype)
                    for pe in range(mh.pes_per_host)]
                   for h in range(mh.num_hosts)]
    return MultiHostResult(ledger=ledger, mpi_seconds=mpi_seconds,
                           outputs=outputs)
