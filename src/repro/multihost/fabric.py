"""Topology-aware inter-host fabric: a link graph with congestion pricing.

The flat :class:`~repro.multihost.MpiSimulator` prices every global
phase as one serialized 10 Gbps pipe.  Real rack-scale deployments are
link *graphs*: hosts hang off leaf switches, leaves share a spine, and
per-link bandwidths differ (the oversubscribed spine is the classic
bottleneck).  :class:`Fabric` models exactly that:

* nodes are hosts ``0..num_hosts-1`` plus optional switch nodes;
* each directed link carries its own bandwidth and latency
  (defaults from :class:`~repro.hw.timing.MachineParams.mpi_gbps` /
  ``mpi_latency_s``, so a fully connected fabric prices one message
  identically to the flat simulator);
* a *round* of concurrent transfers is priced by per-link byte
  accumulation over shortest-path routes -- the busiest link sets the
  round's bandwidth term, the longest used route its latency term.

Global-phase algorithms (:mod:`repro.multihost.algorithms`) emit rounds
of ``(src_host, dst_host, nbytes)`` transfers; summing
:meth:`Fabric.round_seconds` over them prices an algorithm on a
topology, which is what the :class:`~repro.multihost.GlobalTuner`
ranks.  The fabric never moves payload bytes -- functional exchange
stays canonical numpy -- so every topology is bit-identical by
construction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import CollectiveError
from ..hw.timing import GB, MachineParams


@dataclass(frozen=True)
class Link:
    """One directed link of the fabric."""

    src: int
    dst: int
    gbps: float          # GB/s (1e9 bytes per second)
    latency_s: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise CollectiveError(f"link {self.src}->{self.dst} is a loop")
        if self.gbps <= 0:
            raise CollectiveError(
                f"link {self.src}->{self.dst} bandwidth must be positive, "
                f"got {self.gbps}")
        if self.latency_s < 0:
            raise CollectiveError(
                f"link {self.src}->{self.dst} latency must be >= 0, "
                f"got {self.latency_s}")


@dataclass
class Fabric:
    """An inter-host interconnect expressed as a directed link graph.

    Build one with :meth:`fully_connected`, :meth:`ring`, or
    :meth:`leaf_spine` (or hand-assemble links for custom topologies).
    Hosts are nodes ``0..num_hosts-1``; switch nodes use ids at
    ``num_hosts`` and above and never source or sink transfers.
    """

    num_hosts: int
    links: dict[tuple[int, int], Link]
    name: str = "custom"
    #: Hosts per rack for rack-structured topologies (None = flat).
    hosts_per_rack: int | None = None
    _routes: dict[tuple[int, int], tuple[Link, ...]] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise CollectiveError("fabric needs at least one host")
        for key, link in self.links.items():
            if key != (link.src, link.dst):
                raise CollectiveError(
                    f"link table key {key} does not match link "
                    f"{(link.src, link.dst)}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def fully_connected(cls, num_hosts: int,
                        params: MachineParams | None = None, *,
                        gbps: float | None = None,
                        latency_s: float | None = None) -> "Fabric":
        """Every host pair shares a dedicated bidirectional link.

        With default bandwidth/latency this prices a ring round exactly
        like the flat :class:`MpiSimulator`, which keeps the pre-fabric
        Figure 23b numbers reproducible.
        """
        gbps, latency_s = _defaults(params, gbps, latency_s)
        links = {}
        for a in range(num_hosts):
            for b in range(num_hosts):
                if a != b:
                    links[(a, b)] = Link(a, b, gbps, latency_s)
        return cls(num_hosts, links, name=f"fully_connected({num_hosts})")

    @classmethod
    def ring(cls, num_hosts: int, params: MachineParams | None = None, *,
             gbps: float | None = None,
             latency_s: float | None = None) -> "Fabric":
        """Hosts in a physical ring: each host links only to its two
        neighbours, so non-neighbour traffic hops through them."""
        if num_hosts < 2:
            raise CollectiveError("a ring fabric needs at least two hosts")
        gbps, latency_s = _defaults(params, gbps, latency_s)
        links = {}
        for h in range(num_hosts):
            nxt = (h + 1) % num_hosts
            links[(h, nxt)] = Link(h, nxt, gbps, latency_s)
            links[(nxt, h)] = Link(nxt, h, gbps, latency_s)
        return cls(num_hosts, links, name=f"ring({num_hosts})")

    @classmethod
    def leaf_spine(cls, num_hosts: int, racks: int,
                   params: MachineParams | None = None, *,
                   gbps: float | None = None,
                   latency_s: float | None = None,
                   spine_gbps: float | None = None,
                   spine_latency_s: float | None = None) -> "Fabric":
        """A two-tier rack topology: ``racks`` leaf switches, one spine.

        Hosts are numbered rack-major (rack ``r`` owns hosts
        ``r*H .. (r+1)*H - 1`` with ``H = num_hosts // racks``).  Each
        host links to its rack's leaf at ``gbps``; each leaf links to
        the spine at ``spine_gbps`` (default: the same ``gbps``, i.e. a
        ``1:H`` oversubscribed uplink shared by the whole rack -- the
        configuration where rack-aligned algorithms win).
        """
        if racks < 1:
            raise CollectiveError("leaf_spine needs at least one rack")
        if num_hosts % racks:
            raise CollectiveError(
                f"{num_hosts} hosts do not split into {racks} racks")
        gbps, latency_s = _defaults(params, gbps, latency_s)
        if spine_gbps is None:
            spine_gbps = gbps
        if spine_latency_s is None:
            spine_latency_s = latency_s
        per_rack = num_hosts // racks
        spine = num_hosts + racks
        links = {}
        for h in range(num_hosts):
            leaf = num_hosts + h // per_rack
            links[(h, leaf)] = Link(h, leaf, gbps, latency_s)
            links[(leaf, h)] = Link(leaf, h, gbps, latency_s)
        for r in range(racks):
            leaf = num_hosts + r
            links[(leaf, spine)] = Link(leaf, spine, spine_gbps,
                                        spine_latency_s)
            links[(spine, leaf)] = Link(spine, leaf, spine_gbps,
                                        spine_latency_s)
        return cls(num_hosts, links,
                   name=f"leaf_spine({num_hosts},racks={racks})",
                   hosts_per_rack=per_rack)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def racks(self) -> int | None:
        """Rack count for rack-structured topologies (None = flat)."""
        if self.hosts_per_rack is None:
            return None
        return self.num_hosts // self.hosts_per_rack

    @property
    def signature(self) -> tuple:
        """Hashable identity for decision caches: topology name plus
        every link's endpoints, bandwidth, and latency."""
        return (self.name, self.num_hosts, tuple(
            (k, self.links[k].gbps, self.links[k].latency_s)
            for k in sorted(self.links)))

    def route(self, src: int, dst: int) -> tuple[Link, ...]:
        """Shortest link path from ``src`` to ``dst`` (BFS, cached)."""
        if src == dst:
            return ()
        cached = self._routes.get((src, dst))
        if cached is not None:
            return cached
        adjacency: dict[int, list[Link]] = {}
        for link in self.links.values():
            adjacency.setdefault(link.src, []).append(link)
        seen = {src}
        queue: deque[tuple[int, tuple[Link, ...]]] = deque([(src, ())])
        while queue:
            node, path = queue.popleft()
            for link in adjacency.get(node, ()):
                if link.dst in seen:
                    continue
                nxt = path + (link,)
                if link.dst == dst:
                    self._routes[(src, dst)] = nxt
                    return nxt
                seen.add(link.dst)
                queue.append((link.dst, nxt))
        raise CollectiveError(
            f"fabric {self.name} has no route from host {src} to {dst}")

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def round_seconds(self, transfers: Iterable[tuple[int, int, int]]
                      ) -> float:
        """Seconds one synchronized round of concurrent transfers takes.

        Every transfer's bytes accrue to each link on its route; the
        round's bandwidth term is the *busiest* link's ``bytes/gbps``
        (links carry concurrent flows serially, disjoint links run in
        parallel) and its latency term the slowest used route's summed
        link latencies.  An empty round is free.
        """
        link_bytes: dict[tuple[int, int], int] = {}
        worst_latency = 0.0
        for src, dst, nbytes in transfers:
            if nbytes < 0:
                raise CollectiveError(f"negative transfer size {nbytes}")
            if not (0 <= src < self.num_hosts and 0 <= dst < self.num_hosts):
                raise CollectiveError(
                    f"transfer endpoints ({src}, {dst}) outside hosts "
                    f"0..{self.num_hosts - 1}")
            path = self.route(src, dst)
            latency = 0.0
            for link in path:
                key = (link.src, link.dst)
                link_bytes[key] = link_bytes.get(key, 0) + nbytes
                latency += link.latency_s
            worst_latency = max(worst_latency, latency)
        if not link_bytes:
            return 0.0
        bandwidth = max(nbytes / (self.links[key].gbps * GB)
                        for key, nbytes in link_bytes.items())
        return bandwidth + worst_latency

    def program_seconds(self, rounds: Sequence[Sequence[tuple[int, int, int]]]
                        ) -> float:
        """Total seconds of a sequence of synchronized rounds."""
        return sum(self.round_seconds(r) for r in rounds)

    def describe(self) -> str:
        """One-line summary, e.g. ``leaf_spine(8,racks=2): 12 links``."""
        return f"{self.name}: {len(self.links)} links"


def _defaults(params: MachineParams | None, gbps: float | None,
              latency_s: float | None) -> tuple[float, float]:
    params = params or MachineParams()
    if gbps is None:
        gbps = params.mpi_gbps
    if latency_s is None:
        latency_s = params.mpi_latency_s
    if gbps <= 0:
        raise CollectiveError(f"fabric bandwidth must be positive: {gbps}")
    if latency_s < 0:
        raise CollectiveError(f"fabric latency must be >= 0: {latency_s}")
    return gbps, latency_s
