"""Self-check: verify a system's collectives against the golden models.

``verify_collectives`` sweeps primitives, optimization levels, and
dimension selections on a small functional system and compares every
result bit-exactly with :mod:`repro.core.reference`.  Useful as an
installation smoke test (``python -c "from repro.core.validation import
verify_collectives; print(verify_collectives())"``) and as the
integration core reused by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dtypes import INT64, SUM, DataType, ReduceOp
from ..hw.system import DimmSystem
from . import reference as ref
from .api import (
    pidcomm_allgather,
    pidcomm_allreduce,
    pidcomm_alltoall,
    pidcomm_gather,
    pidcomm_reduce,
    pidcomm_reduce_scatter,
)
from .collectives import ABLATION_LADDER, OptConfig
from .groups import slice_groups
from .hypercube import HypercubeManager


@dataclass
class ValidationReport:
    """Outcome of a verification sweep."""

    checks: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [f"{status}: {self.checks} checks, "
                 f"{len(self.failures)} failures"]
        lines.extend(f"  - {f}" for f in self.failures[:10])
        return "\n".join(lines)


def _fill(system: DimmSystem, groups, offset: int, elems: int,
          dtype: DataType, rng: np.random.Generator) -> dict:
    inputs = {}
    for group in groups:
        vectors = []
        for pe in group.pe_ids:
            values = rng.integers(-999, 999, elems).astype(dtype.np_dtype)
            system.write_elements(pe, offset, values, dtype)
            vectors.append(values)
        inputs[group.instance] = vectors
    return inputs


def verify_collectives(shape: tuple[int, ...] = (4, 4, 2),
                       dims_list: tuple[str, ...] = ("100", "010", "110",
                                                     "111"),
                       configs: tuple[OptConfig, ...] = ABLATION_LADDER,
                       dtype: DataType = INT64, op: ReduceOp = SUM,
                       chunk_elems: int = 2, seed: int = 0
                       ) -> ValidationReport:
    """Sweep-verify the collective library on a fresh small system."""
    report = ValidationReport()
    rng = np.random.default_rng(seed)
    for dims in dims_list:
        if len(dims) != len(shape):
            report.failures.append(
                f"dims {dims!r} does not match shape {shape}")
            continue
        for config in configs:
            _verify_one_combo(report, shape, dims, config, dtype, op,
                              chunk_elems, rng)
    return report


def _verify_one_combo(report, shape, dims, config, dtype, op,
                      chunk_elems, rng) -> None:
    # A private small geometry keeps the sweep fast.
    system = DimmSystem.small(mram_bytes=1 << 16)
    manager = HypercubeManager(system, shape=shape)
    groups = slice_groups(manager, dims)
    n = groups[0].size
    elems = n * chunk_elems
    nbytes = elems * dtype.itemsize
    src = system.alloc(nbytes)
    dst = system.alloc(nbytes)
    label = f"{dims}/{config.label}"

    def check(name, fn_result, expect_per_group):
        report.checks += 1
        for group in groups:
            for pe, want in zip(group.pe_ids, expect_per_group(group)):
                got = system.read_elements(pe, dst, len(want), dtype)
                if not np.array_equal(got, want):
                    report.failures.append(f"{name} {label} pe={pe}")
                    return

    inputs = _fill(system, groups, src, elems, dtype, rng)
    pidcomm_alltoall(manager, dims, nbytes, src, dst, dtype, config=config)
    check("alltoall", None,
          lambda g: ref.alltoall(inputs[g.instance]))

    inputs = _fill(system, groups, src, elems, dtype, rng)
    pidcomm_allreduce(manager, dims, nbytes, src, dst, dtype, op,
                      config=config)
    check("allreduce", None,
          lambda g: ref.allreduce(inputs[g.instance], op))

    inputs = _fill(system, groups, src, elems, dtype, rng)
    pidcomm_reduce_scatter(manager, dims, nbytes, src, dst, dtype, op,
                           config=config)
    check("reduce_scatter", None,
          lambda g: ref.reduce_scatter(inputs[g.instance], op))

    # AllGather: per-PE input chunk, output n * chunk at dst.
    in_bytes = chunk_elems * dtype.itemsize
    ag_dst = system.alloc(n * in_bytes)
    inputs = _fill(system, groups, src, chunk_elems, dtype, rng)
    pidcomm_allgather(manager, dims, in_bytes, src, ag_dst, dtype,
                      config=config)
    report.checks += 1
    for group in groups:
        expect = ref.allgather(inputs[group.instance])
        for pe, want in zip(group.pe_ids, expect):
            got = system.read_elements(pe, ag_dst, n * chunk_elems, dtype)
            if not np.array_equal(got, want):
                report.failures.append(f"allgather {label} pe={pe}")
                break

    # Rooted primitives: gather + reduce against the host.
    inputs = _fill(system, groups, src, elems, dtype, rng)
    result = pidcomm_gather(manager, dims, nbytes, src, dtype,
                            config=config)
    report.checks += 1
    for group in groups:
        want = ref.gather(inputs[group.instance])
        got = result.host_outputs[group.instance]
        if not np.array_equal(np.asarray(got).reshape(-1), want):
            report.failures.append(f"gather {label}")
            break

    inputs = _fill(system, groups, src, elems, dtype, rng)
    result = pidcomm_reduce(manager, dims, nbytes, src, dtype, op,
                            config=config)
    report.checks += 1
    for group in groups:
        want = ref.reduce(inputs[group.instance], op)
        got = np.asarray(result.host_outputs[group.instance]).reshape(-1)
        if not np.array_equal(got, want):
            report.failures.append(f"reduce {label}")
            break
