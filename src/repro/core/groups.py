"""Cube slicing: dimension bitmaps -> multi-instance communication groups.

Selecting a set of hypercube dimensions partitions the nodes into
*communication groups*: nodes sharing all non-selected coordinates form
one group, ordered lexicographically over the selected coordinates
(fastest dimension first).  One collective invocation runs one instance
per group, all together (paper section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from math import prod
from typing import Sequence

from ..errors import HypercubeError
from .hypercube import HypercubeManager, parse_dim_bitmap


@dataclass(frozen=True)
class CommGroup:
    """One instance of a multi-instance collective.

    Attributes:
        instance: Instance index (order of the non-selected coordinates).
        pe_ids: Member physical PEs, in group-rank order (the rank of a
            PE inside its group is its position here).
    """

    instance: int
    pe_ids: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.pe_ids)

    def rank_of(self, pe_id: int) -> int:
        """Group rank of a member PE."""
        try:
            return self.pe_ids.index(pe_id)
        except ValueError:
            raise HypercubeError(
                f"PE {pe_id} is not in communication group {self.instance}"
            ) from None


def resolve_dims(manager: HypercubeManager,
                 dims: str | Sequence[int]) -> tuple[int, ...]:
    """Accept either a bitmap string or explicit dimension indices."""
    if isinstance(dims, str):
        return parse_dim_bitmap(dims, manager.ndim)
    indices = tuple(sorted(set(int(d) for d in dims)))
    if not indices:
        raise HypercubeError("no communication dimensions selected")
    for d in indices:
        if not 0 <= d < manager.ndim:
            raise HypercubeError(
                f"dimension index {d} outside 0..{manager.ndim - 1}")
    return indices


def slice_groups(manager: HypercubeManager,
                 dims: str | Sequence[int]) -> list[CommGroup]:
    """Form all communication groups for the selected dimensions.

    Returns groups ordered by instance index; every hypercube node is a
    member of exactly one group.
    """
    selected = resolve_dims(manager, dims)
    shape = manager.shape
    fixed = [d for d in range(shape.ndim) if d not in selected]

    # Iterate non-selected coordinates (instances), slowest dim last to
    # keep instance ids in natural node order.
    fixed_ranges = [range(shape.dims[d]) for d in fixed]
    sel_ranges = [range(shape.dims[d]) for d in selected]

    groups: list[CommGroup] = []
    for instance, fixed_coords in enumerate(_lex_fastest_first(fixed_ranges)):
        members = []
        for sel_coords in _lex_fastest_first(sel_ranges):
            coords = [0] * shape.ndim
            for d, c in zip(fixed, fixed_coords):
                coords[d] = c
            for d, c in zip(selected, sel_coords):
                coords[d] = c
            members.append(manager.pe_of_coords(coords))
        groups.append(CommGroup(instance=instance, pe_ids=tuple(members)))
    return groups


def member_pes(manager: HypercubeManager,
               dims: str | Sequence[int]) -> tuple[int, ...]:
    """All PEs participating in a collective over ``dims``, sorted.

    Every hypercube node joins exactly one instance, so this is simply
    the manager's full membership -- but routed through the slicing so
    the reliability layer's snapshots stay correct if partial slicing
    is ever introduced.
    """
    seen: set[int] = set()
    for group in slice_groups(manager, dims):
        seen.update(group.pe_ids)
    return tuple(sorted(seen))


def group_size(manager: HypercubeManager, dims: str | Sequence[int]) -> int:
    """Size of each communication group for the selected dimensions."""
    selected = resolve_dims(manager, dims)
    return prod(manager.shape.dims[d] for d in selected)


def _lex_fastest_first(ranges: list[range]):
    """Iterate a multi-range with the *first* range varying fastest.

    itertools.product varies the last range fastest, so reverse twice.
    """
    if not ranges:
        yield ()
        return
    for combo in iter_product(*reversed(ranges)):
        yield tuple(reversed(combo))
