"""The user-facing PID-Comm API (Figure 10 of the paper).

Eight ``pidcomm_*`` functions mirror the C API::

    pidcomm_reduce_scatter(manager, "010", total_data_size,
                           src_offset, dst_offset, "int32", "sum")

Each call compiles a plan, prices it, optionally executes it against
the simulated DIMMs, and returns a :class:`CommResult` carrying the
modelled cost ledger, the plan, and (for rooted primitives) the host
side outputs.

``functional=False`` skips the data movement: use it for paper-scale
analytic runs where only the cost matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..dtypes import DataType, ReduceOp, dtype_by_name, op_by_name
from ..errors import CollectiveError
from ..hw.timing import CostLedger
from .collectives import (
    FULL,
    GATHER_SCRATCH,
    REDUCE_SCRATCH,
    CommPlan,
    OptConfig,
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)
from .hypercube import HypercubeManager


@dataclass
class CommResult:
    """Outcome of one collective invocation."""

    plan: CommPlan
    ledger: CostLedger
    #: instance -> host output array (rooted primitives only).
    host_outputs: dict[int, np.ndarray] | None = None

    @property
    def seconds(self) -> float:
        """Modelled execution time."""
        return self.ledger.total


def _as_dtype(data_type: DataType | str) -> DataType:
    if isinstance(data_type, DataType):
        return data_type
    return dtype_by_name(data_type)


def _as_op(reduction: ReduceOp | str) -> ReduceOp:
    if isinstance(reduction, ReduceOp):
        return reduction
    return op_by_name(reduction)


def _finish(plan: CommPlan, manager: HypercubeManager, functional: bool,
            scratch_key: str | None = None) -> CommResult:
    ledger, ctx = plan.run(manager.system, functional=functional)
    host_outputs = None
    if ctx is not None and scratch_key is not None:
        host_outputs = ctx.scratch.get(scratch_key)
    return CommResult(plan=plan, ledger=ledger, host_outputs=host_outputs)


def pidcomm_alltoall(manager: HypercubeManager,
                     comm_dimensions: str | Sequence[int],
                     total_data_size: int, src_offset: int, dst_offset: int,
                     data_type: DataType | str = "int64",
                     config: OptConfig = FULL,
                     functional: bool = True) -> CommResult:
    """AlltoAll across the cube slices selected by ``comm_dimensions``."""
    plan = plan_alltoall(manager, comm_dimensions, total_data_size,
                         src_offset, dst_offset, _as_dtype(data_type), config)
    return _finish(plan, manager, functional)


def pidcomm_allgather(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, src_offset: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """AllGather: every group member ends with all members' chunks."""
    plan = plan_allgather(manager, comm_dimensions, total_data_size,
                          src_offset, dst_offset, _as_dtype(data_type),
                          config)
    return _finish(plan, manager, functional)


def pidcomm_reduce_scatter(manager: HypercubeManager,
                           comm_dimensions: str | Sequence[int],
                           total_data_size: int, src_offset: int,
                           dst_offset: int,
                           data_type: DataType | str = "int64",
                           reduction_type: ReduceOp | str = "sum",
                           config: OptConfig = FULL,
                           functional: bool = True) -> CommResult:
    """ReduceScatter (consumes the source buffer, like the PIM kernel)."""
    plan = plan_reduce_scatter(manager, comm_dimensions, total_data_size,
                               src_offset, dst_offset, _as_dtype(data_type),
                               _as_op(reduction_type), config)
    return _finish(plan, manager, functional)


def pidcomm_allreduce(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, src_offset: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      reduction_type: ReduceOp | str = "sum",
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """AllReduce as a fused ReduceScatter + AllGather."""
    plan = plan_allreduce(manager, comm_dimensions, total_data_size,
                          src_offset, dst_offset, _as_dtype(data_type),
                          _as_op(reduction_type), config)
    return _finish(plan, manager, functional)


def pidcomm_gather(manager: HypercubeManager,
                   comm_dimensions: str | Sequence[int],
                   total_data_size: int, src_offset: int,
                   data_type: DataType | str = "int64",
                   config: OptConfig = FULL,
                   functional: bool = True) -> CommResult:
    """Gather to the host; results in ``result.host_outputs``.

    Each instance's output is the rank-order concatenation of member
    chunks, returned as a typed numpy array.
    """
    dtype = _as_dtype(data_type)
    plan = plan_gather(manager, comm_dimensions, total_data_size, src_offset,
                       dtype, config)
    result = _finish(plan, manager, functional, scratch_key=GATHER_SCRATCH)
    if result.host_outputs is not None:
        result.host_outputs = {
            inst: buf.view(dtype.np_dtype)
            for inst, buf in result.host_outputs.items()}
    return result


def pidcomm_scatter(manager: HypercubeManager,
                    comm_dimensions: str | Sequence[int],
                    total_data_size: int, dst_offset: int,
                    data_type: DataType | str = "int64",
                    payloads: Mapping[int, np.ndarray] | None = None,
                    config: OptConfig = FULL,
                    functional: bool = True) -> CommResult:
    """Scatter host chunks to the PEs.

    ``payloads[instance]`` holds the instance's concatenated chunks
    (``group_size * total_data_size`` bytes worth of elements); it may
    be omitted for analytic (``functional=False``) runs.
    """
    if functional and payloads is None:
        raise CollectiveError("functional scatter needs payloads")
    plan = plan_scatter(manager, comm_dimensions, total_data_size,
                        dst_offset, _as_dtype(data_type), payloads, config)
    return _finish(plan, manager, functional)


def pidcomm_reduce(manager: HypercubeManager,
                   comm_dimensions: str | Sequence[int],
                   total_data_size: int, src_offset: int,
                   data_type: DataType | str = "int64",
                   reduction_type: ReduceOp | str = "sum",
                   config: OptConfig = FULL,
                   functional: bool = True) -> CommResult:
    """Reduce to the host; results in ``result.host_outputs``."""
    dtype = _as_dtype(data_type)
    plan = plan_reduce(manager, comm_dimensions, total_data_size, src_offset,
                       dtype, _as_op(reduction_type), config)
    result = _finish(plan, manager, functional, scratch_key=REDUCE_SCRATCH)
    if result.host_outputs is not None:
        result.host_outputs = {
            inst: _reduced_vector(buf, dtype)
            for inst, buf in result.host_outputs.items()}
    return result


def _reduced_vector(buf: np.ndarray, dtype: DataType) -> np.ndarray:
    """Assemble a reduce result: lane-major rows -> one typed vector."""
    arr = np.asarray(buf)
    if arr.ndim == 2:  # optimized path keeps the (lanes, elems) matrix
        return np.ascontiguousarray(arr).reshape(-1)
    return arr.view(dtype.np_dtype)  # conventional path stores raw bytes


def pidcomm_broadcast(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      payloads: Mapping[int, np.ndarray] | None = None,
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """Broadcast per-instance host buffers to every member PE."""
    if functional and payloads is None:
        raise CollectiveError("functional broadcast needs payloads")
    plan = plan_broadcast(manager, comm_dimensions, total_data_size,
                          dst_offset, _as_dtype(data_type), payloads, config)
    return _finish(plan, manager, functional)


ALL_PRIMITIVES = (
    "alltoall", "reduce_scatter", "allgather", "allreduce",
    "scatter", "gather", "reduce", "broadcast",
)
