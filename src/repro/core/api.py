"""The legacy user-facing PID-Comm API (Figure 10 of the paper).

Eight ``pidcomm_*`` functions mirror the C API::

    pidcomm_reduce_scatter(manager, "010", total_data_size,
                           src_offset, dst_offset, "int32", "sum")

This is the paper-fidelity surface: the signatures follow Figure 10
positionally, one call per collective.  It is **deprecated** (kept
working for paper fidelity; the first call per process emits a
:class:`DeprecationWarning`).  New code should use the session API,
:class:`repro.engine.Communicator`, which exposes the same eight
primitives with keyword-only buffer arguments plus a plan cache,
batched submission, and per-call instrumentation -- or, for many
concurrent callers, a :class:`repro.serving.CollectiveServer` whose
per-tenant ``Session.submit()`` adds admission control and fair-share
scheduling on top::

    comm = Communicator(manager)
    result = comm.reduce_scatter("010", total_data_size,
                                 src_offset=src, dst_offset=dst,
                                 data_type="int32", reduction_type="sum")

The shims below delegate to one shared, cached per-manager session
(:func:`~repro.engine.communicator.shared_communicator`), so even
legacy call sites get steady-state plan caching for free instead of
re-planning per call.  Each call returns a :class:`CommResult` carrying
the modelled cost ledger, the plan, and (for rooted primitives) the
host-side outputs; ``functional=False`` skips the data movement for
paper-scale analytic runs where only the cost matters.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Sequence

import numpy as np

from ..dtypes import DataType, ReduceOp
from ..engine.communicator import shared_communicator
from ..engine.result import CommResult, reduced_vector
from .collectives import FULL, OptConfig
from .hypercube import HypercubeManager

#: Backwards-compatible alias (the helper moved to ``repro.engine``).
_reduced_vector = reduced_vector

#: Set after the first shim call; the deprecation warns once per
#: process (legacy suites loop these thousands of times).
_legacy_warned = False


def _warn_legacy(name: str) -> None:
    """Emit the once-per-process shim deprecation warning."""
    global _legacy_warned
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        f"{name}() and the module-level pidcomm_* shims are deprecated; "
        "create a Communicator(manager, SessionConfig(...)) and call its "
        "methods, or serve concurrent tenants through "
        "repro.serving.CollectiveServer and Session.submit() "
        "(see docs/serving.md)",
        DeprecationWarning, stacklevel=3)


def pidcomm_alltoall(manager: HypercubeManager,
                     comm_dimensions: str | Sequence[int],
                     total_data_size: int, src_offset: int, dst_offset: int,
                     data_type: DataType | str = "int64",
                     config: OptConfig = FULL,
                     functional: bool = True) -> CommResult:
    """AlltoAll across the cube slices selected by ``comm_dimensions``."""
    _warn_legacy("pidcomm_alltoall")
    return shared_communicator(manager).alltoall(
        comm_dimensions, total_data_size, src_offset=src_offset,
        dst_offset=dst_offset, data_type=data_type, config=config,
        functional=functional)


def pidcomm_allgather(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, src_offset: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """AllGather: every group member ends with all members' chunks."""
    _warn_legacy("pidcomm_allgather")
    return shared_communicator(manager).allgather(
        comm_dimensions, total_data_size, src_offset=src_offset,
        dst_offset=dst_offset, data_type=data_type, config=config,
        functional=functional)


def pidcomm_reduce_scatter(manager: HypercubeManager,
                           comm_dimensions: str | Sequence[int],
                           total_data_size: int, src_offset: int,
                           dst_offset: int,
                           data_type: DataType | str = "int64",
                           reduction_type: ReduceOp | str = "sum",
                           config: OptConfig = FULL,
                           functional: bool = True) -> CommResult:
    """ReduceScatter (consumes the source buffer, like the PIM kernel)."""
    _warn_legacy("pidcomm_reduce_scatter")
    return shared_communicator(manager).reduce_scatter(
        comm_dimensions, total_data_size, src_offset=src_offset,
        dst_offset=dst_offset, data_type=data_type,
        reduction_type=reduction_type, config=config, functional=functional)


def pidcomm_allreduce(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, src_offset: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      reduction_type: ReduceOp | str = "sum",
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """AllReduce as a fused ReduceScatter + AllGather."""
    _warn_legacy("pidcomm_allreduce")
    return shared_communicator(manager).allreduce(
        comm_dimensions, total_data_size, src_offset=src_offset,
        dst_offset=dst_offset, data_type=data_type,
        reduction_type=reduction_type, config=config, functional=functional)


def pidcomm_gather(manager: HypercubeManager,
                   comm_dimensions: str | Sequence[int],
                   total_data_size: int, src_offset: int,
                   data_type: DataType | str = "int64",
                   config: OptConfig = FULL,
                   functional: bool = True) -> CommResult:
    """Gather to the host; results in ``result.host_outputs``.

    Each instance's output is the rank-order concatenation of member
    chunks, returned as a typed numpy array.
    """
    _warn_legacy("pidcomm_gather")
    return shared_communicator(manager).gather(
        comm_dimensions, total_data_size, src_offset=src_offset,
        data_type=data_type, config=config, functional=functional)


def pidcomm_scatter(manager: HypercubeManager,
                    comm_dimensions: str | Sequence[int],
                    total_data_size: int, dst_offset: int,
                    data_type: DataType | str = "int64",
                    payloads: Mapping[int, np.ndarray] | None = None,
                    config: OptConfig = FULL,
                    functional: bool = True) -> CommResult:
    """Scatter host chunks to the PEs.

    ``payloads[instance]`` holds the instance's concatenated chunks
    (``group_size * total_data_size`` bytes worth of elements); it may
    be omitted for analytic (``functional=False``) runs.
    """
    _warn_legacy("pidcomm_scatter")
    return shared_communicator(manager).scatter(
        comm_dimensions, total_data_size, dst_offset=dst_offset,
        data_type=data_type, payloads=payloads, config=config,
        functional=functional)


def pidcomm_reduce(manager: HypercubeManager,
                   comm_dimensions: str | Sequence[int],
                   total_data_size: int, src_offset: int,
                   data_type: DataType | str = "int64",
                   reduction_type: ReduceOp | str = "sum",
                   config: OptConfig = FULL,
                   functional: bool = True) -> CommResult:
    """Reduce to the host; results in ``result.host_outputs``."""
    _warn_legacy("pidcomm_reduce")
    return shared_communicator(manager).reduce(
        comm_dimensions, total_data_size, src_offset=src_offset,
        data_type=data_type, reduction_type=reduction_type, config=config,
        functional=functional)


def pidcomm_broadcast(manager: HypercubeManager,
                      comm_dimensions: str | Sequence[int],
                      total_data_size: int, dst_offset: int,
                      data_type: DataType | str = "int64",
                      payloads: Mapping[int, np.ndarray] | None = None,
                      config: OptConfig = FULL,
                      functional: bool = True) -> CommResult:
    """Broadcast per-instance host buffers to every member PE."""
    _warn_legacy("pidcomm_broadcast")
    return shared_communicator(manager).broadcast(
        comm_dimensions, total_data_size, dst_offset=dst_offset,
        data_type=data_type, payloads=payloads, config=config,
        functional=functional)


ALL_PRIMITIVES = (
    "alltoall", "reduce_scatter", "allgather", "allreduce",
    "scatter", "gather", "reduce", "broadcast",
)
