"""The virtual hypercube abstraction (paper section IV).

Users describe the PEs they use as an N-dimensional hypercube whose
node count equals the PE count.  Every dimension length must be a power
of two except the last one (the only non-power-of-two level of the DRAM
hierarchy is the channel count, which the mapping places last).

Mapping (section IV-C): hypercube nodes are filled with *entangled
groups* in DRAM-hierarchy order -- chip (fastest), then bank, then
rank, then channel.  Dimension 0 of the shape varies fastest, so low
dimensions land inside entangled groups and any cube slice spans whole
entangled groups whenever its size allows, guaranteeing full burst
bandwidth no matter which dimensions a user communicates over.

A *dimension bitmap* such as ``"010"`` selects the dimensions taking
part in one multi-instance communication: character ``i`` corresponds
to shape dimension ``i`` (``"010"`` = the y axis of an (x, y, z) cube,
as in Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from math import prod
from typing import Sequence

from ..errors import HypercubeError
from ..hw.system import DimmSystem

_DIM_LETTERS = "xyzuvw"


def _is_pow2(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class HypercubeShape:
    """Validated hypercube shape (dimension 0 = x = fastest-varying)."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise HypercubeError("hypercube needs at least one dimension")
        for i, length in enumerate(self.dims):
            if not isinstance(length, int) or length < 1:
                raise HypercubeError(
                    f"dimension {i} must be a positive int, got {length!r}")
            if i != len(self.dims) - 1 and not _is_pow2(length):
                raise HypercubeError(
                    f"dimension {i} length {length} must be a power of two "
                    f"(only the last dimension may be arbitrary)")

    @property
    def num_nodes(self) -> int:
        return prod(self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def dim_name(self, index: int) -> str:
        """Conventional letter for a dimension (x, y, z, ...)."""
        if index < len(_DIM_LETTERS):
            return _DIM_LETTERS[index]
        return f"d{index}"

    def node_index(self, coords: Sequence[int]) -> int:
        """Linear node index of hypercube coordinates (dim 0 fastest)."""
        if len(coords) != self.ndim:
            raise HypercubeError(
                f"expected {self.ndim} coordinates, got {len(coords)}")
        index = 0
        stride = 1
        for coord, length in zip(coords, self.dims):
            if not 0 <= coord < length:
                raise HypercubeError(
                    f"coordinate {coord} outside dimension of length {length}")
            index += coord * stride
            stride *= length
        return index

    def node_coords(self, index: int) -> tuple[int, ...]:
        """Hypercube coordinates of a linear node index."""
        if not 0 <= index < self.num_nodes:
            raise HypercubeError(
                f"node index {index} outside [0, {self.num_nodes})")
        coords = []
        for length in self.dims:
            coords.append(index % length)
            index //= length
        return tuple(coords)

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.dims)


def parse_dim_bitmap(bitmap: str, ndim: int) -> tuple[int, ...]:
    """Parse a ``comm_dimensions`` bitmap into selected dimension indices.

    ``bitmap[i] == '1'`` selects shape dimension ``i`` (so ``"010"`` on
    an (x, y, z) cube selects y).  At least one dimension must be set.
    """
    if len(bitmap) != ndim:
        raise HypercubeError(
            f"bitmap {bitmap!r} has {len(bitmap)} characters for a "
            f"{ndim}-dimensional hypercube")
    selected = []
    for i, char in enumerate(bitmap):
        if char == "1":
            selected.append(i)
        elif char != "0":
            raise HypercubeError(
                f"bitmap {bitmap!r} must contain only '0'/'1'")
    if not selected:
        raise HypercubeError(f"bitmap {bitmap!r} selects no dimension")
    return tuple(selected)


class HypercubeManager:
    """Maps a user-defined virtual hypercube onto physical PEs.

    Args:
        system: The DIMM system whose PEs are being abstracted.
        shape: Dimension lengths, fastest-varying first; their product
            must not exceed the system's PE count.  All lengths except
            the last must be powers of two.
        base_pe: First physical PE to use (PEs are assigned in linear
            id order, i.e. chip -> bank -> rank -> channel).
        pe_map: Explicit node -> physical-PE table overriding the
            contiguous identity mapping.  Used by degraded (remapped)
            cubes after a permanent rank failure; ``base_pe`` is
            ignored when given.

    The identity ``virtual node i  <->  physical PE (base_pe + i)``
    realizes the paper's mapping because both orders are "fastest at
    the bottom of the hierarchy": hypercube dim 0 varies fastest and PE
    ids vary fastest over the chips of an entangled group.
    """

    def __init__(self, system: DimmSystem, shape: Sequence[int],
                 base_pe: int = 0,
                 pe_map: Sequence[int] | None = None) -> None:
        self.system = system
        self.shape = HypercubeShape(tuple(shape))
        if pe_map is not None:
            pes = tuple(int(pe) for pe in pe_map)
            if len(pes) != self.shape.num_nodes:
                raise HypercubeError(
                    f"pe_map has {len(pes)} entries for a "
                    f"{self.shape.num_nodes}-node hypercube")
            if len(set(pes)) != len(pes):
                raise HypercubeError("pe_map entries must be distinct")
            for pe in pes:
                system.geometry._check_pe(pe)
            self._pe_map: tuple[int, ...] | None = pes
            self._node_of_pe = {pe: node for node, pe in enumerate(pes)}
            self.base_pe = min(pes)
            return
        self._pe_map = None
        self._node_of_pe = None
        if base_pe < 0:
            raise HypercubeError(f"base_pe must be >= 0, got {base_pe}")
        if base_pe % system.geometry.chips_per_rank:
            raise HypercubeError(
                "base_pe must be entangled-group aligned "
                f"(multiple of {system.geometry.chips_per_rank}), got {base_pe}")
        if base_pe + self.shape.num_nodes > system.num_pes:
            raise HypercubeError(
                f"hypercube {self.shape} with base_pe={base_pe} needs "
                f"{base_pe + self.shape.num_nodes} PEs but the system has "
                f"{system.num_pes}")
        self.base_pe = base_pe

    @property
    def num_nodes(self) -> int:
        return self.shape.num_nodes

    @property
    def ndim(self) -> int:
        return self.shape.ndim

    # ------------------------------------------------------------------
    # Virtual <-> physical
    # ------------------------------------------------------------------
    def pe_of_node(self, node_index: int) -> int:
        """Physical PE id of a virtual node."""
        if not 0 <= node_index < self.num_nodes:
            raise HypercubeError(
                f"node {node_index} outside [0, {self.num_nodes})")
        if self._pe_map is not None:
            return self._pe_map[node_index]
        return self.base_pe + node_index

    def node_of_pe(self, pe_id: int) -> int:
        """Virtual node index of a physical PE."""
        if self._pe_map is not None:
            node = self._node_of_pe.get(pe_id)
            if node is None:
                raise HypercubeError(
                    f"PE {pe_id} is not part of this hypercube")
            return node
        node = pe_id - self.base_pe
        if not 0 <= node < self.num_nodes:
            raise HypercubeError(
                f"PE {pe_id} is not part of this hypercube")
        return node

    def pe_of_coords(self, coords: Sequence[int]) -> int:
        """Physical PE id of hypercube coordinates."""
        return self.pe_of_node(self.shape.node_index(coords))

    def coords_of_pe(self, pe_id: int) -> tuple[int, ...]:
        """Hypercube coordinates of a physical PE."""
        return self.shape.node_coords(self.node_of_pe(pe_id))

    @cached_property
    def all_pes(self) -> tuple[int, ...]:
        """All member PEs in virtual-node order."""
        if self._pe_map is not None:
            return self._pe_map
        return tuple(range(self.base_pe, self.base_pe + self.num_nodes))

    # ------------------------------------------------------------------
    # Reliability: identity and degradation
    # ------------------------------------------------------------------
    def topology_signature(self) -> tuple:
        """Hashable identity of the virtual -> physical mapping.

        Two managers share a signature iff every node lands on the same
        physical PE, so plan-cache keys carrying it can never alias a
        healthy cube's plans with a degraded (remapped) cube's plans.
        """
        if self._pe_map is not None:
            return (self.shape.dims, self._pe_map)
        return (self.shape.dims, self.base_pe)

    def without_pes(self, dead_pes: Sequence[int]) -> "HypercubeManager":
        """Remap onto the surviving PEs after a permanent failure.

        The shape shrinks by repeatedly halving the largest halvable
        dimension until the node count fits the survivors (keeping the
        power-of-two constraints intact), and the surviving PEs fill
        the shrunk cube in id order -- survivors of whole live ranks
        stay entangled-group aligned, so burst bandwidth is preserved.
        Raises :class:`HypercubeError` when no dimension can shrink far
        enough (e.g. every rank is dead).
        """
        dead = set(int(pe) for pe in dead_pes)
        survivors = [pe for pe in self.all_pes if pe not in dead]
        if not survivors:
            raise HypercubeError("no surviving PEs to remap onto")
        dims = list(self.shape.dims)
        while prod(dims) > len(survivors):
            halvable = [i for i, d in enumerate(dims) if d > 1 and d % 2 == 0]
            if not halvable:
                raise HypercubeError(
                    f"cannot shrink {self.shape} onto {len(survivors)} "
                    f"surviving PEs")
            widest = max(halvable, key=lambda i: dims[i])
            dims[widest] //= 2
        return HypercubeManager(self.system, dims,
                                pe_map=tuple(survivors[: prod(dims)]))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable mapping summary."""
        geom = self.system.geometry
        if self._pe_map is not None:
            return (f"hypercube {self.shape} remapped onto "
                    f"{self.num_nodes} PEs of {geom.describe()}")
        return (f"hypercube {self.shape} on PEs "
                f"[{self.base_pe}, {self.base_pe + self.num_nodes}) of "
                f"{geom.describe()}")

    def entangled_group_alignment(self, dim_indices: Sequence[int]) -> float:
        """Lane utilization of the groups formed over ``dim_indices``.

        1.0 means every communication group spans whole entangled
        groups (or several instances pack to fill them); lower values
        mean wasted burst lanes.  With this manager's mapping this is
        always 1.0 whenever the total PE count covers whole entangled
        groups, which is what the hypercube constraints guarantee.
        """
        from .groups import slice_groups  # local import to avoid a cycle
        groups = slice_groups(self, dim_indices)
        geom = self.system.geometry
        # Instances pack: lanes of an EG are useful if *any* group uses
        # them, because all instances run in the same burst sweep.
        touched: dict[int, set[int]] = {}
        for group in groups:
            for pe in group.pe_ids:
                touched.setdefault(geom.eg_of_pe(pe), set()).add(
                    geom.lane_of_pe(pe))
        lanes = geom.chips_per_rank
        useful = sum(len(s) for s in touched.values())
        return useful / (lanes * len(touched))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HypercubeManager({self.describe()})"
