"""Golden (pure numpy) semantics of the eight collectives.

These functions define *what* each primitive must compute, independent
of any hardware model.  Every functional execution of the library is
verified bit-exactly against them in the test suite.

Conventions (matching the paper / MPI):

* Node order is the communication-group rank order.
* ``alltoall``/``reduce_scatter`` inputs are per-node vectors of
  ``N * c`` elements interpreted as ``N`` chunks of ``c``.
* ``allgather`` inputs are per-node vectors of ``c`` elements; outputs
  concatenate all nodes' chunks in rank order.
* Rooted primitives use the host as the root (the paper fixes this).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..dtypes import ReduceOp
from ..errors import CollectiveError


def _stack(inputs: Sequence[np.ndarray]) -> np.ndarray:
    if not inputs:
        raise CollectiveError("collective over zero nodes")
    first = np.asarray(inputs[0])
    rows = [np.asarray(x) for x in inputs]
    for row in rows:
        if row.shape != first.shape or row.dtype != first.dtype:
            raise CollectiveError(
                "all nodes must contribute equal-shape, equal-dtype vectors")
    return np.stack(rows, axis=0)


def alltoall(inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """out[i] = concat_j inputs[j].chunk(i)."""
    data = _stack(inputs)
    n = data.shape[0]
    if data.shape[1] % n:
        raise CollectiveError(
            f"alltoall needs per-node length divisible by {n} nodes")
    chunks = data.reshape(n, n, -1)          # [src, dest_chunk, elems]
    out = chunks.transpose(1, 0, 2)           # [dest, src, elems]
    return [out[i].reshape(-1).copy() for i in range(n)]


def allgather(inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Every node receives concat_j inputs[j]."""
    data = _stack(inputs)
    flat = data.reshape(-1).copy()
    return [flat.copy() for _ in range(data.shape[0])]


def reduce_scatter(inputs: Sequence[np.ndarray], op: ReduceOp) -> list[np.ndarray]:
    """out[i] = reduce_j inputs[j].chunk(i)."""
    data = _stack(inputs)
    n = data.shape[0]
    if data.shape[1] % n:
        raise CollectiveError(
            f"reduce_scatter needs per-node length divisible by {n} nodes")
    chunks = data.reshape(n, n, -1)          # [src, chunk, elems]
    reduced = op.reduce_axis(chunks, axis=0)  # [chunk, elems]
    return [reduced[i].copy() for i in range(n)]


def allreduce(inputs: Sequence[np.ndarray], op: ReduceOp) -> list[np.ndarray]:
    """Every node receives reduce_j inputs[j]."""
    data = _stack(inputs)
    reduced = op.reduce_axis(data, axis=0)
    return [reduced.copy() for _ in range(data.shape[0])]


def scatter(root_data: np.ndarray, num_nodes: int) -> list[np.ndarray]:
    """Node i receives chunk i of the root's buffer."""
    data = np.asarray(root_data)
    if num_nodes < 1:
        raise CollectiveError("scatter needs at least one node")
    if data.shape[0] % num_nodes:
        raise CollectiveError(
            f"scatter root length {data.shape[0]} not divisible by "
            f"{num_nodes} nodes")
    return [chunk.copy() for chunk in data.reshape(num_nodes, -1)]


def gather(inputs: Sequence[np.ndarray]) -> np.ndarray:
    """Root receives concat_j inputs[j]."""
    return _stack(inputs).reshape(-1).copy()


def reduce(inputs: Sequence[np.ndarray], op: ReduceOp) -> np.ndarray:
    """Root receives reduce_j inputs[j]."""
    return op.reduce_axis(_stack(inputs), axis=0).copy()


def broadcast(root_data: np.ndarray, num_nodes: int) -> list[np.ndarray]:
    """Every node receives a copy of the root's buffer."""
    if num_nodes < 1:
        raise CollectiveError("broadcast needs at least one node")
    data = np.asarray(root_data)
    return [data.copy() for _ in range(num_nodes)]
