"""PID-Comm core: the virtual hypercube model and the collective library."""

from .hypercube import HypercubeManager
from .groups import CommGroup, slice_groups

__all__ = ["HypercubeManager", "CommGroup", "slice_groups"]
