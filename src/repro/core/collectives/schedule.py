"""The execution schedule: one frozen value for the five engine knobs.

PRs 3-7 grew five orthogonal performance knobs -- execution backend,
execution mode, streaming tile size, band parallelism, optimization
rung -- plus the compiler's fusion policy, all chosen per session and
by hand.  :class:`Schedule` makes the combination an explicit,
first-class value (the way HeteroCL separates an algorithm from its
schedule): frozen, validated at construction, attached to the
:class:`~repro.core.collectives.program.CommProgram` it compiled, and
rewritten through composable transforms::

    s = Schedule.default().with_backend("vectorized").with_tile(8 << 20)
    program = plan.compile(system, schedule=s.fused(2))
    s.fused(2).check(program)   # asserts the fused structure

Every schedule replays bit-identical to the scalar interpreted oracle
-- a schedule only chooses *how* the same collective executes, never
what it computes (``tests/test_schedule.py`` sweeps all eight
primitives per backend against the oracle).  The cost-model-guided
search over schedules lives in :mod:`repro.analysis.autotune`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ...errors import CollectiveError
from .config import FULL, OptConfig

#: Backends a schedule may select.
SCHEDULE_BACKENDS = ("scalar", "vectorized")
#: Execution modes a schedule may select.  Unlike the session-level
#: ``execution="auto"``, a schedule is always fully resolved.
SCHEDULE_EXECUTIONS = ("interpreted", "compiled")
#: Global-phase algorithms a hierarchical (multi-host) schedule may
#: select for the inter-host exchange: the standard ring, recursive
#: halving/doubling (power-of-two host counts), and the generalized
#: multi-phase exchange of Kolmakov & Zhang whose phase factors can be
#: aligned to a rack topology.  ``None`` on a schedule means
#: single-host (no global phase) or "let the global tuner decide".
GLOBAL_ALGORITHMS = ("ring", "halving_doubling", "exchange")


@dataclass(frozen=True)
class Schedule:
    """A fully resolved execution strategy for one collective shape.

    Args:
        backend: ``"scalar"`` or ``"vectorized"`` system backend.
        execution: ``"interpreted"`` (step-by-step oracle) or
            ``"compiled"`` (program replay).  Never ``"auto"`` -- a
            schedule is a decision, not a policy.
        tile_bytes: Streaming scratch budget (None = untiled).  Only
            legal with ``execution="compiled"``: streaming replays
            compiled row bands.
        fusion_depth: Maximum number of source ops one fused program op
            may absorb (1 = no fusion, None = unlimited greedy fusion).
        band_parallel: Whether streamed row bands may fan out across
            the session's worker pool (wall-clock only; results are
            bit-identical either way).
        elide: Whether replay fingerprint-scans movement sources and
            skips the transfer of all-zero / duplicate output rows
            (content-aware elision; results stay bit-identical at any
            elision rate).  Only legal with ``execution="compiled"``:
            the interpreted path is the oracle and never elides.
        rung: The :class:`OptConfig` optimization rung the plan is
            built at.
        global_algorithm: For hierarchical (multi-host) runs, the
            inter-host algorithm the global phase executes
            (:data:`GLOBAL_ALGORITHMS`).  ``None`` for single-host
            schedules.  Like every other knob it chooses *how* the
            collective runs, never what it computes: all global
            algorithms are bit-identical.
    """

    backend: str = "scalar"
    execution: str = "compiled"
    tile_bytes: int | None = None
    fusion_depth: int | None = None
    band_parallel: bool = False
    elide: bool = False
    rung: OptConfig = FULL
    global_algorithm: str | None = None

    def __post_init__(self) -> None:
        """Reject invalid knob combinations at construction."""
        if self.backend not in SCHEDULE_BACKENDS:
            raise CollectiveError(
                f"unknown schedule backend {self.backend!r}; "
                f"known: {SCHEDULE_BACKENDS}")
        if self.execution not in SCHEDULE_EXECUTIONS:
            raise CollectiveError(
                f"unknown schedule execution {self.execution!r}; "
                f"known: {SCHEDULE_EXECUTIONS}")
        if self.tile_bytes is not None:
            if self.tile_bytes <= 0:
                raise CollectiveError(
                    f"schedule tile_bytes must be positive, got "
                    f"{self.tile_bytes}")
            if self.execution == "interpreted":
                raise CollectiveError(
                    "a streamed schedule replays compiled row bands; "
                    "execution='interpreted' cannot stream")
        if self.fusion_depth is not None and self.fusion_depth < 1:
            raise CollectiveError(
                f"fusion_depth must be >= 1 (or None for unlimited), "
                f"got {self.fusion_depth}")
        if self.elide and self.execution == "interpreted":
            raise CollectiveError(
                "content-aware elision runs in compiled replay; "
                "execution='interpreted' is the oracle and cannot elide")
        if not isinstance(self.rung, OptConfig):
            raise CollectiveError(
                f"schedule rung must be an OptConfig, got {self.rung!r}")
        if self.global_algorithm is not None \
                and self.global_algorithm not in GLOBAL_ALGORITHMS:
            raise CollectiveError(
                f"unknown global algorithm {self.global_algorithm!r}; "
                f"known: {GLOBAL_ALGORITHMS}")

    @classmethod
    def default(cls) -> "Schedule":
        """The naive schedule a fresh session implies: scalar backend,
        compiled untiled replay, greedy fusion, serial bands, FULL rung."""
        return cls()

    # ------------------------------------------------------------------
    # Composable transforms (each returns a new validated value)
    # ------------------------------------------------------------------
    def with_backend(self, backend: str) -> "Schedule":
        """Schedule running on ``backend`` (scalar or vectorized)."""
        return replace(self, backend=backend)

    def with_execution(self, execution: str) -> "Schedule":
        """Schedule replaying via ``execution``; untiles and stops
        eliding when the new mode is interpreted (streaming and
        elision both need compiled replay)."""
        if execution == "interpreted":
            return replace(self, execution=execution, tile_bytes=None,
                           elide=False)
        return replace(self, execution=execution)

    def with_tile(self, tile_bytes: int) -> "Schedule":
        """Schedule streaming through ``tile_bytes``-sized row bands."""
        return replace(self, tile_bytes=tile_bytes)

    def untiled(self) -> "Schedule":
        """Schedule replaying in one unstreamed pass."""
        return replace(self, tile_bytes=None)

    def fused(self, depth: int | None) -> "Schedule":
        """Schedule capping fusion at ``depth`` source ops per fused op
        (1 = no fusion, None = unlimited)."""
        return replace(self, fusion_depth=depth)

    def with_band_parallel(self, flag: bool = True) -> "Schedule":
        """Schedule fanning streamed bands across the worker pool."""
        return replace(self, band_parallel=flag)

    def with_elide(self, flag: bool = True) -> "Schedule":
        """Schedule with content-aware transfer elision on (or off)."""
        return replace(self, elide=flag)

    def with_rung(self, rung: OptConfig) -> "Schedule":
        """Schedule planning at optimization rung ``rung``."""
        return replace(self, rung=rung)

    def with_global_algorithm(self, algorithm: str | None) -> "Schedule":
        """Schedule whose global (inter-host) phase runs ``algorithm``
        (None = single-host / tuner-decided)."""
        return replace(self, global_algorithm=algorithm)

    # ------------------------------------------------------------------
    # Identity and reporting
    # ------------------------------------------------------------------
    @property
    def signature(self) -> tuple:
        """Hashable identity (used by decision caches and tuner state)."""
        return (self.backend, self.execution, self.tile_bytes,
                self.fusion_depth, self.band_parallel, self.elide,
                self.rung.label, self.global_algorithm)

    def describe(self) -> str:
        """Compact one-line label, e.g. ``vectorized/compiled tile=8MiB
        fuse=* +CM elide``."""
        tile = ("untiled" if self.tile_bytes is None
                else f"tile={self.tile_bytes}B")
        fuse = "*" if self.fusion_depth is None else str(self.fusion_depth)
        bands = " bands" if self.band_parallel else ""
        elide = " elide" if self.elide else ""
        glob = (f" global={self.global_algorithm}"
                if self.global_algorithm else "")
        return (f"{self.backend}/{self.execution} {tile} fuse={fuse} "
                f"{self.rung.label}{bands}{elide}{glob}")

    # ------------------------------------------------------------------
    # HeteroCL-style structure assertion
    # ------------------------------------------------------------------
    def check(self, program) -> "Schedule":
        """Assert ``program``'s structure realizes this schedule.

        Raises :class:`CollectiveError` when the compiled structure
        contradicts a knob: a program existing at all under an
        interpreted schedule, a fused op wider than ``fusion_depth``,
        or a tile budget no op could ever band under.  Returns the
        schedule so assertions chain like the transforms do.
        """
        if self.execution == "interpreted":
            raise CollectiveError(
                "an interpreted schedule has no compiled program to "
                "check; replay goes through Step.apply")
        widths = [max(1, len(op.labels)) for op in program.ops]
        if self.fusion_depth is not None and widths \
                and max(widths) > self.fusion_depth:
            raise CollectiveError(
                f"program fuses {max(widths)} source ops into one op, "
                f"schedule caps fusion at {self.fusion_depth}:\n"
                f"{program.describe()}")
        if self.tile_bytes is not None and self.tile_bytes <= 0:
            raise CollectiveError(
                f"streamed schedule with non-positive tile "
                f"{self.tile_bytes}")
        return self
