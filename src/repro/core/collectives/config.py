"""Optimization-technique configuration (paper section V, Table II).

The three techniques build on each other in the order the paper's
ablation applies them:

* **PE-assisted reordering (PR)** decomposes the global modulation into
  PE-local permutations around a host pass.
* **In-register modulation (IM)** requires PR (only then does the
  working set fit a vector register) and removes host-memory staging.
* **Cross-domain modulation (CM)** requires IM (it fuses the two domain
  transfers with the in-register shift) and removes domain transfer for
  non-arithmetic primitives (or for 8-bit elements everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import CollectiveError


@dataclass(frozen=True)
class OptConfig:
    """Which PID-Comm techniques are enabled."""

    pe_reorder: bool = True
    in_register: bool = True
    cross_domain: bool = True

    def __post_init__(self) -> None:
        if self.in_register and not self.pe_reorder:
            raise CollectiveError(
                "in-register modulation requires PE-assisted reordering")
        if self.cross_domain and not self.in_register:
            raise CollectiveError(
                "cross-domain modulation requires in-register modulation")

    @property
    def label(self) -> str:
        """Ablation label as used in Figure 16."""
        if self.cross_domain:
            return "+CM"
        if self.in_register:
            return "+IM"
        if self.pe_reorder:
            return "+PR"
        return "Baseline"


#: Conventional host-mediated path (no PID-Comm techniques).
BASELINE = OptConfig(pe_reorder=False, in_register=False, cross_domain=False)
#: PE-assisted reordering only.
PR_ONLY = OptConfig(pe_reorder=True, in_register=False, cross_domain=False)
#: PE-assisted reordering + in-register modulation.
PR_IM = OptConfig(pe_reorder=True, in_register=True, cross_domain=False)
#: All techniques (the shipping PID-Comm configuration).
FULL = OptConfig(pe_reorder=True, in_register=True, cross_domain=True)

#: Ablation ladder in Figure 16 order.
ABLATION_LADDER = (BASELINE, PR_ONLY, PR_IM, FULL)
