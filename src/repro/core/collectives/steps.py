"""Plan steps: the concrete dataflows of PID-Comm and the baselines.

Each step both executes (moving real bytes through the simulated DIMMs)
and prices itself (charging the cost categories its real-system
counterpart would occupy).  The optimized steps implement the paper's
three-stage decomposition:

    PE-local permutation  ->  host lane pass  ->  PE-local permutation

where the host lane pass is, depending on the enabled techniques,

* ``"staged"``      -- domain transfer + host-memory staging + local
  modulation (PE-assisted reordering only, Figure 7(b));
* ``"inregister"``  -- domain transfer + in-register SIMD shifts, no
  host memory (Figure 7(c));
* ``"crossdomain"`` -- raw byte-lane shuffles on PIM-domain data, no
  domain transfer at all (Figure 7(d)).

Lane rotation correctness (derived in DESIGN.md): after every PE with
group rank ``a`` rotates its chunk array left by ``a``, slot ``s`` of
lane ``a`` holds the chunk destined for group rank ``(s + a) mod N``;
rolling the slot-``s`` lane row down by ``s`` therefore lands every
chunk in its destination lane, and a final reflection permutation
``new[p] = old[(rank - p) mod N]`` restores source order.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ...dtypes import DataType, ReduceOp
from ...errors import CollectiveError, TransferError
from ...hw import domain
from ...reliability.checksum import guarded_delivery
from ...hw.host import (
    REGISTER_BYTES,
    SimdCounter,
    charge_rotate_sweep,
    fanout_all_slots,
    rotate_all_slots,
    rotate_lanes_registerwise,
    rotation_table,
)
from ...hw.pe import WRAM_TILE_BYTES, batched_permute_tiles
from ...hw.system import DimmSystem
from ...hw.timing import CostLedger
from ..groups import CommGroup
from ..reference import (
    allgather as ref_allgather,
    allreduce as ref_allreduce,
    alltoall as ref_alltoall,
    reduce_scatter as ref_reduce_scatter,
)
from .plan import ExecContext, Step
from .program import (
    BroadcastFillOp,
    FanoutScratchOp,
    GatherMoveOp,
    HostPullOp,
    HostPushOp,
    ProgramOp,
    ReduceFoldOp,
    readonly_table,
    scaled_counter,
)

HOST_PASS_MODES = ("staged", "inregister", "crossdomain")


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def slot_permutation(rule: str, rank: int, nslots: int) -> np.ndarray:
    """Slot permutation for a PE of group rank ``rank``.

    Returns ``perm`` such that ``new[i] = old[perm[i]]``.  Memoized on
    ``(rule, rank, nslots)`` -- steady-state collectives reuse the
    identical permutations every call -- so the returned array is
    read-only; copy before mutating.
    """
    idx = np.arange(nslots)
    if rule == "identity":
        perm = idx
    elif rule == "rotate_left_rank":
        # new[s] = old[(s + rank) % n]
        perm = (idx + rank) % nslots
    elif rule == "reflect_rank":
        # new[p] = old[(rank - p) % n]
        perm = (rank - idx) % nslots
    else:
        raise CollectiveError(f"unknown slot permutation rule {rule!r}")
    perm.setflags(write=False)
    return perm


@lru_cache(maxsize=None)
def slot_permutation_matrix(rule: str, nranks: int,
                            nslots: int) -> np.ndarray:
    """Stacked :func:`slot_permutation` rows for ranks ``0..nranks-1``.

    Memoized and read-only, like :func:`slot_permutation`.
    """
    ranks = np.arange(nranks)[:, None]
    idx = np.arange(nslots)[None, :]
    if rule == "identity":
        matrix = np.broadcast_to(idx, (nranks, nslots)).copy()
    elif rule == "rotate_left_rank":
        matrix = (idx + ranks) % nslots
    elif rule == "reflect_rank":
        matrix = (ranks - idx) % nslots
    else:
        raise CollectiveError(f"unknown slot permutation rule {rule!r}")
    matrix.setflags(write=False)
    return matrix


def union_pes(groups: Sequence[CommGroup]) -> list[int]:
    """All PEs participating across the instances, deduplicated."""
    seen: set[int] = set()
    for group in groups:
        seen.update(group.pe_ids)
    return sorted(seen)


def _uniform_group_size(groups: Sequence[CommGroup]) -> int | None:
    """The common group size, or None when groups differ (no lowering)."""
    if not groups:
        return None
    size = groups[0].size
    if any(g.size != size for g in groups):
        return None
    return size


def _concat_ids(groups: Sequence[CommGroup]) -> np.ndarray:
    """Rank-ordered PE ids of every group, concatenated (read-only)."""
    ids = np.concatenate(
        [np.asarray(g.pe_ids, dtype=np.intp) for g in groups])
    ids.setflags(write=False)
    return ids


def _group_id_arrays(groups: Sequence[CommGroup]) -> tuple[np.ndarray, ...]:
    """Per-group PE id arrays (read-only), for per-instance ops."""
    out = []
    for g in groups:
        ids = np.asarray(g.pe_ids, dtype=np.intp)
        ids.setflags(write=False)
        out.append(ids)
    return tuple(out)


@lru_cache(maxsize=None)
def _lane_identity_table(nranks: int, nslots: int) -> np.ndarray:
    """Read-only ``table[l, s] = l`` (a lane-preserving gather)."""
    return readonly_table(np.broadcast_to(
        np.arange(nranks, dtype=np.intp)[:, None], (nranks, nslots)))


@lru_cache(maxsize=None)
def _slot_sweep_table(nranks: int, nslots: int) -> np.ndarray:
    """Read-only ``table[l, s] = s`` (a slot-preserving gather)."""
    return readonly_table(np.broadcast_to(
        np.arange(nslots, dtype=np.intp)[None, :], (nranks, nslots)))


def _dt_registers(nbytes: int) -> int:
    """Registers one domain transfer of ``nbytes`` occupies."""
    return (nbytes + REGISTER_BYTES - 1) // REGISTER_BYTES


def _bus_terms(system: DimmSystem, pes: Sequence[int]) -> tuple[int, float]:
    """(channels used, lane utilization) for a transfer over ``pes``."""
    geom = system.geometry
    return geom.channels_used(pes), geom.lane_utilization(pes)


def _check_mode(mode: str) -> None:
    if mode not in HOST_PASS_MODES:
        raise CollectiveError(
            f"unknown host pass mode {mode!r}; known: {HOST_PASS_MODES}")


def _count_domain_transfer(ctx: ExecContext, nbytes: int) -> None:
    """Account the in-register transposes of a domain transfer.

    The simulator's lane matrices are already the element-aligned
    (post-DT) view, so the transform itself is a data no-op here; the
    register operations are still counted for the cost cross-check.
    """
    ctx.simd.transposes += (nbytes + REGISTER_BYTES - 1) // REGISTER_BYTES


def _count_domain_transfer_per_slot(ctx: ExecContext, nbytes: int,
                                    nslots: int) -> None:
    """Batched form of ``nslots`` :func:`_count_domain_transfer` calls.

    The per-slot ceiling division must be preserved (``nslots`` small
    transposes charge more than one big one), so the vectorized steps
    stay charge-identical to the scalar per-slot loop.
    """
    ctx.simd.transposes += nslots * (
        (nbytes + REGISTER_BYTES - 1) // REGISTER_BYTES)


def _roundtrip_domain(row: np.ndarray) -> np.ndarray:
    """Domain-transfer a lane row to host domain and back.

    The data is unchanged (the transpose is an involution pair); the
    call exists so functional executions of DT-bearing modes exercise
    the real transpose code.
    """
    lanes = row.shape[0]
    return domain.host_to_pim(domain.pim_to_host(row), lanes)


# ----------------------------------------------------------------------
# PE-local reordering (the PR technique's PIM kernels)
# ----------------------------------------------------------------------
@dataclass
class PeReorderStep(Step):
    """Every member PE permutes its chunk array locally (in MRAM).

    The permutation is a rule parameterized by the PE's group rank, so
    the step stays O(1) in memory regardless of scale.
    """

    groups: Sequence[CommGroup]
    rule: str
    src_offset: int
    dst_offset: int
    chunk_bytes: int
    nslots: int

    def apply(self, ctx: ExecContext) -> None:
        injector = ctx.system.fault_injector
        if injector is not None:
            # A reorder is a real per-DPU kernel launch: it can hang.
            injector.guard_pes(ctx.system.geometry, union_pes(self.groups))
            injector.take_timeout("reorder kernel launch")
        for group in self.groups:
            perms = slot_permutation_matrix(self.rule, group.size,
                                            self.nslots)
            # Scalar backend: honest PE-side execution, every byte
            # staged through the owning PE's WRAM in bounded tiles.
            # Vectorized backend: one batched gather for the whole
            # group, charged the identical tile count.
            ctx.wram_tiles += ctx.system.permute_chunks(
                group.pe_ids, self.src_offset, self.dst_offset,
                self.chunk_bytes, perms)

    def cost(self, system: DimmSystem) -> CostLedger:
        ledger = CostLedger()
        bytes_per_pe = self.nslots * self.chunk_bytes
        ledger.add("pe", system.params.pe_stream_time(bytes_per_pe))
        ledger.add("launch", system.params.kernel_launch_s)
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        n = _uniform_group_size(groups)
        if n is None:
            return None
        total = self.nslots * self.chunk_bytes
        overlapping = (self.src_offset < self.dst_offset + total
                       and self.dst_offset < self.src_offset + total)
        if overlapping and self.src_offset != self.dst_offset:
            return None  # the interpreted kernels reject this; keep it there
        perms = slot_permutation_matrix(self.rule, n, self.nslots)
        tiles = len(groups) * batched_permute_tiles(
            np.asarray(perms, dtype=np.intp), self.chunk_bytes,
            WRAM_TILE_BYTES, in_place=overlapping)
        return [GatherMoveOp(
            ids=_concat_ids(groups), ngroups=len(groups),
            src_offset=self.src_offset, dst_offset=self.dst_offset,
            nslots_in=self.nslots, nslots_out=self.nslots,
            chunk_bytes=self.chunk_bytes,
            lane=_lane_identity_table(n, self.nslots),
            slot=readonly_table(perms),
            wram_tiles=tiles, labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"PeReorder[{self.rule}] {self.nslots}x{self.chunk_bytes}B "
                f"on {sum(g.size for g in self.groups)} PEs")


# ----------------------------------------------------------------------
# Host lane passes (the exchange cores of AA / AG / RS / AR)
# ----------------------------------------------------------------------
@dataclass
class RotateExchangeStep(Step):
    """AlltoAll exchange: per slot ``s``, roll the lane row down by ``s``.

    Reads and writes the same slot, so the pass streams through the
    host without growing state (in-register modulation); in ``staged``
    mode the same movement is charged as a host-memory round trip.
    """

    groups: Sequence[CommGroup]
    offset: int
    chunk_bytes: int
    nslots: int
    mode: str

    def __post_init__(self) -> None:
        _check_mode(self.mode)

    def apply(self, ctx: ExecContext) -> None:
        for group in self.groups:
            if ctx.system.vectorized:
                total = self.nslots * self.chunk_bytes
                block = ctx.system.read_lanes(group.pe_ids, self.offset,
                                              total)
                rolled = rotate_all_slots(
                    block.reshape(group.size, self.nslots,
                                  self.chunk_bytes), ctx.simd)
                if self.mode != "crossdomain":
                    _count_domain_transfer_per_slot(
                        ctx, 2 * group.size * self.chunk_bytes,
                        self.nslots)
                ctx.system.write_lanes(group.pe_ids, self.offset,
                                       rolled.reshape(group.size, total))
                continue
            for s in range(self.nslots):
                slot_off = self.offset + s * self.chunk_bytes
                row = ctx.system.read_lanes(group.pe_ids, slot_off,
                                            self.chunk_bytes)
                rolled = rotate_lanes_registerwise(row, s, ctx.simd)
                if self.mode != "crossdomain":
                    # The lane matrix is the post-DT view; account the
                    # two transposes the DT-bearing modes perform.
                    _count_domain_transfer(ctx, 2 * row.size)
                    rolled = _roundtrip_domain(rolled)
                ctx.system.write_lanes(group.pe_ids, slot_off, rolled)

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        total = sum(g.size for g in self.groups) * self.nslots * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(2 * total, channels, util))
        if self.mode == "crossdomain":
            ledger.add("host_mod", params.mod_time(total, "shuffle"))
        elif self.mode == "inregister":
            ledger.add("dt", params.dt_time(2 * total))
            ledger.add("host_mod", params.mod_time(total, "simd"))
        else:  # staged
            ledger.add("dt", params.dt_time(2 * total))
            ledger.add("host_mem", params.host_mem_time(4 * total))
            ledger.add("host_mod", params.mod_time(total, "local"))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        n = _uniform_group_size(groups)
        if n is None:
            return None
        probe = SimdCounter()
        charge_rotate_sweep(n, self.chunk_bytes, self.nslots, probe)
        if self.mode != "crossdomain":
            probe.transposes += self.nslots * _dt_registers(
                2 * n * self.chunk_bytes)
        return [GatherMoveOp(
            ids=_concat_ids(groups), ngroups=len(groups),
            src_offset=self.offset, dst_offset=self.offset,
            nslots_in=self.nslots, nslots_out=self.nslots,
            chunk_bytes=self.chunk_bytes,
            lane=rotation_table(n, self.nslots),
            slot=_slot_sweep_table(n, self.nslots),
            simd=scaled_counter(probe, len(groups)),
            labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"RotateExchange[{self.mode}] {len(self.groups)} groups x "
                f"{self.nslots} slots x {self.chunk_bytes}B")


@dataclass
class FanoutStep(Step):
    """AllGather exchange: read each group's row once, write N rotations.

    After this step, slot ``s`` of group-rank ``q`` holds rank
    ``(q - s) mod N``'s chunk; a reflection PeReorder fixes the order.
    """

    groups: Sequence[CommGroup]
    src_offset: int
    dst_offset: int
    chunk_bytes: int
    mode: str

    def __post_init__(self) -> None:
        _check_mode(self.mode)

    def apply(self, ctx: ExecContext) -> None:
        for group in self.groups:
            row = ctx.system.read_lanes(group.pe_ids, self.src_offset,
                                        self.chunk_bytes)
            if self.mode != "crossdomain":
                _count_domain_transfer(
                    ctx, row.size * (1 + group.size))
                row = _roundtrip_domain(row)
            if ctx.system.vectorized:
                fanned = fanout_all_slots(row, group.size, ctx.simd)
                ctx.system.write_lanes(
                    group.pe_ids, self.dst_offset,
                    fanned.reshape(group.size,
                                   group.size * self.chunk_bytes))
                continue
            for s in range(group.size):
                rolled = rotate_lanes_registerwise(row, s, ctx.simd)
                ctx.system.write_lanes(
                    group.pe_ids, self.dst_offset + s * self.chunk_bytes,
                    rolled)

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        in_bytes = sum(g.size for g in self.groups) * self.chunk_bytes
        out_bytes = sum(g.size * g.size for g in self.groups) * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(in_bytes + out_bytes, channels, util))
        if self.mode == "crossdomain":
            ledger.add("host_mod", params.mod_time(out_bytes, "shuffle"))
        elif self.mode == "inregister":
            ledger.add("dt", params.dt_time(in_bytes + out_bytes))
            ledger.add("host_mod", params.mod_time(out_bytes, "simd"))
        else:  # staged
            ledger.add("dt", params.dt_time(in_bytes + out_bytes))
            ledger.add("host_mem",
                       params.host_mem_time(2 * (in_bytes + out_bytes)))
            ledger.add("host_mod", params.mod_time(out_bytes, "local"))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        n = _uniform_group_size(groups)
        if n is None:
            return None
        probe = SimdCounter()
        if self.mode != "crossdomain":
            probe.transposes += _dt_registers(n * self.chunk_bytes * (1 + n))
        charge_rotate_sweep(n, self.chunk_bytes, n, probe)
        return [GatherMoveOp(
            ids=_concat_ids(groups), ngroups=len(groups),
            src_offset=self.src_offset, dst_offset=self.dst_offset,
            nslots_in=1, nslots_out=n, chunk_bytes=self.chunk_bytes,
            lane=rotation_table(n, n),
            slot=readonly_table(np.zeros((n, n), dtype=np.intp)),
            simd=scaled_counter(probe, len(groups)),
            labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"Fanout[{self.mode}] {len(self.groups)} groups x "
                f"{self.chunk_bytes}B")


@dataclass
class ReduceExchangeStep(Step):
    """ReduceScatter core: rotate rows into lane alignment, reduce
    vertically, then either write the reduced row back (ReduceScatter)
    or keep it in host scratch (Reduce / AllReduce phase 1).

    With PE-assisted reordering, lane ``q`` accumulates chunk ``q`` from
    every source across the ``N`` slot rows -- one vertical SIMD op per
    register, exactly the paper's in-register reduction.
    """

    groups: Sequence[CommGroup]
    src_offset: int
    chunk_bytes: int
    nslots: int
    dtype: DataType
    op: ReduceOp
    mode: str
    #: Write the reduced chunk to each PE at this offset (None = host keeps it).
    dst_offset: int | None = None
    #: Store per-instance reduced word matrices under this scratch key.
    scratch_key: str | None = None

    def __post_init__(self) -> None:
        _check_mode(self.mode)
        if self.mode == "crossdomain" and not self.dtype.cross_domain_reducible:
            raise CollectiveError(
                "cross-domain reduction needs 1-byte elements "
                f"(got {self.dtype.name})")
        if self.chunk_bytes % self.dtype.itemsize:
            raise CollectiveError(
                f"chunk of {self.chunk_bytes}B not divisible by "
                f"{self.dtype.name} itemsize")
        if self.dst_offset is None and self.scratch_key is None:
            raise CollectiveError(
                "reduce exchange must either write back or keep scratch")

    def apply(self, ctx: ExecContext) -> None:
        results = {}
        for group in self.groups:
            if ctx.system.vectorized:
                acc = self._reduce_group_batched(ctx, group)
            else:
                acc = self._reduce_group(ctx, group)
            if self.dst_offset is not None:
                raw = np.ascontiguousarray(acc).view(np.uint8)
                if self.mode != "crossdomain":
                    raw = _roundtrip_domain(raw)
                ctx.system.write_lanes(group.pe_ids, self.dst_offset, raw)
            if self.scratch_key is not None:
                results[group.instance] = acc
        if self.scratch_key is not None:
            ctx.scratch[self.scratch_key] = results

    def _reduce_group(self, ctx: ExecContext,
                      group: CommGroup) -> np.ndarray:
        """Scalar path: per-slot read, rotate, left-fold accumulate."""
        acc: np.ndarray | None = None
        for s in range(self.nslots):
            row = ctx.system.read_lanes(
                group.pe_ids, self.src_offset + s * self.chunk_bytes,
                self.chunk_bytes)
            rolled = rotate_lanes_registerwise(row, s, ctx.simd)
            if self.mode != "crossdomain":
                _count_domain_transfer(ctx, rolled.size)
                rolled = _roundtrip_domain(rolled)
            values = rolled.view(self.dtype.np_dtype)
            acc = values.copy() if acc is None else self.op.combine(acc,
                                                                    values)
        assert acc is not None
        return acc

    def _reduce_group_batched(self, ctx: ExecContext,
                              group: CommGroup) -> np.ndarray:
        """Vectorized path: one read + one rotation gather per group.

        The accumulation stays an explicit left fold over slots (not
        ``ufunc.reduce``) so floating-point results are bit-identical
        to the scalar path's combine order.
        """
        total = self.nslots * self.chunk_bytes
        block = ctx.system.read_lanes(group.pe_ids, self.src_offset,
                                      total)
        rolled = rotate_all_slots(
            block.reshape(group.size, self.nslots, self.chunk_bytes),
            ctx.simd)
        if self.mode != "crossdomain":
            _count_domain_transfer_per_slot(
                ctx, group.size * self.chunk_bytes, self.nslots)
        values = rolled.view(self.dtype.np_dtype)
        acc = values[:, 0].copy()
        for s in range(1, self.nslots):
            acc = self.op.combine(acc, values[:, s])
        return acc

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        in_bytes = sum(g.size for g in self.groups) * self.nslots * self.chunk_bytes
        out_bytes = (sum(g.size for g in self.groups) * self.chunk_bytes
                     if self.dst_offset is not None else 0)
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(in_bytes + out_bytes, channels, util))
        if self.mode == "crossdomain":
            ledger.add("host_mod", params.mod_time(in_bytes, "shuffle"))
            ledger.add("host_reduce", params.reduce_time(in_bytes, simd=True))
        elif self.mode == "inregister":
            ledger.add("host_mod", params.mod_time(in_bytes, "shuffle"))
            ledger.add("dt", params.dt_time(in_bytes + out_bytes))
            ledger.add("host_reduce", params.reduce_time(in_bytes, simd=True))
        else:  # staged
            ledger.add("dt", params.dt_time(in_bytes + out_bytes))
            ledger.add("host_mem",
                       params.host_mem_time(2 * in_bytes + 2 * out_bytes))
            ledger.add("host_mod", params.mod_time(in_bytes, "local"))
            ledger.add("host_reduce", params.reduce_time(in_bytes, simd=True))
        if self.scratch_key is not None and self.mode == "staged":
            # Without in-register modulation the reduced rows must be
            # parked in host memory between the phases; with it they
            # stream straight into the fan-out (Figure 17: host memory
            # access is completely removed).
            kept = sum(g.size for g in self.groups) * self.chunk_bytes
            ledger.add("host_mem", params.host_mem_time(kept))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        n = _uniform_group_size(groups)
        if n is None:
            return None
        probe = SimdCounter()
        charge_rotate_sweep(n, self.chunk_bytes, self.nslots, probe)
        if self.mode != "crossdomain":
            probe.transposes += self.nslots * _dt_registers(
                n * self.chunk_bytes)
        return [ReduceFoldOp(
            ids=_concat_ids(groups), ngroups=len(groups),
            instances=tuple(g.instance for g in groups),
            src_offset=self.src_offset, chunk_bytes=self.chunk_bytes,
            nslots=self.nslots, dtype=self.dtype, op=self.op,
            lane=rotation_table(n, self.nslots),
            slot=_slot_sweep_table(n, self.nslots),
            dst_offset=self.dst_offset, scratch_key=self.scratch_key,
            simd=scaled_counter(probe, len(groups)),
            labels=(self.describe(),))]

    def describe(self) -> str:
        target = "host" if self.dst_offset is None else f"dst@{self.dst_offset}"
        return (f"ReduceExchange[{self.mode},{self.op}] "
                f"{len(self.groups)} groups -> {target}")


@dataclass
class FanoutFromHostStep(Step):
    """AllReduce phase 2: fan the host-resident reduced rows back out.

    One domain transfer converts the reduced data to PIM domain; the
    ``N`` per-slot writes are byte-rotations of that row (AllGather
    steps (7)-(9) of Figure 8(c)).
    """

    groups: Sequence[CommGroup]
    scratch_key: str
    dst_offset: int
    chunk_bytes: int
    mode: str

    def __post_init__(self) -> None:
        _check_mode(self.mode)

    def apply(self, ctx: ExecContext) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        for group in self.groups:
            acc = results[group.instance]
            row = np.ascontiguousarray(acc).view(np.uint8)
            if row.shape != (group.size, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({group.size}, {self.chunk_bytes})")
            _count_domain_transfer(ctx, row.size)
            if ctx.system.vectorized:
                fanned = fanout_all_slots(row, group.size, ctx.simd)
                ctx.system.write_lanes(
                    group.pe_ids, self.dst_offset,
                    fanned.reshape(group.size,
                                   group.size * self.chunk_bytes))
                continue
            for s in range(group.size):
                ctx.system.write_lanes(
                    group.pe_ids, self.dst_offset + s * self.chunk_bytes,
                    rotate_lanes_registerwise(row, s, ctx.simd))

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        payload = sum(g.size for g in self.groups) * self.chunk_bytes
        out_bytes = sum(g.size * g.size for g in self.groups) * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(out_bytes, channels, util))
        ledger.add("dt", params.dt_time(payload))
        klass = "shuffle" if self.mode != "staged" else "local"
        ledger.add("host_mod", params.mod_time(out_bytes, klass))
        if self.mode == "staged":
            ledger.add("host_mem", params.host_mem_time(2 * out_bytes))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        n = _uniform_group_size(groups)
        if n is None:
            return None
        probe = SimdCounter()
        probe.transposes += _dt_registers(n * self.chunk_bytes)
        charge_rotate_sweep(n, self.chunk_bytes, n, probe)
        return [FanoutScratchOp(
            group_ids=_group_id_arrays(groups), ids=_concat_ids(groups),
            instances=tuple(g.instance for g in groups),
            scratch_key=self.scratch_key,
            lane=rotation_table(n, n), dst_offset=self.dst_offset,
            chunk_bytes=self.chunk_bytes, nslots_out=n,
            simd=scaled_counter(probe, len(groups)),
            labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"FanoutFromHost[{self.mode}] {len(self.groups)} groups x "
                f"{self.chunk_bytes}B")


# ----------------------------------------------------------------------
# Rooted primitives (host is always the root)
# ----------------------------------------------------------------------
@dataclass
class GatherToHostStep(Step):
    """Pull each PE's chunk to the host (domain transfer included).

    The per-instance host buffers (rank-order concatenations) land in
    ``ctx.scratch[scratch_key]`` as a dict ``instance -> uint8 array``.
    """

    groups: Sequence[CommGroup]
    src_offset: int
    chunk_bytes: int
    scratch_key: str
    #: "inregister" streams straight into the user buffer; "conventional"
    #: is the native-driver gather (one staging pass); "rearrange"
    #: additionally lays the data out for host processing with scalar
    #: code (what SimplePIM's AllReduce gather stage must do).
    mode: str = "inregister"

    def apply(self, ctx: ExecContext) -> None:
        results = {}
        for group in self.groups:
            row = ctx.system.read_lanes(group.pe_ids, self.src_offset,
                                        self.chunk_bytes)
            results[group.instance] = row.reshape(-1).copy()
        ctx.scratch[self.scratch_key] = results

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        total = sum(g.size for g in self.groups) * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(total, channels, util))
        ledger.add("dt", params.dt_time(total))
        if self.mode == "rearrange":
            ledger.add("host_mem", params.host_mem_time(3 * total))
            ledger.add("host_mod", params.mod_time(total, "scalar"))
        elif self.mode == "conventional":
            ledger.add("host_mem", params.host_mem_time(2 * total))
            ledger.add("host_mod", params.mod_time(total, "local"))
        else:
            ledger.add("host_mem", params.host_mem_time(total))
            ledger.add("host_mod", params.mod_time(total, "simd"))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        groups = list(self.groups)
        return [HostPullOp(
            group_ids=_group_id_arrays(groups),
            instances=tuple(g.instance for g in groups),
            src_offset=self.src_offset, chunk_bytes=self.chunk_bytes,
            scratch_key=self.scratch_key, labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"GatherToHost[{self.mode}] {len(self.groups)} groups x "
                f"{self.chunk_bytes}B")


@dataclass
class ScatterFromHostStep(Step):
    """Push per-PE chunks from host buffers down to the PEs.

    ``payloads`` maps instance -> uint8 array of ``size * chunk`` bytes
    (rank-order concatenation).  In analytic mode payloads may be None.
    """

    groups: Sequence[CommGroup]
    dst_offset: int
    chunk_bytes: int
    payloads: dict[int, np.ndarray] | None = None
    #: Alternatively read payloads from host scratch (e.g. a prior gather).
    scratch_key: str | None = None
    #: "inregister" streams registers down; "conventional" pre-arranges
    #: the per-PE layout in a staging buffer with scalar code.
    mode: str = "inregister"

    def apply(self, ctx: ExecContext) -> None:
        payloads = self.payloads
        if payloads is None and self.scratch_key is not None:
            payloads = ctx.scratch.get(self.scratch_key)
        if payloads is None:
            raise CollectiveError(
                "functional scatter needs payloads or a scratch key")
        for group in self.groups:
            buf = np.asarray(payloads[group.instance], dtype=np.uint8)
            expected = group.size * self.chunk_bytes
            if buf.size != expected:
                raise TransferError(
                    f"scatter payload of {buf.size}B for instance "
                    f"{group.instance}, expected {expected}B")
            ctx.system.write_lanes(group.pe_ids, self.dst_offset,
                                   buf.reshape(group.size, self.chunk_bytes))

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        total = sum(g.size for g in self.groups) * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(total, channels, util))
        ledger.add("dt", params.dt_time(total))
        if self.mode == "conventional":
            ledger.add("host_mem", params.host_mem_time(2 * total))
            ledger.add("host_mod", params.mod_time(total, "local"))
        else:
            ledger.add("host_mem", params.host_mem_time(total))
            ledger.add("host_mod", params.mod_time(total, "simd"))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        if self.payloads is not None:
            # A payload-bound copy is transient (one call); only the
            # unbound template is worth compiling.
            return None
        groups = list(self.groups)
        return [HostPushOp(
            group_ids=_group_id_arrays(groups),
            instances=tuple(g.instance for g in groups),
            dst_offset=self.dst_offset, chunk_bytes=self.chunk_bytes,
            source_key=self.scratch_key, labels=(self.describe(),))]

    def describe(self) -> str:
        return (f"ScatterFromHost[{self.mode}] {len(self.groups)} groups x "
                f"{self.chunk_bytes}B")


@dataclass
class BroadcastStep(Step):
    """Write one host buffer to every member PE.

    Broadcast needs a single domain transfer for the whole payload
    (the same PIM-domain image serves every PE), which is why the
    native driver's broadcast already runs at near-peak bus bandwidth
    (paper section VIII-B).
    """

    groups: Sequence[CommGroup]
    dst_offset: int
    nbytes: int
    payloads: dict[int, np.ndarray] | None = None
    scratch_key: str | None = None

    def apply(self, ctx: ExecContext) -> None:
        payloads = self.payloads
        if payloads is None and self.scratch_key is not None:
            payloads = ctx.scratch.get(self.scratch_key)
        if payloads is None:
            raise CollectiveError(
                "functional broadcast needs payloads or a scratch key")
        injector = ctx.system.fault_injector
        for group in self.groups:
            buf = np.asarray(payloads[group.instance], dtype=np.uint8)
            if buf.size != self.nbytes:
                raise TransferError(
                    f"broadcast payload of {buf.size}B, expected {self.nbytes}B")
            if injector is not None:
                injector.guard_pes(ctx.system.geometry, group.pe_ids)
                # One domain-transferred image serves every PE, so the
                # whole fan-out is one checksummed delivery.
                buf = guarded_delivery(injector, buf, "broadcast")
            ctx.system.fill_lanes(group.pe_ids, self.dst_offset, buf)

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        npes = sum(g.size for g in self.groups)
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(self.nbytes * npes, channels, util))
        if len(self.groups) == 1:
            # The driver's fast path: one domain-transferred image of the
            # payload serves every PE (why native broadcast is already
            # near peak bandwidth, section VIII-B).
            dt_bytes = self.nbytes
        else:
            # Per-group payloads differ, so the single-image trick does
            # not apply and each delivered copy pays its own transfer
            # (this is why the baseline AllGather loses its broadcast
            # advantage on 2-D cubes, section VIII-E).
            dt_bytes = self.nbytes * npes
        ledger.add("dt", params.dt_time(dt_bytes))
        ledger.add("host_mem",
                   params.host_mem_time(self.nbytes * len(self.groups)))
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        if self.payloads is not None:
            return None
        groups = list(self.groups)
        return [BroadcastFillOp(
            group_ids=_group_id_arrays(groups),
            instances=tuple(g.instance for g in groups),
            dst_offset=self.dst_offset, nbytes=self.nbytes,
            source_key=self.scratch_key, labels=(self.describe(),))]

    def describe(self) -> str:
        return f"Broadcast {self.nbytes}B to {len(self.groups)} groups"


@dataclass
class HostReduceStep(Step):
    """Reduce host-resident per-PE vectors (baseline AllReduce path).

    Reads instance buffers shaped ``(N * nbytes,)`` from scratch,
    reduces the ``N`` vectors elementwise, stores the results under
    ``out_key``.  Charged at baseline (scalar/strided) rates because
    gathered data is not lane-aligned for vertical SIMD.
    """

    scratch_key: str
    out_key: str
    dtype: DataType
    op: ReduceOp
    vectors: int
    nbytes: int

    def apply(self, ctx: ExecContext) -> None:
        buffers = ctx.scratch.get(self.scratch_key)
        if buffers is None:
            raise CollectiveError(f"no host scratch {self.scratch_key!r}")
        results = {}
        for instance, buf in buffers.items():
            stacked = np.asarray(buf, dtype=np.uint8).reshape(
                self.vectors, self.nbytes).view(self.dtype.np_dtype)
            results[instance] = np.ascontiguousarray(
                self.op.reduce_axis(stacked, axis=0)).view(np.uint8)
        ctx.scratch[self.out_key] = results

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        # One instance count is not known here; charge per stored bytes.
        total = self.vectors * self.nbytes * self._instances
        ledger = CostLedger()
        ledger.add("host_reduce", params.reduce_time(total, simd=False))
        ledger.add("host_mem", params.host_mem_time(2 * total))
        return ledger

    _instances: int = 1

    def with_instances(self, count: int) -> "HostReduceStep":
        """Record the instance count for pricing (builder convenience)."""
        self._instances = count
        return self

    def describe(self) -> str:
        return f"HostReduce[{self.op}] {self.vectors} x {self.nbytes}B"


@dataclass
class LaunchStep(Step):
    """Fixed invocation overhead (host-side orchestration, sync)."""

    count: int = 1

    def apply(self, ctx: ExecContext) -> None:
        injector = ctx.system.fault_injector
        if injector is not None:
            injector.take_timeout("collective launch")

    def cost(self, system: DimmSystem) -> CostLedger:
        ledger = CostLedger()
        ledger.add("launch", self.count * system.params.collective_launch_s)
        return ledger

    def lower(self, system: DimmSystem) -> list[ProgramOp] | None:
        # Cost-only (the launch charge lives in the pre-priced ledger);
        # the injector hook is moot on the injector-free compiled path.
        return []

    def describe(self) -> str:
        return f"Launch x{self.count}"


# ----------------------------------------------------------------------
# Conventional (baseline) global host path
# ----------------------------------------------------------------------
@dataclass
class HostGlobalExchangeStep(Step):
    """The conventional flow of Figure 3(a)/7(a).

    Everything is pulled to the host with domain transfer, staged in
    host memory, globally re-arranged (and reduced, for arithmetic
    primitives) by the host alone, then pushed back with another domain
    transfer.  Functionally this delegates to the golden reference
    collectives, which is exactly what the conventional path computes.
    """

    groups: Sequence[CommGroup]
    primitive: str
    src_offset: int
    dst_offset: int
    chunk_bytes: int
    nslots_in: int
    nslots_out: int
    dtype: DataType
    op: ReduceOp | None = None

    _REFS = {
        "alltoall": lambda inputs, op: ref_alltoall(inputs),
        "allgather": lambda inputs, op: ref_allgather(inputs),
        "reduce_scatter": ref_reduce_scatter,
        "allreduce": ref_allreduce,
    }

    def __post_init__(self) -> None:
        if self.primitive not in self._REFS:
            raise CollectiveError(
                f"global exchange does not implement {self.primitive!r}")
        if self.primitive in ("reduce_scatter", "allreduce") and self.op is None:
            raise CollectiveError(f"{self.primitive} needs a reduce op")

    def apply(self, ctx: ExecContext) -> None:
        in_bytes = self.nslots_in * self.chunk_bytes
        for group in self.groups:
            rows = ctx.system.read_lanes(group.pe_ids, self.src_offset,
                                         in_bytes)
            inputs = [row.view(self.dtype.np_dtype) for row in rows]
            outputs = self._REFS[self.primitive](inputs, self.op)
            out = np.stack(
                [np.ascontiguousarray(o).view(np.uint8) for o in outputs])
            ctx.system.write_lanes(group.pe_ids, self.dst_offset, out)

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        npes = sum(g.size for g in self.groups)
        in_bytes = npes * self.nslots_in * self.chunk_bytes
        out_bytes = npes * self.nslots_out * self.chunk_bytes
        channels, util = _bus_terms(system, union_pes(self.groups))
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(in_bytes + out_bytes, channels, util))
        ledger.add("dt", params.dt_time(in_bytes + out_bytes))
        ledger.add("host_mem",
                   params.host_mem_time(2 * in_bytes + 2 * out_bytes))
        ledger.add("host_mod",
                   params.mod_time(max(in_bytes, out_bytes), "scalar"))
        if self.op is not None:
            ledger.add("host_reduce", params.reduce_time(in_bytes, simd=False))
        return ledger

    def describe(self) -> str:
        return (f"HostGlobalExchange[{self.primitive}] "
                f"{len(self.groups)} groups, {self.nslots_in}->"
                f"{self.nslots_out} slots x {self.chunk_bytes}B")
