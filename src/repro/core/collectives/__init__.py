"""Collective communication plans, steps, and configurations."""

from .config import ABLATION_LADDER, BASELINE, FULL, PR_IM, PR_ONLY, OptConfig
from .plan import CommPlan, ExecContext, Step
from .program import CommProgram, ProgramOp, compile_plan
from .schedule import (
    GLOBAL_ALGORITHMS,
    SCHEDULE_BACKENDS,
    SCHEDULE_EXECUTIONS,
    Schedule,
)
from .planner import (
    AR_SCRATCH,
    GATHER_SCRATCH,
    PLANNERS,
    REDUCE_SCRATCH,
    plan_allgather,
    plan_allreduce,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)

__all__ = [
    "OptConfig", "BASELINE", "PR_ONLY", "PR_IM", "FULL", "ABLATION_LADDER",
    "CommPlan", "ExecContext", "Step",
    "CommProgram", "ProgramOp", "compile_plan",
    "Schedule", "SCHEDULE_BACKENDS", "SCHEDULE_EXECUTIONS",
    "GLOBAL_ALGORITHMS",
    "PLANNERS", "AR_SCRATCH", "GATHER_SCRATCH", "REDUCE_SCRATCH",
    "plan_alltoall", "plan_allgather", "plan_reduce_scatter",
    "plan_allreduce", "plan_gather", "plan_scatter", "plan_reduce",
    "plan_broadcast",
]
