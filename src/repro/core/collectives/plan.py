"""Executable communication plans.

A collective invocation is compiled into a :class:`CommPlan`: an ordered
list of steps, each of which can both

* ``apply(ctx)`` -- move real bytes through the simulated system
  (functional mode; used by tests, examples, and small runs), and
* ``cost(system)`` -- price itself against the machine parameters
  (analytic mode; used by paper-scale benchmarks).

The step is the single source of truth for both, so the test suite can
assert that what a plan *does* is what it *charges for*.

Steps communicate host-side intermediates (gathered buffers, reduced
rows) through the :class:`ExecContext` scratch dictionary, modelling
host memory held across phases of one collective.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from ...hw.host import SimdCounter
from ...hw.system import DimmSystem
from ...hw.timing import CostLedger


@dataclass
class ExecContext:
    """State threaded through a plan's functional execution."""

    system: DimmSystem
    #: Host-side intermediates keyed by (step-defined) names.
    scratch: dict[str, Any] = field(default_factory=dict)
    #: Register-operation counts accumulated by the host data path.
    simd: SimdCounter = field(default_factory=SimdCounter)
    #: WRAM tiles moved by PE-local kernels.  Both backends charge the
    #: per-PE tile count, so this is backend-invariant by construction
    #: (asserted by ``tests/test_backend_parity.py``).
    wram_tiles: int = 0
    #: Payload tiles replayed by a *streamed* compiled execution
    #: (``CommProgram.replay(..., tile_bytes=...)``); 0 when the run
    #: was interpreted or replayed unstreamed.
    tiles: int = 0
    #: Scratch-pool high-water mark (bytes) of a streamed replay.
    peak_scratch_bytes: int = 0
    #: Content-aware elision: run the fingerprint scan in elidable ops
    #: (set by ``CommProgram.replay(..., elide=True)``; never set on
    #: the interpreted path, which stays the oracle).
    elide: bool = False
    #: Source chunks fingerprint-scanned by elidable ops.
    chunks_scanned: int = 0
    #: Destination chunks whose transfer was skipped (zero-filled or
    #: alias-copied from a byte-identical representative).
    chunks_elided: int = 0
    #: Destination bytes covered by elided chunks.
    elided_bytes: int = 0
    #: Source bytes the fingerprint scans actually touched (prices the
    #: ``elide`` ledger category).
    scan_bytes: int = 0
    #: Modelled transfer bytes the elisions removed from the bus /
    #: staging path (zero rows skip both directions, duplicate rows
    #: skip the gather direction).
    saved_transfer_bytes: int = 0


class Step(abc.ABC):
    """One phase of a communication plan."""

    @abc.abstractmethod
    def apply(self, ctx: ExecContext) -> None:
        """Execute functionally against the simulated system."""

    @abc.abstractmethod
    def cost(self, system: DimmSystem) -> CostLedger:
        """Modelled cost of this step on ``system``."""

    def lower(self, system: DimmSystem) -> "list | None":
        """Program ops for compiled replay, or None for no lowering.

        Returning None wraps the step in a ``StepOp`` fallback that
        calls :meth:`apply` unchanged; returning a (possibly empty)
        list of :class:`~repro.core.collectives.program.ProgramOp`
        replaces the step during replay.  Lowered ops must reproduce
        ``apply``'s memory effects, scratch outputs and counter charges
        bit-identically (the interpreted path stays the oracle).
        """
        return None

    def describe(self) -> str:
        """Short human-readable label (defaults to the class name)."""
        return type(self).__name__


@dataclass
class CommPlan:
    """An ordered sequence of steps implementing one collective."""

    primitive: str
    steps: list[Step]
    #: Free-form metadata (group count/size, payload bytes, config label).
    meta: dict[str, Any] = field(default_factory=dict)

    def execute(self, system: DimmSystem) -> ExecContext:
        """Run functionally; returns the context (host outputs in scratch)."""
        ctx = ExecContext(system=system)
        for step in self.steps:
            step.apply(ctx)
        return ctx

    def estimate(self, system: DimmSystem) -> CostLedger:
        """Price the plan without moving any data."""
        ledger = CostLedger()
        for step in self.steps:
            ledger.merge(step.cost(system))
        return ledger

    def run(self, system: DimmSystem, functional: bool = True
            ) -> tuple[CostLedger, ExecContext | None]:
        """Estimate and (optionally) execute; returns (ledger, ctx)."""
        ledger = self.estimate(system)
        ctx = self.execute(system) if functional else None
        return ledger, ctx

    def compile(self, system: DimmSystem, schedule=None):
        """Lower this plan into a replayable compiled program.

        Convenience wrapper around
        :func:`~repro.core.collectives.program.compile_plan` (imported
        lazily: the program module builds on this one).  ``schedule``
        (a :class:`~repro.core.collectives.schedule.Schedule`) caps
        fusion depth and is attached to -- and asserted against -- the
        compiled program.
        """
        from .program import compile_plan
        return compile_plan(self, system, schedule=schedule)

    def describe(self) -> str:
        """Multi-line plan listing for debugging and docs."""
        lines = [f"CommPlan({self.primitive}, {len(self.steps)} steps)"]
        lines.extend(f"  {i}: {s.describe()}" for i, s in enumerate(self.steps))
        return "\n".join(lines)
