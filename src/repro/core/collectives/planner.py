"""Compile collective invocations into :class:`CommPlan` objects.

One planner per primitive.  Every planner accepts an
:class:`~repro.core.collectives.config.OptConfig`; with all techniques
off it emits the conventional host-mediated flow, otherwise the
three-stage PID-Comm flow with the host pass mode implied by the
enabled techniques.

Buffer conventions (bytes, per PE; ``N`` = communication-group size):

==============  =======================  ==========================
primitive       src buffer               dst buffer
==============  =======================  ==========================
alltoall        ``N*c`` (N chunks)       ``N*c``
reduce_scatter  ``N*c`` (N chunks)       ``c``
allgather       ``c``                    ``N*c``
allreduce       ``M`` (``M = N*c``)      ``M``
scatter         host: ``N*c``/instance   ``c``
gather          ``c``                    host: ``N*c``/instance
reduce          ``M``                    host: ``M``/instance
broadcast       host: ``M``/instance     ``M``
==============  =======================  ==========================

ReduceScatter and AllReduce permute the *source* buffer in place as
part of PE-assisted reordering, exactly like the real library's
preparation kernels.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ...dtypes import DataType, ReduceOp, check_op_dtype
from ...errors import CollectiveError
from ..groups import CommGroup, slice_groups
from ..hypercube import HypercubeManager
from .config import OptConfig, FULL
from .plan import CommPlan
from .steps import (
    BroadcastStep,
    FanoutFromHostStep,
    FanoutStep,
    GatherToHostStep,
    HostGlobalExchangeStep,
    HostReduceStep,
    LaunchStep,
    PeReorderStep,
    ReduceExchangeStep,
    RotateExchangeStep,
    ScatterFromHostStep,
    Step,
)

#: Scratch keys used by multi-step plans.
AR_SCRATCH = "allreduce.reduced"
AG_SCRATCH = "allgather.gathered"
GATHER_SCRATCH = "gather.out"
REDUCE_SCRATCH = "reduce.out"


def _prepare(manager: HypercubeManager, dims: str | Sequence[int]
             ) -> tuple[list[CommGroup], int]:
    groups = slice_groups(manager, dims)
    size = groups[0].size
    return groups, size


def _chunk_of(total_bytes: int, nslots: int, dtype: DataType,
              primitive: str) -> int:
    if total_bytes <= 0:
        raise CollectiveError(f"{primitive}: data size must be positive")
    if total_bytes % nslots:
        raise CollectiveError(
            f"{primitive}: per-PE size {total_bytes}B must divide into "
            f"{nslots} chunks (group size)")
    chunk = total_bytes // nslots
    if chunk % dtype.itemsize:
        raise CollectiveError(
            f"{primitive}: chunk of {chunk}B is not a whole number of "
            f"{dtype.name} elements")
    return chunk


def _pass_mode(config: OptConfig, arithmetic: bool, dtype: DataType) -> str:
    """Host pass mode implied by the enabled techniques (Table II)."""
    if config.cross_domain and (not arithmetic or dtype.cross_domain_reducible):
        return "crossdomain"
    if config.in_register:
        return "inregister"
    return "staged"


def _meta(primitive: str, groups: list[CommGroup], config: OptConfig,
          per_pe_bytes: int, out_bytes: int) -> dict:
    size = groups[0].size
    return {
        "primitive": primitive,
        "instances": len(groups),
        "group_size": size,
        # Equal-size groups are the precondition for lowering steps
        # into shared-index-table program ops (hypercube slicing always
        # satisfies it; recorded for program/bench introspection).
        "uniform_groups": all(g.size == size for g in groups),
        "config": config.label,
        "per_pe_bytes": per_pe_bytes,
        "out_bytes_per_pe": out_bytes,
    }


# ----------------------------------------------------------------------
# Non-rooted primitives
# ----------------------------------------------------------------------
def plan_alltoall(manager: HypercubeManager, dims: str | Sequence[int],
                  total_data_size: int, src_offset: int, dst_offset: int,
                  dtype: DataType, config: OptConfig = FULL) -> CommPlan:
    """AlltoAll over the selected dimensions (Figure 7)."""
    groups, n = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, n, dtype, "alltoall")
    steps: list[Step] = [LaunchStep()]
    if not config.pe_reorder:
        steps.append(HostGlobalExchangeStep(
            groups=groups, primitive="alltoall", src_offset=src_offset,
            dst_offset=dst_offset, chunk_bytes=chunk, nslots_in=n,
            nslots_out=n, dtype=dtype))
    else:
        mode = _pass_mode(config, arithmetic=False, dtype=dtype)
        steps.append(PeReorderStep(groups, "rotate_left_rank", src_offset,
                                   dst_offset, chunk, n))
        steps.append(RotateExchangeStep(groups=groups, offset=dst_offset,
                                        chunk_bytes=chunk, nslots=n,
                                        mode=mode))
        steps.append(PeReorderStep(groups, "reflect_rank", dst_offset,
                                   dst_offset, chunk, n))
    return CommPlan("alltoall", steps,
                    _meta("alltoall", groups, config, total_data_size,
                          total_data_size))


def plan_allgather(manager: HypercubeManager, dims: str | Sequence[int],
                   total_data_size: int, src_offset: int, dst_offset: int,
                   dtype: DataType, config: OptConfig = FULL) -> CommPlan:
    """AllGather over the selected dimensions (Figure 8(a)).

    ``total_data_size`` is the per-PE *input* chunk size; every PE ends
    with ``group_size * total_data_size`` bytes at ``dst_offset``.
    """
    groups, n = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, 1, dtype, "allgather")
    steps: list[Step] = [LaunchStep()]
    if len(groups) == 1:
        # Single instance: every PE receives the identical concatenation,
        # so the driver's near-peak broadcast fast path applies (this is
        # why 1-D AllGather is a wash in Figure 18 -- both libraries
        # ride the same broadcast).
        steps.append(GatherToHostStep(
            groups=groups, src_offset=src_offset, chunk_bytes=chunk,
            scratch_key=AG_SCRATCH, mode="inregister"))
        steps.append(BroadcastStep(
            groups=groups, dst_offset=dst_offset, nbytes=n * chunk,
            scratch_key=AG_SCRATCH))
    elif not config.pe_reorder:
        steps.append(HostGlobalExchangeStep(
            groups=groups, primitive="allgather", src_offset=src_offset,
            dst_offset=dst_offset, chunk_bytes=chunk, nslots_in=1,
            nslots_out=n, dtype=dtype))
    else:
        mode = _pass_mode(config, arithmetic=False, dtype=dtype)
        steps.append(FanoutStep(groups=groups, src_offset=src_offset,
                                dst_offset=dst_offset, chunk_bytes=chunk,
                                mode=mode))
        steps.append(PeReorderStep(groups, "reflect_rank", dst_offset,
                                   dst_offset, chunk, n))
    return CommPlan("allgather", steps,
                    _meta("allgather", groups, config, total_data_size,
                          n * total_data_size))


def plan_reduce_scatter(manager: HypercubeManager, dims: str | Sequence[int],
                        total_data_size: int, src_offset: int,
                        dst_offset: int, dtype: DataType, op: ReduceOp,
                        config: OptConfig = FULL) -> CommPlan:
    """ReduceScatter over the selected dimensions (Figure 8(b))."""
    check_op_dtype(op, dtype)
    groups, n = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, n, dtype, "reduce_scatter")
    steps: list[Step] = [LaunchStep()]
    if not config.pe_reorder:
        steps.append(HostGlobalExchangeStep(
            groups=groups, primitive="reduce_scatter", src_offset=src_offset,
            dst_offset=dst_offset, chunk_bytes=chunk, nslots_in=n,
            nslots_out=1, dtype=dtype, op=op))
    else:
        mode = _pass_mode(config, arithmetic=True, dtype=dtype)
        steps.append(PeReorderStep(groups, "rotate_left_rank", src_offset,
                                   src_offset, chunk, n))
        steps.append(ReduceExchangeStep(
            groups=groups, src_offset=src_offset, chunk_bytes=chunk,
            nslots=n, dtype=dtype, op=op, mode=mode, dst_offset=dst_offset))
    return CommPlan("reduce_scatter", steps,
                    _meta("reduce_scatter", groups, config, total_data_size,
                          chunk))


def plan_allreduce(manager: HypercubeManager, dims: str | Sequence[int],
                   total_data_size: int, src_offset: int, dst_offset: int,
                   dtype: DataType, op: ReduceOp,
                   config: OptConfig = FULL) -> CommPlan:
    """AllReduce: fused ReduceScatter + AllGather (Figure 8(c)).

    Unlike ring libraries, the fused form converts the reduced data to
    the PIM domain once and fans it out with byte rotations instead of
    paying a second full collective.
    """
    check_op_dtype(op, dtype)
    groups, n = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, n, dtype, "allreduce")
    steps: list[Step] = [LaunchStep()]
    if not config.pe_reorder:
        steps.append(HostGlobalExchangeStep(
            groups=groups, primitive="allreduce", src_offset=src_offset,
            dst_offset=dst_offset, chunk_bytes=chunk, nslots_in=n,
            nslots_out=n, dtype=dtype, op=op))
    else:
        mode = _pass_mode(config, arithmetic=True, dtype=dtype)
        steps.append(PeReorderStep(groups, "rotate_left_rank", src_offset,
                                   src_offset, chunk, n))
        steps.append(ReduceExchangeStep(
            groups=groups, src_offset=src_offset, chunk_bytes=chunk,
            nslots=n, dtype=dtype, op=op, mode=mode, dst_offset=None,
            scratch_key=AR_SCRATCH))
        steps.append(FanoutFromHostStep(
            groups=groups, scratch_key=AR_SCRATCH, dst_offset=dst_offset,
            chunk_bytes=chunk, mode=mode))
        steps.append(PeReorderStep(groups, "reflect_rank", dst_offset,
                                   dst_offset, chunk, n))
    return CommPlan("allreduce", steps,
                    _meta("allreduce", groups, config, total_data_size,
                          total_data_size))


# ----------------------------------------------------------------------
# Rooted primitives (host as root)
# ----------------------------------------------------------------------
def plan_gather(manager: HypercubeManager, dims: str | Sequence[int],
                total_data_size: int, src_offset: int, dtype: DataType,
                config: OptConfig = FULL) -> CommPlan:
    """Gather each PE's chunk to the host (AllGather step 1 + DT)."""
    groups, _ = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, 1, dtype, "gather")
    mode = "inregister" if config.in_register else "conventional"
    steps: list[Step] = [
        LaunchStep(),
        GatherToHostStep(groups=groups, src_offset=src_offset,
                         chunk_bytes=chunk, scratch_key=GATHER_SCRATCH,
                         mode=mode),
    ]
    return CommPlan("gather", steps,
                    _meta("gather", groups, config, total_data_size, 0))


def plan_scatter(manager: HypercubeManager, dims: str | Sequence[int],
                 total_data_size: int, dst_offset: int, dtype: DataType,
                 payloads: Mapping[int, np.ndarray] | None = None,
                 config: OptConfig = FULL) -> CommPlan:
    """Scatter host chunks to the PEs (ReduceScatter steps 6-7).

    ``total_data_size`` is the per-PE chunk each member receives;
    ``payloads[instance]`` must hold ``group_size * total_data_size``
    bytes (may be omitted for analytic runs).
    """
    groups, _ = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, 1, dtype, "scatter")
    mode = "inregister" if config.in_register else "conventional"
    payload_dict = _payload_bytes(payloads)
    steps: list[Step] = [
        LaunchStep(),
        ScatterFromHostStep(groups=groups, dst_offset=dst_offset,
                            chunk_bytes=chunk, payloads=payload_dict,
                            mode=mode),
    ]
    return CommPlan("scatter", steps,
                    _meta("scatter", groups, config, 0, total_data_size))


def plan_reduce(manager: HypercubeManager, dims: str | Sequence[int],
                total_data_size: int, src_offset: int, dtype: DataType,
                op: ReduceOp, config: OptConfig = FULL) -> CommPlan:
    """Reduce all PEs' vectors to the host (ReduceScatter steps 1-5)."""
    check_op_dtype(op, dtype)
    groups, n = _prepare(manager, dims)
    chunk = _chunk_of(total_data_size, n, dtype, "reduce")
    steps: list[Step] = [LaunchStep()]
    if not config.pe_reorder:
        # Conventional: gather everything, reduce on the host alone.
        steps.append(GatherToHostStep(
            groups=groups, src_offset=src_offset,
            chunk_bytes=total_data_size, scratch_key="reduce.gathered",
            mode="conventional"))
        steps.append(HostReduceStep(
            scratch_key="reduce.gathered", out_key=REDUCE_SCRATCH,
            dtype=dtype, op=op, vectors=n,
            nbytes=total_data_size).with_instances(len(groups)))
    else:
        mode = _pass_mode(config, arithmetic=True, dtype=dtype)
        steps.append(PeReorderStep(groups, "rotate_left_rank", src_offset,
                                   src_offset, chunk, n))
        steps.append(ReduceExchangeStep(
            groups=groups, src_offset=src_offset, chunk_bytes=chunk,
            nslots=n, dtype=dtype, op=op, mode=mode, dst_offset=None,
            scratch_key=REDUCE_SCRATCH))
    return CommPlan("reduce", steps,
                    _meta("reduce", groups, config, total_data_size, 0))


def plan_broadcast(manager: HypercubeManager, dims: str | Sequence[int],
                   total_data_size: int, dst_offset: int, dtype: DataType,
                   payloads: Mapping[int, np.ndarray] | None = None,
                   config: OptConfig = FULL) -> CommPlan:
    """Broadcast host buffers to every member PE.

    Equal for all configs: the native driver broadcast already runs at
    near-peak bandwidth (one domain transfer serves all PEs).
    """
    groups, _ = _prepare(manager, dims)
    _chunk_of(total_data_size, 1, dtype, "broadcast")
    steps: list[Step] = [
        LaunchStep(),
        BroadcastStep(groups=groups, dst_offset=dst_offset,
                      nbytes=total_data_size,
                      payloads=_payload_bytes(payloads)),
    ]
    return CommPlan("broadcast", steps,
                    _meta("broadcast", groups, config, 0, total_data_size))


def _payload_bytes(payloads: Mapping[int, np.ndarray] | None
                   ) -> dict[int, np.ndarray] | None:
    if payloads is None:
        return None
    return {int(k): np.ascontiguousarray(v).reshape(-1).view(np.uint8)
            for k, v in payloads.items()}


PLANNERS = {
    "alltoall": plan_alltoall,
    "allgather": plan_allgather,
    "reduce_scatter": plan_reduce_scatter,
    "allreduce": plan_allreduce,
    "gather": plan_gather,
    "scatter": plan_scatter,
    "reduce": plan_reduce,
    "broadcast": plan_broadcast,
}
