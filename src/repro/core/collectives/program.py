"""Compiled collective programs: lowered, fused, replayable plans.

A cached :class:`~repro.core.collectives.plan.CommPlan` is still
*interpreted*: every ``Step.apply`` re-derives slot permutations,
gather indices, group unions and lane offsets that are pure functions
of the plan key.  :func:`compile_plan` lowers the step list once into a
:class:`CommProgram` -- a short sequence of program ops, each holding

* the concatenated arena row ids of every group member,
* read-only fused ``(lane, slot)`` index tables (PeReorder ∘
  RotateExchange ∘ PeReorder composed into a single fancy index where
  legal, with the CM byte-rotation folded into the same map),
* pre-counted :class:`~repro.hw.host.SimdCounter` charges and WRAM
  tile totals, and
* a pre-priced :class:`~repro.hw.timing.CostLedger`,

so steady-state replay of a cache-hit plan is a handful of numpy
dispatches with zero index math, zero permutation validation, and zero
per-step Python re-derivation.  The interpreted path stays the oracle:
replay must produce bit-identical memory state, host outputs, ledgers,
SIMD counts and WRAM tiles (``tests/test_program.py``).

Two step kinds do not lower (``HostGlobalExchangeStep``,
``HostReduceStep`` -- the conventional-baseline host flows); they are
wrapped in a :class:`StepOp` fallback that calls ``apply`` unchanged,
so every plan compiles even when only partially lowered.

Compiled ops never consult the fault injector; the engine only routes
injector-free systems to program replay (``docs/reliability.md``).
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ...errors import CollectiveError, TransferError
from ...hw.arena import (
    ScratchPool,
    flat_chunk_table,
    take_band_staged,
    wide_dtype,
)
from ...hw.host import SimdCounter
from ...hw.kernels import fold_slots
from ...hw.system import DimmSystem
from ...hw.timing import CostLedger, MachineParams
from .plan import CommPlan, ExecContext, Step


def readonly_table(table: np.ndarray) -> np.ndarray:
    """Materialize an index table as a read-only contiguous intp array."""
    arr = np.ascontiguousarray(table, dtype=np.intp)
    if arr is table:
        arr = arr.copy()
    arr.setflags(write=False)
    return arr


def band_ranges(rows: int, row_bytes: int,
                tile_bytes: int) -> list[tuple[int, int]]:
    """Output-row bands whose gathered tile fits ``tile_bytes``.

    Streamed replay tiles along the *output-row* axis: every op's
    gather is ``out[r, s] = in[lane(r, s), slot(r, s)]`` over
    independent output rows, so any partition of ``[0, rows)`` replays
    exactly -- each band applies its own slice of the index table once,
    keeping total index work identical to the untiled gather.  The
    band height is the largest number of ``row_bytes``-wide output
    rows fitting ``tile_bytes``, clamped to at least one row; the last
    band is shorter when the height does not divide ``rows`` evenly.
    """
    if rows <= 0:
        return []
    band = min(rows, max(1, tile_bytes // max(1, row_bytes)))
    return [(r0, min(r0 + band, rows)) for r0 in range(0, rows, band)]


def _stream_table(op, system: DimmSystem
                  ) -> tuple[np.ndarray, int] | None:
    """The op's cached arena-global gather table (None on scalar).

    Built once per (arena identity, arena version) and cached on the
    op, so steady-state streamed replay re-derives no index math; an
    arena growth between replays rebuilds it against the fresh rows.
    """
    token = system.stream_token()
    if token is None:
        return None
    cached = op._stream_cache
    if cached is not None and cached[0] == token:
        return cached[1], cached[2]
    # Concurrent first touch (two threads replaying this op against a
    # fresh arena) must build the table exactly once and share it
    # read-only thereafter: double-checked under the op's lock.
    with op._stream_lock:
        token = system.stream_token()
        cached = op._stream_cache
        if cached is not None and cached[0] == token:
            return cached[1], cached[2]
        table, width = system.stream_table(
            op.ids, op.ngroups, op.src_offset, op.chunk_bytes,
            op.lane, op.slot)
        # Building the table may itself grow the arena (it touches
        # every source row), so the validity token is read after the
        # build.
        op._stream_cache = (system.stream_token(), table, width)
        return table, width


def _run_bands(units: Sequence, pool: ScratchPool, workers,
               run_one: Callable[[ScratchPool, Any], None]) -> None:
    """Execute per-band work units serially or across a worker pool.

    ``workers`` is the engine's :class:`~repro.engine.parallel
    .WorkerPool` (duck-typed here so core never imports engine), or
    None for today's serial loop.  Parallel dispatch is safe because
    every unit writes a disjoint set of output rows
    (:func:`band_ranges` partitions the row axis) into
    already-materialized arena rows, and each worker gathers through
    its own private scratch pool.  Nested calls (a wave member
    replaying on a worker thread) run inline on that thread.
    """
    if workers is None or workers.workers <= 1 or len(units) <= 1 \
            or workers.in_worker:
        for unit in units:
            run_one(pool, unit)
        if workers is not None:
            workers.count_bands(len(units))
        return

    def task(unit):
        def run() -> None:
            run_one(workers.scratch(), unit)
            workers.count_bands(1)
        return run

    workers.run([task(unit) for unit in units])


def scaled_counter(counter: SimdCounter, factor: int) -> SimdCounter:
    """One group's SIMD charge multiplied across ``factor`` equal groups."""
    return SimdCounter(loads=counter.loads * factor,
                       stores=counter.stores * factor,
                       shuffles=counter.shuffles * factor,
                       transposes=counter.transposes * factor,
                       adds=counter.adds * factor)


def _merged(a: SimdCounter, b: SimdCounter) -> SimdCounter:
    out = SimdCounter()
    out.merge(a)
    out.merge(b)
    return out


class ProgramOp(abc.ABC):
    """One lowered (or fallback) stage of a compiled program."""

    simd: SimdCounter
    wram_tiles: int
    labels: tuple[str, ...]

    @abc.abstractmethod
    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        """Replay this stage against ``ctx.system``."""

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        """Replay tile-by-tile through the scratch pool.

        The default falls back to one untiled :meth:`execute` pass
        (host-flow ops produce inherently full-size host state); tiled
        overrides must stay bit-identical to ``execute`` and charge
        ``ctx.tiles`` with the count :meth:`tile_count` predicts.
        ``workers`` (an engine worker pool, or None) lets banded
        overrides fan independent bands across host threads -- results
        and every counter stay identical; only wall-clock changes.
        """
        self.execute(ctx, payloads)
        ctx.tiles += 1

    def tile_count(self, tile_bytes: int) -> int:
        """Tiles :meth:`execute_streamed` replays at this budget."""
        return 1

    def _charge(self, ctx: ExecContext) -> None:
        ctx.simd.merge(self.simd)
        ctx.wram_tiles += self.wram_tiles

    def describe(self) -> str:
        """Op label built from the source steps it lowers/fuses."""
        inner = " + ".join(self.labels) if self.labels else ""
        return f"{type(self).__name__}({inner})"


@dataclass
class GatherMoveOp(ProgramOp):
    """Pure data movement as one take-by-table gather + one put.

    Covers PeReorder, RotateExchange and Fanout steps, and any legal
    composition of adjacent ones (see :func:`_chainable`).  The fused
    ``out[l, s] = in[lane[l, s], slot[l, s]]`` tables are shared across
    all ``ngroups`` equal-size groups; ``ids`` is their rank-ordered
    concatenation.
    """

    ids: np.ndarray
    ngroups: int
    src_offset: int
    dst_offset: int
    nslots_in: int
    nslots_out: int
    chunk_bytes: int
    lane: np.ndarray
    slot: np.ndarray
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Flatten the table pair once at lowering time; replay then
        # gathers along a single pre-indexed axis (see arena docs).
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots_in)
        self._stream_cache = None
        self._stream_lock = threading.Lock()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots_in,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        ctx.system.put_rows(
            self.ids, self.dst_offset,
            block.reshape(self.ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)

    def _stream_safe(self) -> bool:
        """Whether row-band tiling cannot read bytes a band wrote.

        Each band writes its rows' full destination region before
        later bands read their (arbitrarily cross-lane) sources, so
        streaming is exact only when the source and destination
        regions are disjoint; in-place rewrites fall back to the
        untiled pass.
        """
        src_end = self.src_offset + self.nslots_in * self.chunk_bytes
        dst_end = self.dst_offset + self.nslots_out * self.chunk_bytes
        return src_end <= self.dst_offset or dst_end <= self.src_offset

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]] | None:
        if not self._stream_safe():
            return None
        return band_ranges(self.ids.size,
                           self.nslots_out * self.chunk_bytes, tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        bands = self._bands(tile_bytes)
        return len(bands) if bands is not None else 1

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        bands = self._bands(tile_bytes)
        if bands is None:
            super().execute_streamed(ctx, payloads, pool, tile_bytes,
                                     workers)
            return
        row_bytes = self.nslots_out * self.chunk_bytes
        system = ctx.system
        table = _stream_table(self, system)
        grouped = None
        if table is None:  # scalar backend: stage once, band-take after
            stage = pool.ping((self.ids.size,
                               self.nslots_in * self.chunk_bytes))
            system.stage_rows(self.ids, self.src_offset,
                              self.nslots_in * self.chunk_bytes, stage)
            grouped = stage.view(wide_dtype(self.chunk_bytes)).reshape(
                self.ngroups, -1)

        def run_band(scratch: ScratchPool, band: tuple[int, int]) -> None:
            r0, r1 = band
            if table is not None:
                flat_table, width = table
                out = scratch.pong((r1 - r0, flat_table.shape[1]),
                                   wide_dtype(width))
                system.take_band_flat(flat_table, width, r0, r1, out)
            else:
                out = scratch.pong((r1 - r0, self.nslots_out),
                                   wide_dtype(self.chunk_bytes))
                take_band_staged(grouped, self.flat, r0, r1, out)
            system.put_rows(
                self.ids[r0:r1], self.dst_offset,
                out.view(np.uint8).reshape(r1 - r0, row_bytes))

        _run_bands(bands, pool, workers, run_band)
        ctx.tiles += len(bands)
        self._charge(ctx)


@dataclass
class ReduceFoldOp(ProgramOp):
    """ReduceExchange lowered: one rotation gather + slot fold.

    Integer dtypes fold with one ``ufunc.reduce`` call (modular
    fixed-width arithmetic is order-independent, so any fold order is
    bit-exact); floats keep the explicit left fold whose order matches
    the interpreted backends, so floating-point results stay
    bit-identical to the scalar oracle.
    """

    ids: np.ndarray
    ngroups: int
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    nslots: int
    dtype: Any
    op: Any
    lane: np.ndarray
    slot: np.ndarray
    dst_offset: int | None = None
    scratch_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots)
        self._stream_cache = None
        self._stream_lock = threading.Lock()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        values = block.view(self.dtype.np_dtype)
        acc = fold_slots(values, self.op)
        if self.dst_offset is not None:
            raw = np.ascontiguousarray(acc).view(np.uint8)
            ctx.system.put_rows(self.ids, self.dst_offset,
                                raw.reshape(self.ids.size, self.chunk_bytes))
        if self.scratch_key is not None:
            ctx.scratch[self.scratch_key] = {
                inst: acc[g] for g, inst in enumerate(self.instances)}
        self._charge(ctx)

    def _stream_safe(self) -> bool:
        """Banding safety for the fold's read-many/write-one overlap.

        A band's destination chunks must not alias any source slot a
        later band still reads (the rotation gather crosses lanes), so
        streaming is exact only when the destination chunk lies
        entirely outside the source block -- or when there is no MRAM
        destination at all (host-scratch-only reduces).
        """
        if self.dst_offset is None:
            return True
        src_end = self.src_offset + self.nslots * self.chunk_bytes
        dst_end = self.dst_offset + self.chunk_bytes
        return src_end <= self.dst_offset or dst_end <= self.src_offset

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]] | None:
        if not self._stream_safe():
            return None
        return band_ranges(self.ids.size, self.nslots * self.chunk_bytes,
                           tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        bands = self._bands(tile_bytes)
        return len(bands) if bands is not None else 1

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        bands = self._bands(tile_bytes)
        if bands is None:
            super().execute_streamed(ctx, payloads, pool, tile_bytes,
                                     workers)
            return
        item = self.dtype.itemsize
        np_dtype = self.dtype.np_dtype
        lanes = self.lane.shape[0]
        elems = self.chunk_bytes // item
        # Host scratch escapes the replay (it backs reduce host
        # outputs), so it is genuinely new state per call -- the one
        # allocation streaming keeps, O(payload / nslots).
        full = (np.empty((self.ids.size, elems), dtype=np_dtype)
                if self.scratch_key is not None else None)
        system = ctx.system
        table = _stream_table(self, system)
        grouped = None
        if table is None:  # scalar backend: stage once, band-take after
            stage = pool.ping((self.ids.size,
                               self.nslots * self.chunk_bytes))
            system.stage_rows(self.ids, self.src_offset,
                              self.nslots * self.chunk_bytes, stage)
            grouped = stage.view(wide_dtype(self.chunk_bytes)).reshape(
                self.ngroups, -1)

        def run_band(scratch: ScratchPool, rows: tuple[int, int]) -> None:
            r0, r1 = rows
            band = r1 - r0
            if table is not None:
                flat_table, width = table
                gathered = scratch.pong((band, flat_table.shape[1]),
                                        wide_dtype(width))
                system.take_band_flat(flat_table, width, r0, r1,
                                      gathered)
            else:
                gathered = scratch.pong((band, self.nslots),
                                        wide_dtype(self.chunk_bytes))
                take_band_staged(grouped, self.flat, r0, r1, gathered)
            values = gathered.view(np.uint8).reshape(
                band, self.nslots, self.chunk_bytes).view(np_dtype)
            # Folds stay band-local (no cross-band arithmetic), so the
            # fold order -- and every float bit -- is identical at any
            # worker count.
            acc = fold_slots(values, self.op,
                             out=scratch.fold((band, elems), np_dtype))
            if self.dst_offset is not None:
                system.put_rows(self.ids[r0:r1], self.dst_offset,
                                acc.view(np.uint8))
            if full is not None:
                full[r0:r1] = acc

        _run_bands(bands, pool, workers, run_band)
        if full is not None:
            shaped = full.reshape(self.ngroups, lanes, elems)
            ctx.scratch[self.scratch_key] = {
                inst: shaped[g] for g, inst in enumerate(self.instances)}
        ctx.tiles += len(bands)
        self._charge(ctx)


@dataclass
class FanoutScratchOp(ProgramOp):
    """FanoutFromHost lowered: fan host-resident reduced rows back out.

    ``lane`` indexes rows of each instance's ``(lanes, chunk)`` scratch
    matrix; a trailing reflect PeReorder fuses into the same table
    (see :func:`_fuse`), which for AllReduce collapses the whole tail
    to ``out[l, p] = acc[p]``.
    """

    group_ids: tuple[np.ndarray, ...]
    ids: np.ndarray
    instances: tuple[int, ...]
    scratch_key: str
    lane: np.ndarray
    dst_offset: int
    chunk_bytes: int
    nslots_out: int
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        lanes = self.lane.shape[0]
        for ids, inst in zip(self.group_ids, self.instances):
            row = np.ascontiguousarray(results[inst]).view(np.uint8)
            if row.shape != (lanes, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({lanes}, {self.chunk_bytes})")
            fanned = row[self.lane]
            ctx.system.put_rows(
                ids, self.dst_offset,
                fanned.reshape(ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]]:
        # Source rows live in host scratch, destination in MRAM --
        # banding is always safe here.
        return band_ranges(self.lane.shape[0],
                           self.nslots_out * self.chunk_bytes, tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        return len(self._bands(tile_bytes)) * len(self.group_ids)

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        bands = self._bands(tile_bytes)
        lanes = self.lane.shape[0]
        row_bytes = self.nslots_out * self.chunk_bytes
        system = ctx.system
        # (instance, band) units are all independent: instances write
        # different groups' rows, bands write disjoint rows of one
        # group, so the whole cross product fans out to the workers.
        units = []
        for ids, inst in zip(self.group_ids, self.instances):
            row = np.ascontiguousarray(results[inst]).view(np.uint8)
            if row.shape != (lanes, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({lanes}, {self.chunk_bytes})")
            # The scratch matrix is contiguous, so each chunk is one
            # wide element regardless of alignment.
            chunks = row.view(wide_dtype(self.chunk_bytes)).reshape(-1)
            units.extend((ids, chunks, r0, r1) for r0, r1 in bands)

        def run_unit(scratch: ScratchPool, unit) -> None:
            ids, chunks, r0, r1 = unit
            fanned = scratch.pong((r1 - r0, self.nslots_out),
                                  wide_dtype(self.chunk_bytes))
            np.take(chunks, self.lane[r0:r1], out=fanned)
            system.put_rows(
                ids[r0:r1], self.dst_offset,
                fanned.view(np.uint8).reshape(r1 - r0, row_bytes))

        _run_bands(units, pool, workers, run_unit)
        ctx.tiles += len(bands) * len(self.group_ids)
        self._charge(ctx)


@dataclass
class HostPullOp(ProgramOp):
    """GatherToHost lowered: per-instance lane reads into host scratch."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    scratch_key: str
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = {}
        for ids, inst in zip(self.group_ids, self.instances):
            block = ctx.system.take_rows(ids, self.src_offset,
                                         self.chunk_bytes)
            results[inst] = block.reshape(-1)
        ctx.scratch[self.scratch_key] = results
        self._charge(ctx)


@dataclass
class HostPushOp(ProgramOp):
    """ScatterFromHost lowered: per-instance payload rows pushed down."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    chunk_bytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional scatter needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            expected = ids.size * self.chunk_bytes
            if buf.size != expected:
                raise TransferError(
                    f"scatter payload of {buf.size}B for instance "
                    f"{inst}, expected {expected}B")
            ctx.system.put_rows(ids, self.dst_offset,
                                buf.reshape(ids.size, self.chunk_bytes))
        self._charge(ctx)


@dataclass
class BroadcastFillOp(ProgramOp):
    """BroadcastStep lowered: one fill per instance, no delivery guard."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    nbytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional broadcast needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            if buf.size != self.nbytes:
                raise TransferError(
                    f"broadcast payload of {buf.size}B, expected "
                    f"{self.nbytes}B")
            ctx.system.fill_lanes(ids, self.dst_offset, buf)
        self._charge(ctx)


@dataclass
class StepOp(ProgramOp):
    """Fallback: replay a step that has no lowering via ``apply``."""

    step: Step
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        self.step.apply(ctx)

    def describe(self) -> str:
        """Label of the wrapped (uncompiled) step."""
        return f"StepOp({self.step.describe()})"


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def _compose_tables(lane_a: np.ndarray, slot_a: np.ndarray,
                    lane_b: np.ndarray, slot_b: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Index tables of ``b after a``: ``out[l,s] = in[lane[l,s], slot[l,s]]``.

    If ``mid = a(in)`` and ``out = b(mid)`` then ``out[l, s] =
    mid[lane_b[l,s], slot_b[l,s]] = in[lane_a[lane_b, slot_b],
    slot_a[lane_b, slot_b]]``.
    """
    return (readonly_table(lane_a[lane_b, slot_b]),
            readonly_table(slot_a[lane_b, slot_b]))


def _chainable(a: GatherMoveOp, b: GatherMoveOp) -> bool:
    """Whether ``a``'s output region is fully consumed-and-overwritten by ``b``.

    Fusing drops ``a``'s intermediate write, which is only invisible
    when ``b`` reads exactly that region (``a.dst == b.src``) and
    writes every byte of it back in place (``b.dst == b.src`` with
    equal in/out slot counts) -- then the final memory state is
    identical to the interpreted two-step execution.
    """
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and a.ngroups == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_moves(a: GatherMoveOp, b: GatherMoveOp) -> GatherMoveOp:
    lane, slot = _compose_tables(a.lane, a.slot, b.lane, b.slot)
    return GatherMoveOp(
        ids=a.ids, ngroups=a.ngroups, src_offset=a.src_offset,
        dst_offset=b.dst_offset, nslots_in=a.nslots_in,
        nslots_out=b.nslots_out, chunk_bytes=a.chunk_bytes,
        lane=lane, slot=slot, simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _fanout_chainable(a: FanoutScratchOp, b: GatherMoveOp) -> bool:
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and len(a.group_ids) == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_fanout(a: FanoutScratchOp, b: GatherMoveOp) -> FanoutScratchOp:
    # a's lane table indexes scratch rows directly (no slot axis), so
    # composing with b only re-routes through b's (lane, slot) pair.
    lane = readonly_table(a.lane[b.lane, b.slot])
    return FanoutScratchOp(
        group_ids=a.group_ids, ids=a.ids, instances=a.instances,
        scratch_key=a.scratch_key, lane=lane, dst_offset=b.dst_offset,
        chunk_bytes=a.chunk_bytes, nslots_out=b.nslots_out,
        simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _op_width(op: ProgramOp) -> int:
    """Source ops absorbed into one program op (labels accumulate)."""
    return max(1, len(op.labels))


def _fuse(ops: list[ProgramOp],
          max_width: int | None = None) -> list[ProgramOp]:
    """Greedy adjacent-pair fusion over the lowered op list.

    ``max_width`` caps how many source ops one fused op may absorb
    (the schedule's ``fusion_depth``): a pair only fuses when the
    combined label width stays within the cap, so ``max_width=1``
    disables fusion entirely and None keeps the unlimited greedy pass.
    """
    fused: list[ProgramOp] = []

    def fits(prev: ProgramOp, op: ProgramOp) -> bool:
        return (max_width is None
                or _op_width(prev) + _op_width(op) <= max_width)

    for op in ops:
        prev = fused[-1] if fused else None
        if isinstance(op, GatherMoveOp):
            if isinstance(prev, GatherMoveOp) and _chainable(prev, op) \
                    and fits(prev, op):
                fused[-1] = _fuse_moves(prev, op)
                continue
            if isinstance(prev, FanoutScratchOp) and _fanout_chainable(
                    prev, op) and fits(prev, op):
                fused[-1] = _fuse_fanout(prev, op)
                continue
        fused.append(op)
    return fused


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------
@dataclass
class CommProgram:
    """A compiled, fused, pre-priced execution program for one plan."""

    primitive: str
    plan: CommPlan
    ops: list[ProgramOp]
    total_steps: int
    lowered_steps: int
    fused_away: int
    _ledger: CostLedger
    _params: MachineParams
    #: The :class:`~repro.core.collectives.schedule.Schedule` this
    #: program was compiled under, if any (None = default compilation:
    #: unlimited greedy fusion).
    schedule: Any = None

    @property
    def fully_lowered(self) -> bool:
        """True when no op falls back to interpreted ``Step.apply``."""
        return all(not isinstance(op, StepOp) for op in self.ops)

    def priced(self, system: DimmSystem) -> CostLedger:
        """The pre-priced ledger (a fresh copy), repriced only when the
        system's machine parameters changed since compilation."""
        if system.params is not self._params:
            self._ledger = self.plan.estimate(system)
            self._params = system.params
        return self._ledger.copy()

    def tile_counts(self, tile_bytes: int) -> list[int]:
        """Per-op tile counts a streamed replay at this budget runs."""
        return [op.tile_count(tile_bytes) for op in self.ops]

    def pipeline_depth(self, tile_bytes: int) -> int:
        """Software-pipeline depth: the deepest single op's tile count."""
        return max(self.tile_counts(tile_bytes), default=1)

    def replay(self, system: DimmSystem,
               payloads: Mapping[int, np.ndarray] | None = None, *,
               tile_bytes: int | None = None,
               pool: ScratchPool | None = None,
               workers=None) -> tuple[CostLedger, ExecContext]:
        """Execute the compiled ops; returns (ledger, context).

        Bit-identical to interpreting the source plan: same memory
        state, scratch outputs, SIMD counts and WRAM tiles -- at a
        fraction of the dispatch work.

        Pass ``tile_bytes`` to stream: every op replays tile-by-tile
        through ``pool`` (a fresh :class:`ScratchPool` when None),
        bounding peak working memory to O(tile) instead of O(payload)
        and pricing the two-stage tile pipeline via
        :meth:`CostLedger.pipelined` -- the memory state and host
        outputs stay bit-identical to the untiled replay and the
        interpreted oracle; only the modelled overlap credit differs.

        Pass ``workers`` (an engine worker pool) to fan each op's
        independent row bands across host threads; ops still replay in
        order, the tile count, pipeline depth, ledger and every result
        byte are unchanged -- parallelism is wall-clock only.
        """
        ledger = self.priced(system)
        ctx = ExecContext(system=system)
        if tile_bytes is None:
            for op in self.ops:
                op.execute(ctx, payloads)
            return ledger, ctx
        if tile_bytes <= 0:
            raise CollectiveError(
                f"tile_bytes must be positive, got {tile_bytes}")
        if pool is None:
            pool = ScratchPool()
        depth = 1
        for op in self.ops:
            pool.release()
            before = ctx.tiles
            op.execute_streamed(ctx, payloads, pool, tile_bytes, workers)
            depth = max(depth, ctx.tiles - before)
        ctx.peak_scratch_bytes = pool.peak_bytes
        if workers is not None:
            ctx.peak_scratch_bytes += workers.scratch_peak_bytes
        return ledger.pipelined(depth), ctx

    def describe(self) -> str:
        """Multi-line program listing for debugging and docs."""
        lines = [f"CommProgram({self.primitive}, {len(self.ops)} ops from "
                 f"{self.total_steps} steps, "
                 f"{self.lowered_steps} lowered, {self.fused_away} fused)"]
        if self.schedule is not None:
            lines.append(f"  schedule: {self.schedule.describe()}")
        lines.extend(f"  {i}: {op.describe()}"
                     for i, op in enumerate(self.ops))
        return "\n".join(lines)


def compile_plan(plan: CommPlan, system: DimmSystem,
                 schedule=None) -> CommProgram:
    """Lower a plan's steps into a :class:`CommProgram` and fuse them.

    Each step's ``lower(system)`` hook yields its program ops (or None
    for no lowering, in which case the step rides along as a
    :class:`StepOp`); a greedy pass then composes adjacent index-map
    ops wherever dropping the intermediate write is invisible.  The
    plan's analytic cost is priced once, here, so replay never calls
    ``estimate`` again.

    ``schedule`` (a :class:`~repro.core.collectives.schedule.Schedule`)
    caps the fusion pass at ``schedule.fusion_depth`` source ops per
    fused op, attaches the schedule to the program, and asserts the
    resulting structure via :meth:`Schedule.check` -- a mis-scheduled
    compilation fails loudly at compile time, never at replay.
    """
    ops: list[ProgramOp] = []
    lowered = 0
    for step in plan.steps:
        step_ops = step.lower(system)
        if step_ops is None:
            ops.append(StepOp(step, labels=(step.describe(),)))
        else:
            lowered += 1
            ops.extend(step_ops)
    before = len(ops)
    ops = _fuse(ops, schedule.fusion_depth if schedule is not None else None)
    program = CommProgram(
        primitive=plan.primitive, plan=plan, ops=ops,
        total_steps=len(plan.steps), lowered_steps=lowered,
        fused_away=before - len(ops), _ledger=plan.estimate(system),
        _params=system.params, schedule=schedule)
    if schedule is not None:
        schedule.check(program)
    return program
