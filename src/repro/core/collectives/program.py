"""Compiled collective programs: lowered, fused, replayable plans.

A cached :class:`~repro.core.collectives.plan.CommPlan` is still
*interpreted*: every ``Step.apply`` re-derives slot permutations,
gather indices, group unions and lane offsets that are pure functions
of the plan key.  :func:`compile_plan` lowers the step list once into a
:class:`CommProgram` -- a short sequence of program ops, each holding

* the concatenated arena row ids of every group member,
* read-only fused ``(lane, slot)`` index tables (PeReorder ∘
  RotateExchange ∘ PeReorder composed into a single fancy index where
  legal, with the CM byte-rotation folded into the same map),
* pre-counted :class:`~repro.hw.host.SimdCounter` charges and WRAM
  tile totals, and
* a pre-priced :class:`~repro.hw.timing.CostLedger`,

so steady-state replay of a cache-hit plan is a handful of numpy
dispatches with zero index math, zero permutation validation, and zero
per-step Python re-derivation.  The interpreted path stays the oracle:
replay must produce bit-identical memory state, host outputs, ledgers,
SIMD counts and WRAM tiles (``tests/test_program.py``).

Two step kinds do not lower (``HostGlobalExchangeStep``,
``HostReduceStep`` -- the conventional-baseline host flows); they are
wrapped in a :class:`StepOp` fallback that calls ``apply`` unchanged,
so every plan compiles even when only partially lowered.

Compiled ops never consult the fault injector; the engine only routes
injector-free systems to program replay (``docs/reliability.md``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ...errors import CollectiveError, TransferError
from ...hw.arena import flat_chunk_table
from ...hw.host import SimdCounter
from ...hw.system import DimmSystem
from ...hw.timing import CostLedger, MachineParams
from .plan import CommPlan, ExecContext, Step


def readonly_table(table: np.ndarray) -> np.ndarray:
    """Materialize an index table as a read-only contiguous intp array."""
    arr = np.ascontiguousarray(table, dtype=np.intp)
    if arr is table:
        arr = arr.copy()
    arr.setflags(write=False)
    return arr


def scaled_counter(counter: SimdCounter, factor: int) -> SimdCounter:
    """One group's SIMD charge multiplied across ``factor`` equal groups."""
    return SimdCounter(loads=counter.loads * factor,
                       stores=counter.stores * factor,
                       shuffles=counter.shuffles * factor,
                       transposes=counter.transposes * factor,
                       adds=counter.adds * factor)


def _merged(a: SimdCounter, b: SimdCounter) -> SimdCounter:
    out = SimdCounter()
    out.merge(a)
    out.merge(b)
    return out


class ProgramOp(abc.ABC):
    """One lowered (or fallback) stage of a compiled program."""

    simd: SimdCounter
    wram_tiles: int
    labels: tuple[str, ...]

    @abc.abstractmethod
    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        """Replay this stage against ``ctx.system``."""

    def _charge(self, ctx: ExecContext) -> None:
        ctx.simd.merge(self.simd)
        ctx.wram_tiles += self.wram_tiles

    def describe(self) -> str:
        """Op label built from the source steps it lowers/fuses."""
        inner = " + ".join(self.labels) if self.labels else ""
        return f"{type(self).__name__}({inner})"


@dataclass
class GatherMoveOp(ProgramOp):
    """Pure data movement as one take-by-table gather + one put.

    Covers PeReorder, RotateExchange and Fanout steps, and any legal
    composition of adjacent ones (see :func:`_chainable`).  The fused
    ``out[l, s] = in[lane[l, s], slot[l, s]]`` tables are shared across
    all ``ngroups`` equal-size groups; ``ids`` is their rank-ordered
    concatenation.
    """

    ids: np.ndarray
    ngroups: int
    src_offset: int
    dst_offset: int
    nslots_in: int
    nslots_out: int
    chunk_bytes: int
    lane: np.ndarray
    slot: np.ndarray
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Flatten the table pair once at lowering time; replay then
        # gathers along a single pre-indexed axis (see arena docs).
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots_in)

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots_in,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        ctx.system.put_rows(
            self.ids, self.dst_offset,
            block.reshape(self.ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)


@dataclass
class ReduceFoldOp(ProgramOp):
    """ReduceExchange lowered: one rotation gather + slot fold.

    Integer dtypes fold with one ``ufunc.reduce`` call (modular
    fixed-width arithmetic is order-independent, so any fold order is
    bit-exact); floats keep the explicit left fold whose order matches
    the interpreted backends, so floating-point results stay
    bit-identical to the scalar oracle.
    """

    ids: np.ndarray
    ngroups: int
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    nslots: int
    dtype: Any
    op: Any
    lane: np.ndarray
    slot: np.ndarray
    dst_offset: int | None = None
    scratch_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots)

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        values = block.view(self.dtype.np_dtype)
        if self.dtype.np_dtype.kind in "iub":
            acc = self.op.reduce_axis(values, axis=2)
        else:
            acc = values[:, :, 0].copy()
            for s in range(1, self.nslots):
                acc = self.op.combine(acc, values[:, :, s])
        if self.dst_offset is not None:
            raw = np.ascontiguousarray(acc).view(np.uint8)
            ctx.system.put_rows(self.ids, self.dst_offset,
                                raw.reshape(self.ids.size, self.chunk_bytes))
        if self.scratch_key is not None:
            ctx.scratch[self.scratch_key] = {
                inst: acc[g] for g, inst in enumerate(self.instances)}
        self._charge(ctx)


@dataclass
class FanoutScratchOp(ProgramOp):
    """FanoutFromHost lowered: fan host-resident reduced rows back out.

    ``lane`` indexes rows of each instance's ``(lanes, chunk)`` scratch
    matrix; a trailing reflect PeReorder fuses into the same table
    (see :func:`_fuse`), which for AllReduce collapses the whole tail
    to ``out[l, p] = acc[p]``.
    """

    group_ids: tuple[np.ndarray, ...]
    ids: np.ndarray
    instances: tuple[int, ...]
    scratch_key: str
    lane: np.ndarray
    dst_offset: int
    chunk_bytes: int
    nslots_out: int
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        lanes = self.lane.shape[0]
        for ids, inst in zip(self.group_ids, self.instances):
            row = np.ascontiguousarray(results[inst]).view(np.uint8)
            if row.shape != (lanes, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({lanes}, {self.chunk_bytes})")
            fanned = row[self.lane]
            ctx.system.put_rows(
                ids, self.dst_offset,
                fanned.reshape(ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)


@dataclass
class HostPullOp(ProgramOp):
    """GatherToHost lowered: per-instance lane reads into host scratch."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    scratch_key: str
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = {}
        for ids, inst in zip(self.group_ids, self.instances):
            block = ctx.system.take_rows(ids, self.src_offset,
                                         self.chunk_bytes)
            results[inst] = block.reshape(-1)
        ctx.scratch[self.scratch_key] = results
        self._charge(ctx)


@dataclass
class HostPushOp(ProgramOp):
    """ScatterFromHost lowered: per-instance payload rows pushed down."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    chunk_bytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional scatter needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            expected = ids.size * self.chunk_bytes
            if buf.size != expected:
                raise TransferError(
                    f"scatter payload of {buf.size}B for instance "
                    f"{inst}, expected {expected}B")
            ctx.system.put_rows(ids, self.dst_offset,
                                buf.reshape(ids.size, self.chunk_bytes))
        self._charge(ctx)


@dataclass
class BroadcastFillOp(ProgramOp):
    """BroadcastStep lowered: one fill per instance, no delivery guard."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    nbytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional broadcast needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            if buf.size != self.nbytes:
                raise TransferError(
                    f"broadcast payload of {buf.size}B, expected "
                    f"{self.nbytes}B")
            ctx.system.fill_lanes(ids, self.dst_offset, buf)
        self._charge(ctx)


@dataclass
class StepOp(ProgramOp):
    """Fallback: replay a step that has no lowering via ``apply``."""

    step: Step
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        self.step.apply(ctx)

    def describe(self) -> str:
        """Label of the wrapped (uncompiled) step."""
        return f"StepOp({self.step.describe()})"


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def _compose_tables(lane_a: np.ndarray, slot_a: np.ndarray,
                    lane_b: np.ndarray, slot_b: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Index tables of ``b after a``: ``out[l,s] = in[lane[l,s], slot[l,s]]``.

    If ``mid = a(in)`` and ``out = b(mid)`` then ``out[l, s] =
    mid[lane_b[l,s], slot_b[l,s]] = in[lane_a[lane_b, slot_b],
    slot_a[lane_b, slot_b]]``.
    """
    return (readonly_table(lane_a[lane_b, slot_b]),
            readonly_table(slot_a[lane_b, slot_b]))


def _chainable(a: GatherMoveOp, b: GatherMoveOp) -> bool:
    """Whether ``a``'s output region is fully consumed-and-overwritten by ``b``.

    Fusing drops ``a``'s intermediate write, which is only invisible
    when ``b`` reads exactly that region (``a.dst == b.src``) and
    writes every byte of it back in place (``b.dst == b.src`` with
    equal in/out slot counts) -- then the final memory state is
    identical to the interpreted two-step execution.
    """
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and a.ngroups == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_moves(a: GatherMoveOp, b: GatherMoveOp) -> GatherMoveOp:
    lane, slot = _compose_tables(a.lane, a.slot, b.lane, b.slot)
    return GatherMoveOp(
        ids=a.ids, ngroups=a.ngroups, src_offset=a.src_offset,
        dst_offset=b.dst_offset, nslots_in=a.nslots_in,
        nslots_out=b.nslots_out, chunk_bytes=a.chunk_bytes,
        lane=lane, slot=slot, simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _fanout_chainable(a: FanoutScratchOp, b: GatherMoveOp) -> bool:
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and len(a.group_ids) == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_fanout(a: FanoutScratchOp, b: GatherMoveOp) -> FanoutScratchOp:
    # a's lane table indexes scratch rows directly (no slot axis), so
    # composing with b only re-routes through b's (lane, slot) pair.
    lane = readonly_table(a.lane[b.lane, b.slot])
    return FanoutScratchOp(
        group_ids=a.group_ids, ids=a.ids, instances=a.instances,
        scratch_key=a.scratch_key, lane=lane, dst_offset=b.dst_offset,
        chunk_bytes=a.chunk_bytes, nslots_out=b.nslots_out,
        simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _fuse(ops: list[ProgramOp]) -> list[ProgramOp]:
    """Greedy adjacent-pair fusion over the lowered op list."""
    fused: list[ProgramOp] = []
    for op in ops:
        prev = fused[-1] if fused else None
        if isinstance(op, GatherMoveOp):
            if isinstance(prev, GatherMoveOp) and _chainable(prev, op):
                fused[-1] = _fuse_moves(prev, op)
                continue
            if isinstance(prev, FanoutScratchOp) and _fanout_chainable(
                    prev, op):
                fused[-1] = _fuse_fanout(prev, op)
                continue
        fused.append(op)
    return fused


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------
@dataclass
class CommProgram:
    """A compiled, fused, pre-priced execution program for one plan."""

    primitive: str
    plan: CommPlan
    ops: list[ProgramOp]
    total_steps: int
    lowered_steps: int
    fused_away: int
    _ledger: CostLedger
    _params: MachineParams

    @property
    def fully_lowered(self) -> bool:
        """True when no op falls back to interpreted ``Step.apply``."""
        return all(not isinstance(op, StepOp) for op in self.ops)

    def priced(self, system: DimmSystem) -> CostLedger:
        """The pre-priced ledger (a fresh copy), repriced only when the
        system's machine parameters changed since compilation."""
        if system.params is not self._params:
            self._ledger = self.plan.estimate(system)
            self._params = system.params
        return self._ledger.copy()

    def replay(self, system: DimmSystem,
               payloads: Mapping[int, np.ndarray] | None = None
               ) -> tuple[CostLedger, ExecContext]:
        """Execute the compiled ops; returns (ledger, context).

        Bit-identical to interpreting the source plan: same memory
        state, scratch outputs, SIMD counts and WRAM tiles -- at a
        fraction of the dispatch work.
        """
        ledger = self.priced(system)
        ctx = ExecContext(system=system)
        for op in self.ops:
            op.execute(ctx, payloads)
        return ledger, ctx

    def describe(self) -> str:
        """Multi-line program listing for debugging and docs."""
        lines = [f"CommProgram({self.primitive}, {len(self.ops)} ops from "
                 f"{self.total_steps} steps, "
                 f"{self.lowered_steps} lowered, {self.fused_away} fused)"]
        lines.extend(f"  {i}: {op.describe()}"
                     for i, op in enumerate(self.ops))
        return "\n".join(lines)


def compile_plan(plan: CommPlan, system: DimmSystem) -> CommProgram:
    """Lower a plan's steps into a :class:`CommProgram` and fuse them.

    Each step's ``lower(system)`` hook yields its program ops (or None
    for no lowering, in which case the step rides along as a
    :class:`StepOp`); a greedy pass then composes adjacent index-map
    ops wherever dropping the intermediate write is invisible.  The
    plan's analytic cost is priced once, here, so replay never calls
    ``estimate`` again.
    """
    ops: list[ProgramOp] = []
    lowered = 0
    for step in plan.steps:
        step_ops = step.lower(system)
        if step_ops is None:
            ops.append(StepOp(step, labels=(step.describe(),)))
        else:
            lowered += 1
            ops.extend(step_ops)
    before = len(ops)
    ops = _fuse(ops)
    return CommProgram(
        primitive=plan.primitive, plan=plan, ops=ops,
        total_steps=len(plan.steps), lowered_steps=lowered,
        fused_away=before - len(ops), _ledger=plan.estimate(system),
        _params=system.params)
