"""Compiled collective programs: lowered, fused, replayable plans.

A cached :class:`~repro.core.collectives.plan.CommPlan` is still
*interpreted*: every ``Step.apply`` re-derives slot permutations,
gather indices, group unions and lane offsets that are pure functions
of the plan key.  :func:`compile_plan` lowers the step list once into a
:class:`CommProgram` -- a short sequence of program ops, each holding

* the concatenated arena row ids of every group member,
* read-only fused ``(lane, slot)`` index tables (PeReorder ∘
  RotateExchange ∘ PeReorder composed into a single fancy index where
  legal, with the CM byte-rotation folded into the same map),
* pre-counted :class:`~repro.hw.host.SimdCounter` charges and WRAM
  tile totals, and
* a pre-priced :class:`~repro.hw.timing.CostLedger`,

so steady-state replay of a cache-hit plan is a handful of numpy
dispatches with zero index math, zero permutation validation, and zero
per-step Python re-derivation.  The interpreted path stays the oracle:
replay must produce bit-identical memory state, host outputs, ledgers,
SIMD counts and WRAM tiles (``tests/test_program.py``).

Two step kinds do not lower (``HostGlobalExchangeStep``,
``HostReduceStep`` -- the conventional-baseline host flows); they are
wrapped in a :class:`StepOp` fallback that calls ``apply`` unchanged,
so every plan compiles even when only partially lowered.

Compiled ops never consult the fault injector; the engine only routes
injector-free systems to program replay (``docs/reliability.md``).
"""

from __future__ import annotations

import abc
import functools
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ...errors import CollectiveError, TransferError
from ...hw.arena import (
    ScratchPool,
    flat_chunk_table,
    scan_chunk_classes,
    take_band_staged,
    wide_dtype,
)
from ...hw.host import SimdCounter
from ...hw.kernels import fold_slots
from ...hw.system import DimmSystem
from ...hw.timing import ELIDABLE_CATEGORIES, CostLedger, MachineParams
from .plan import CommPlan, ExecContext, Step

#: Smallest per-op source block (bytes) the elision layer bothers to
#: fingerprint-scan.  Below this the scan's fixed Python dispatch costs
#: more than any possible transfer saving, so tiny ops always take the
#: plain replay path regardless of content.
ELIDE_MIN_SOURCE_BYTES = 1 << 14


def readonly_table(table: np.ndarray) -> np.ndarray:
    """Materialize an index table as a read-only contiguous intp array."""
    arr = np.ascontiguousarray(table, dtype=np.intp)
    if arr is table:
        arr = arr.copy()
    arr.setflags(write=False)
    return arr


@functools.lru_cache(maxsize=8)
def _hash_mults(width: int) -> np.ndarray:
    """Per-column random odd multipliers for :func:`_row_reps` keys."""
    rng = np.random.default_rng(0x9E3779B97F4A7C15)
    mults = rng.integers(1, np.iinfo(np.uint64).max, width,
                         dtype=np.uint64) | np.uint64(1)
    mults.setflags(write=False)
    return mults


def _row_reps(mat: np.ndarray) -> np.ndarray:
    """First-occurrence representative of each distinct row of ``mat``.

    ``rep[r]`` is the lowest row index whose content equals row ``r``
    (``rep[r] == r`` for uniques) -- the bookkeeping
    ``np.unique(mat, axis=0)`` would give, at a fraction of its
    void-typed sort cost: rows are nominated by a wrapping uint64 dot
    with fixed random odd column multipliers and byte-verified against
    the nominated representative, so a hash collision demotes the row
    (and any row nominated behind it) to unique -- a missed elision,
    never a wrong alias.  ``mat`` must be C-contiguous with a 64-bit
    integer dtype.
    """
    rows = mat.shape[0]
    keys = (mat.view(np.uint64) * _hash_mults(mat.shape[1])).sum(
        axis=1, dtype=np.uint64)
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    head = np.ones(rows, dtype=bool)
    head[1:] = ks[1:] != ks[:-1]
    rep = np.empty(rows, dtype=np.intp)
    rep[order] = order[head][np.cumsum(head) - 1]
    cand = np.flatnonzero(rep != np.arange(rows))
    if cand.size:
        ok = (mat[cand] == mat[rep[cand]]).all(axis=1)
        rep[cand[~ok]] = cand[~ok]
    return rep


def band_ranges(rows: int, row_bytes: int,
                tile_bytes: int) -> list[tuple[int, int]]:
    """Output-row bands whose gathered tile fits ``tile_bytes``.

    Streamed replay tiles along the *output-row* axis: every op's
    gather is ``out[r, s] = in[lane(r, s), slot(r, s)]`` over
    independent output rows, so any partition of ``[0, rows)`` replays
    exactly -- each band applies its own slice of the index table once,
    keeping total index work identical to the untiled gather.  The
    band height is the largest number of ``row_bytes``-wide output
    rows fitting ``tile_bytes``, clamped to at least one row; the last
    band is shorter when the height does not divide ``rows`` evenly.
    """
    if rows <= 0:
        return []
    band = min(rows, max(1, tile_bytes // max(1, row_bytes)))
    return [(r0, min(r0 + band, rows)) for r0 in range(0, rows, band)]


def _stream_table(op, system: DimmSystem
                  ) -> tuple[np.ndarray, int] | None:
    """The op's cached arena-global gather table (None on scalar).

    Built once per (arena identity, arena version) and cached on the
    op, so steady-state streamed replay re-derives no index math; an
    arena growth between replays rebuilds it against the fresh rows.
    """
    token = system.stream_token()
    if token is None:
        return None
    cached = op._stream_cache
    if cached is not None and cached[0] == token:
        return cached[1], cached[2]
    # Concurrent first touch (two threads replaying this op against a
    # fresh arena) must build the table exactly once and share it
    # read-only thereafter: double-checked under the op's lock.
    with op._stream_lock:
        token = system.stream_token()
        cached = op._stream_cache
        if cached is not None and cached[0] == token:
            return cached[1], cached[2]
        table, width = system.stream_table(
            op.ids, op.ngroups, op.src_offset, op.chunk_bytes,
            op.lane, op.slot)
        # Building the table may itself grow the arena (it touches
        # every source row), so the validity token is read after the
        # build.
        op._stream_cache = (system.stream_token(), table, width)
        return table, width


def _run_bands(units: Sequence, pool: ScratchPool, workers,
               run_one: Callable[[ScratchPool, Any], None]) -> None:
    """Execute per-band work units serially or across a worker pool.

    ``workers`` is the engine's :class:`~repro.engine.parallel
    .WorkerPool` (duck-typed here so core never imports engine), or
    None for today's serial loop.  Parallel dispatch is safe because
    every unit writes a disjoint set of output rows
    (:func:`band_ranges` partitions the row axis) into
    already-materialized arena rows, and each worker gathers through
    its own private scratch pool.  Nested calls (a wave member
    replaying on a worker thread) run inline on that thread.
    """
    if workers is None or workers.workers <= 1 or len(units) <= 1 \
            or workers.in_worker:
        for unit in units:
            run_one(pool, unit)
        if workers is not None:
            workers.count_bands(len(units))
        return

    def task(unit):
        def run() -> None:
            run_one(workers.scratch(), unit)
            workers.count_bands(1)
        return run

    workers.run([task(unit) for unit in units])


def scaled_counter(counter: SimdCounter, factor: int) -> SimdCounter:
    """One group's SIMD charge multiplied across ``factor`` equal groups."""
    return SimdCounter(loads=counter.loads * factor,
                       stores=counter.stores * factor,
                       shuffles=counter.shuffles * factor,
                       transposes=counter.transposes * factor,
                       adds=counter.adds * factor)


def _merged(a: SimdCounter, b: SimdCounter) -> SimdCounter:
    out = SimdCounter()
    out.merge(a)
    out.merge(b)
    return out


class ProgramOp(abc.ABC):
    """One lowered (or fallback) stage of a compiled program."""

    simd: SimdCounter
    wram_tiles: int
    labels: tuple[str, ...]

    @abc.abstractmethod
    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        """Replay this stage against ``ctx.system``."""

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        """Replay tile-by-tile through the scratch pool.

        The default falls back to one untiled :meth:`execute` pass
        (host-flow ops produce inherently full-size host state); tiled
        overrides must stay bit-identical to ``execute`` and charge
        ``ctx.tiles`` with the count :meth:`tile_count` predicts.
        ``workers`` (an engine worker pool, or None) lets banded
        overrides fan independent bands across host threads -- results
        and every counter stay identical; only wall-clock changes.
        """
        self.execute(ctx, payloads)
        ctx.tiles += 1

    def tile_count(self, tile_bytes: int) -> int:
        """Tiles :meth:`execute_streamed` replays at this budget."""
        return 1

    def transfer_bytes(self) -> int:
        """Modelled bus/staging bytes this op moves (0 = unknown).

        Used by the elision layer to scale the ledger's transfer-bound
        categories by the fraction of bytes elisions removed; ops that
        cannot quantify their traffic (``StepOp`` fallbacks) report 0,
        which only ever *understates* the elision credit.
        """
        return 0

    def _charge(self, ctx: ExecContext) -> None:
        ctx.simd.merge(self.simd)
        ctx.wram_tiles += self.wram_tiles

    def describe(self) -> str:
        """Op label built from the source steps it lowers/fuses."""
        inner = " + ".join(self.labels) if self.labels else ""
        return f"{type(self).__name__}({inner})"


@dataclass
class _ElisionPlan:
    """One op's fingerprint-scan result, shared by both replay modes.

    ``zero_row[r]`` -- output row ``r`` gathers only all-zero chunks;
    ``rep_row[r]`` -- lowest row in ``r``'s group whose gathered
    content is byte-identical (``rep_row[r] == r`` for uniques; zero
    rows all share one signature and are handled by the zero mask
    first).  ``table`` is the cached vectorized stream table (None on
    scalar, where ``block`` keeps the staged source copy the scan
    already paid for).
    """

    table: tuple[np.ndarray, int] | None
    block: np.ndarray | None
    zero_row: np.ndarray
    rep_row: np.ndarray


@dataclass
class GatherMoveOp(ProgramOp):
    """Pure data movement as one take-by-table gather + one put.

    Covers PeReorder, RotateExchange and Fanout steps, and any legal
    composition of adjacent ones (see :func:`_chainable`).  The fused
    ``out[l, s] = in[lane[l, s], slot[l, s]]`` tables are shared across
    all ``ngroups`` equal-size groups; ``ids`` is their rank-ordered
    concatenation.

    When the replay context carries ``elide=True`` (content-aware
    transfer elision, ``docs/performance.md``), the op first
    fingerprint-scans its source block
    (:func:`~repro.hw.arena.scan_chunk_classes`) and gathers only one
    representative per distinct output-row content class: all-zero rows
    become a single broadcast fill, duplicate rows an aliased host-side
    copy of their representative.  Every elision is byte-verified
    before aliasing, so results stay bit-identical to the interpreted
    oracle at any elision rate; ops whose source and destination
    regions overlap (``_stream_safe`` false) never elide.
    """

    ids: np.ndarray
    ngroups: int
    src_offset: int
    dst_offset: int
    nslots_in: int
    nslots_out: int
    chunk_bytes: int
    lane: np.ndarray
    slot: np.ndarray
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Flatten the table pair once at lowering time; replay then
        # gathers along a single pre-indexed axis (see arena docs).
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots_in)
        self._stream_cache = None
        self._stream_lock = threading.Lock()
        self._rows_unique = None
        self._plan_cache = None

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        if ctx.elide and self._elidable():
            plan, dst_clean = self._elision_plan(ctx)
            if plan is not None:
                self._execute_elided(ctx, plan, dst_clean)
                return
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots_in,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        ctx.system.put_rows(
            self.ids, self.dst_offset,
            block.reshape(self.ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        return self.ids.size * (self.nslots_in + self.nslots_out) \
            * self.chunk_bytes

    def _elidable(self) -> bool:
        """Whether this op may take the fingerprint-guided path at all.

        Requires disjoint source/destination regions (elided writes
        land before a full gather would, so aliasing ops fall back to
        the plain replay -- same safety argument as streaming) and a
        source block big enough that scanning can ever pay.
        """
        return (self._stream_safe()
                and self.ids.size * self.nslots_in * self.chunk_bytes
                >= ELIDE_MIN_SOURCE_BYTES)

    def _table_rows_unique(self) -> bool:
        """Whether no two lanes gather the same slot sequence (static).

        Computed once per op from the fused table and cached.  With
        distinct table rows *and* no duplicate chunk classes, two live
        output rows can only share a content signature when every
        position where their tables differ is zero on both sides --
        possible, but not worth the per-replay signature hashing it
        takes to find, so those rows are left un-elided (zero rows are
        still caught by the zero mask).  Aliasing tables -- allgather's
        broadcast rows -- keep the full signature path.
        """
        cached = self._rows_unique
        if cached is None:
            reps = _row_reps(self.flat)
            cached = bool((reps == np.arange(reps.size)).all())
            self._rows_unique = cached
        return cached

    def _elision_plan(self, ctx: ExecContext
                      ) -> tuple[_ElisionPlan | None, bool]:
        """Cache-validated elision plan plus a destination-clean flag.

        The scan result is pure content fingerprinting, so it stays
        valid until some write may have touched the op's source
        interval; the arena's write log
        (:meth:`~repro.hw.system.DimmSystem.content_changed`) proves
        absence of such writes, and steady-state replay of an
        unchanged payload then reuses the cached plan without
        re-reading a single source byte.  The flag additionally
        reports that the *destination* interval saw no write since
        this op's own last eliding replay -- its zero rows still read
        zero, so even the verify-first zero fill can be skipped.  A
        failed validation, a changed arena, or the scalar backend
        (which keeps no write log) falls back to a fresh scan.

        Cache hits charge ``chunks_scanned`` (the plan's content
        coverage, which elision-rate accounting and per-tenant
        attribution key on) but no ``scan_bytes`` -- nothing was
        re-read, so the ledger prices no scan time.
        """
        system = ctx.system
        epoch = system.content_epoch()
        if epoch is not None:
            cached = self._plan_cache
            if (cached is not None
                    and cached[0] == system.stream_token()
                    and not system.content_changed(
                        cached[1], self.src_offset,
                        self.nslots_in * self.chunk_bytes)):
                token, _, plan, dst_epoch = cached
                dst_clean = (dst_epoch is not None
                             and not system.content_changed(
                                 dst_epoch, self.dst_offset,
                                 self.nslots_out * self.chunk_bytes))
                # Re-key at the current epoch: the source check above
                # just proved every epoch in between clean.
                self._plan_cache = (token, epoch, plan, dst_epoch)
                ctx.chunks_scanned += self.ids.size * self.nslots_in
                return plan, dst_clean
        plan = self._scan_plan(ctx)
        if epoch is not None:
            # Token read *after* the scan: building the stream table
            # may have grown the arena, and the plan's table belongs
            # to the post-growth layout.  The epoch stays the
            # pre-scan capture, so any write racing the scan makes
            # the very next validation fail (conservative).
            self._plan_cache = (system.stream_token(), epoch, plan, None)
        return plan, False

    def _mark_dst_clean(self, ctx: ExecContext) -> None:
        """Stamp the cache: dst now holds this plan's replay output."""
        cached = self._plan_cache
        epoch = ctx.system.content_epoch()
        if cached is not None and epoch is not None:
            self._plan_cache = (cached[0], cached[1], cached[2], epoch)

    def _scan_plan(self, ctx: ExecContext) -> _ElisionPlan | None:
        """Scan the source block, derive per-output-row content classes.

        Returns None when no output row is elidable (the caller then
        takes the plain path); the scan's cost is charged to the
        context either way -- that *is* the dense-traffic overhead the
        ledger prices (and the sampled nomination inside
        :func:`~repro.hw.arena.scan_chunk_classes` keeps near zero).
        """
        system = ctx.system
        n = self.ids.size
        lanes = n // self.ngroups
        src_bytes = self.nslots_in * self.chunk_bytes
        # The stream table is built first: on the vectorized backend it
        # touches every source row and may grow the arena, which would
        # invalidate the zero-copy scan window taken below.
        table = _stream_table(self, system)
        block = system.scan_view(self.ids, self.src_offset, src_bytes)
        chunks = block.reshape(self.ngroups, lanes, self.nslots_in,
                               self.chunk_bytes)
        zero, cls, scanned = scan_chunk_classes(chunks, self.ngroups)
        nch = lanes * self.nslots_in
        ctx.chunks_scanned += n * self.nslots_in
        ctx.scan_bytes += scanned
        has_zero = bool(zero.any())
        has_dups = cls is not None
        if not has_zero and not has_dups:
            return None  # dense content: scan paid, nothing to map
        arange = np.arange(n)
        zero_g = zero.reshape(self.ngroups, nch)
        if not has_dups and self._table_rows_unique():
            # No duplicate chunks and no aliasing lanes: only all-zero
            # rows can elide, and a boolean gather through the table
            # finds them without building signatures at all.
            zero_row = zero_g[:, self.flat].all(axis=2).reshape(n)
            if not zero_row.any():
                return None
            rep_row = arange
        else:
            # Map chunk classes through the gather table: an output
            # row's signature is the class vector of the chunks it
            # would gather, with zero chunks collapsed to -1 (all zero
            # content is equal regardless of which source chunk it
            # came from).  Class ids are group-global flat indices, so
            # equal signatures across groups cannot collide.
            if cls is None:
                cls = np.arange(zero.size, dtype=np.intp)
            cls[zero] = np.intp(-1)
            sig = np.ascontiguousarray(
                cls.reshape(self.ngroups, nch)[:, self.flat].reshape(
                    n, self.nslots_out))
            zero_row = (sig == np.intp(-1)).all(axis=1)
            rep_row = _row_reps(sig)
            if not zero_row.any() and (rep_row == arange).all():
                return None  # fully dense rows: scan paid, no savings
        return _ElisionPlan(
            table=table, block=None if table is not None else block,
            zero_row=zero_row, rep_row=rep_row)

    def _gather_select(self, system: DimmSystem, plan: _ElisionPlan,
                       rows: np.ndarray, out: np.ndarray) -> None:
        """Gather only ``rows`` (representatives) into wide ``out``."""
        if plan.table is not None:
            flat_table, width = plan.table
            if rows.size:
                system.take_select_flat(flat_table, width, rows, out)
            return
        lanes = self.ids.size // self.ngroups
        grouped = plan.block.view(wide_dtype(self.chunk_bytes)).reshape(
            self.ngroups, -1)
        edges = np.searchsorted(
            rows, np.arange(1, self.ngroups + 1) * lanes)
        start = 0
        for g, end in enumerate(edges):
            if end > start:
                np.take(grouped[g],
                        self.flat[rows[start:end] - g * lanes],
                        out=out[start:end])
            start = end

    def _count_elided(self, ctx: ExecContext, n_zero: int,
                      n_dup: int) -> None:
        row_bytes = self.nslots_out * self.chunk_bytes
        ctx.chunks_elided += (n_zero + n_dup) * self.nslots_out
        ctx.elided_bytes += (n_zero + n_dup) * row_bytes
        # Zero rows skip both bus directions (nothing gathered, the
        # fill image is one shared row); duplicate rows still pay the
        # destination write but skip the gather direction.
        ctx.saved_transfer_bytes += (2 * n_zero + n_dup) * row_bytes

    def _execute_elided(self, ctx: ExecContext, plan: _ElisionPlan,
                        dst_clean: bool = False) -> None:
        system = ctx.system
        n = self.ids.size
        row_bytes = self.nslots_out * self.chunk_bytes
        arange = np.arange(n)
        live = ~plan.zero_row
        reps = np.flatnonzero(live & (plan.rep_row == arange))
        dups = np.flatnonzero(live & (plan.rep_row != arange))
        if plan.table is not None:
            flat_table, width = plan.table
            out = np.empty((reps.size, flat_table.shape[1]),
                           dtype=wide_dtype(width))
        else:
            out = np.empty((reps.size, self.nslots_out),
                           dtype=wide_dtype(self.chunk_bytes))
        self._gather_select(system, plan, reps, out)
        rep_bytes = out.view(np.uint8).reshape(reps.size, row_bytes)
        if reps.size:
            system.put_rows(self.ids[reps], self.dst_offset, rep_bytes)
        if dups.size:
            pos = np.searchsorted(reps, plan.rep_row[dups])
            system.put_rows(self.ids[dups], self.dst_offset,
                            rep_bytes[pos])
        n_zero = n - reps.size - dups.size
        if n_zero and not dst_clean:
            system.zero_fill_lanes(self.ids[plan.zero_row],
                                   self.dst_offset, row_bytes)
        self._count_elided(ctx, n_zero, dups.size)
        self._mark_dst_clean(ctx)
        self._charge(ctx)

    def _stream_safe(self) -> bool:
        """Whether row-band tiling cannot read bytes a band wrote.

        Each band writes its rows' full destination region before
        later bands read their (arbitrarily cross-lane) sources, so
        streaming is exact only when the source and destination
        regions are disjoint; in-place rewrites fall back to the
        untiled pass.
        """
        src_end = self.src_offset + self.nslots_in * self.chunk_bytes
        dst_end = self.dst_offset + self.nslots_out * self.chunk_bytes
        return src_end <= self.dst_offset or dst_end <= self.src_offset

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]] | None:
        if not self._stream_safe():
            return None
        return band_ranges(self.ids.size,
                           self.nslots_out * self.chunk_bytes, tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        bands = self._bands(tile_bytes)
        return len(bands) if bands is not None else 1

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        bands = self._bands(tile_bytes)
        if bands is None:
            super().execute_streamed(ctx, payloads, pool, tile_bytes,
                                     workers)
            return
        if ctx.elide and self._elidable():
            plan, dst_clean = self._elision_plan(ctx)
            if plan is not None:
                self._stream_elided(ctx, plan, bands, pool, workers,
                                    dst_clean)
                return
        row_bytes = self.nslots_out * self.chunk_bytes
        system = ctx.system
        table = _stream_table(self, system)
        grouped = None
        if table is None:  # scalar backend: stage once, band-take after
            stage = pool.ping((self.ids.size,
                               self.nslots_in * self.chunk_bytes))
            system.stage_rows(self.ids, self.src_offset,
                              self.nslots_in * self.chunk_bytes, stage)
            grouped = stage.view(wide_dtype(self.chunk_bytes)).reshape(
                self.ngroups, -1)

        def run_band(scratch: ScratchPool, band: tuple[int, int]) -> None:
            r0, r1 = band
            if table is not None:
                flat_table, width = table
                out = scratch.pong((r1 - r0, flat_table.shape[1]),
                                   wide_dtype(width))
                system.take_band_flat(flat_table, width, r0, r1, out)
            else:
                out = scratch.pong((r1 - r0, self.nslots_out),
                                   wide_dtype(self.chunk_bytes))
                take_band_staged(grouped, self.flat, r0, r1, out)
            system.put_rows(
                self.ids[r0:r1], self.dst_offset,
                out.view(np.uint8).reshape(r1 - r0, row_bytes))

        _run_bands(bands, pool, workers, run_band)
        ctx.tiles += len(bands)
        self._charge(ctx)

    def _stream_elided(self, ctx: ExecContext, plan: _ElisionPlan,
                       bands: list[tuple[int, int]], pool: ScratchPool,
                       workers, dst_clean: bool = False) -> None:
        """Banded elided replay: dedup stays band-local.

        Every band's work unit (fill rows, representative rows,
        duplicate rows plus their representative positions) is derived
        serially here before any band runs, so the partition -- and
        every counter -- is deterministic at any worker count, and
        band workers never touch shared context state.  A duplicate's
        representative is the first matching row *within its own
        band*, so a band never reads another band's gather output.
        """
        system = ctx.system
        row_bytes = self.nslots_out * self.chunk_bytes
        units = []
        n_zero = n_dup = 0
        for r0, r1 in bands:
            zmask = plan.zero_row[r0:r1]
            live = np.flatnonzero(~zmask) + r0
            _, first, inv = np.unique(plan.rep_row[live],
                                      return_index=True,
                                      return_inverse=True)
            rep_local = live[first[inv.reshape(-1)]]
            repmask = rep_local == live
            reps = live[repmask]
            dups = live[~repmask]
            pos = np.searchsorted(reps, rep_local[~repmask])
            zrows = np.flatnonzero(zmask) + r0
            units.append((reps, dups, pos, zrows))
            n_zero += zrows.size
            n_dup += dups.size

        def run_band(scratch: ScratchPool, unit) -> None:
            reps, dups, pos, zrows = unit
            if plan.table is not None:
                flat_table, width = plan.table
                out = scratch.pong((reps.size, flat_table.shape[1]),
                                   wide_dtype(width))
            else:
                out = scratch.pong((reps.size, self.nslots_out),
                                   wide_dtype(self.chunk_bytes))
            self._gather_select(system, plan, reps, out)
            rep_bytes = out.view(np.uint8).reshape(reps.size, row_bytes)
            if reps.size:
                system.put_rows(self.ids[reps], self.dst_offset,
                                rep_bytes)
            if dups.size:
                system.put_rows(self.ids[dups], self.dst_offset,
                                rep_bytes[pos])
            if zrows.size and not dst_clean:
                system.zero_fill_lanes(self.ids[zrows], self.dst_offset,
                                       row_bytes)

        _run_bands(units, pool, workers, run_band)
        self._count_elided(ctx, n_zero, n_dup)
        self._mark_dst_clean(ctx)
        ctx.tiles += len(bands)
        self._charge(ctx)


@dataclass
class ReduceFoldOp(ProgramOp):
    """ReduceExchange lowered: one rotation gather + slot fold.

    Integer dtypes fold with one ``ufunc.reduce`` call (modular
    fixed-width arithmetic is order-independent, so any fold order is
    bit-exact); floats keep the explicit left fold whose order matches
    the interpreted backends, so floating-point results stay
    bit-identical to the scalar oracle.
    """

    ids: np.ndarray
    ngroups: int
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    nslots: int
    dtype: Any
    op: Any
    lane: np.ndarray
    slot: np.ndarray
    dst_offset: int | None = None
    scratch_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.flat = flat_chunk_table(self.lane, self.slot, self.nslots)
        self._stream_cache = None
        self._stream_lock = threading.Lock()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        block = ctx.system.take_by_table(
            self.ids, self.ngroups, self.src_offset, self.nslots,
            self.chunk_bytes, self.lane, self.slot, self.flat)
        values = block.view(self.dtype.np_dtype)
        acc = fold_slots(values, self.op)
        if self.dst_offset is not None:
            raw = np.ascontiguousarray(acc).view(np.uint8)
            ctx.system.put_rows(self.ids, self.dst_offset,
                                raw.reshape(self.ids.size, self.chunk_bytes))
        if self.scratch_key is not None:
            ctx.scratch[self.scratch_key] = {
                inst: acc[g] for g, inst in enumerate(self.instances)}
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        down = self.ids.size * self.chunk_bytes \
            if self.dst_offset is not None else 0
        return self.ids.size * self.nslots * self.chunk_bytes + down

    def _stream_safe(self) -> bool:
        """Banding safety for the fold's read-many/write-one overlap.

        A band's destination chunks must not alias any source slot a
        later band still reads (the rotation gather crosses lanes), so
        streaming is exact only when the destination chunk lies
        entirely outside the source block -- or when there is no MRAM
        destination at all (host-scratch-only reduces).
        """
        if self.dst_offset is None:
            return True
        src_end = self.src_offset + self.nslots * self.chunk_bytes
        dst_end = self.dst_offset + self.chunk_bytes
        return src_end <= self.dst_offset or dst_end <= self.src_offset

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]] | None:
        if not self._stream_safe():
            return None
        return band_ranges(self.ids.size, self.nslots * self.chunk_bytes,
                           tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        bands = self._bands(tile_bytes)
        return len(bands) if bands is not None else 1

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        bands = self._bands(tile_bytes)
        if bands is None:
            super().execute_streamed(ctx, payloads, pool, tile_bytes,
                                     workers)
            return
        item = self.dtype.itemsize
        np_dtype = self.dtype.np_dtype
        lanes = self.lane.shape[0]
        elems = self.chunk_bytes // item
        # Host scratch escapes the replay (it backs reduce host
        # outputs), so it is genuinely new state per call -- the one
        # allocation streaming keeps, O(payload / nslots).
        full = (np.empty((self.ids.size, elems), dtype=np_dtype)
                if self.scratch_key is not None else None)
        system = ctx.system
        table = _stream_table(self, system)
        grouped = None
        if table is None:  # scalar backend: stage once, band-take after
            stage = pool.ping((self.ids.size,
                               self.nslots * self.chunk_bytes))
            system.stage_rows(self.ids, self.src_offset,
                              self.nslots * self.chunk_bytes, stage)
            grouped = stage.view(wide_dtype(self.chunk_bytes)).reshape(
                self.ngroups, -1)

        def run_band(scratch: ScratchPool, rows: tuple[int, int]) -> None:
            r0, r1 = rows
            band = r1 - r0
            if table is not None:
                flat_table, width = table
                gathered = scratch.pong((band, flat_table.shape[1]),
                                        wide_dtype(width))
                system.take_band_flat(flat_table, width, r0, r1,
                                      gathered)
            else:
                gathered = scratch.pong((band, self.nslots),
                                        wide_dtype(self.chunk_bytes))
                take_band_staged(grouped, self.flat, r0, r1, gathered)
            values = gathered.view(np.uint8).reshape(
                band, self.nslots, self.chunk_bytes).view(np_dtype)
            # Folds stay band-local (no cross-band arithmetic), so the
            # fold order -- and every float bit -- is identical at any
            # worker count.
            acc = fold_slots(values, self.op,
                             out=scratch.fold((band, elems), np_dtype))
            if self.dst_offset is not None:
                system.put_rows(self.ids[r0:r1], self.dst_offset,
                                acc.view(np.uint8))
            if full is not None:
                full[r0:r1] = acc

        _run_bands(bands, pool, workers, run_band)
        if full is not None:
            shaped = full.reshape(self.ngroups, lanes, elems)
            ctx.scratch[self.scratch_key] = {
                inst: shaped[g] for g, inst in enumerate(self.instances)}
        ctx.tiles += len(bands)
        self._charge(ctx)


@dataclass
class FanoutScratchOp(ProgramOp):
    """FanoutFromHost lowered: fan host-resident reduced rows back out.

    ``lane`` indexes rows of each instance's ``(lanes, chunk)`` scratch
    matrix; a trailing reflect PeReorder fuses into the same table
    (see :func:`_fuse`), which for AllReduce collapses the whole tail
    to ``out[l, p] = acc[p]``.
    """

    group_ids: tuple[np.ndarray, ...]
    ids: np.ndarray
    instances: tuple[int, ...]
    scratch_key: str
    lane: np.ndarray
    dst_offset: int
    chunk_bytes: int
    nslots_out: int
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        lanes = self.lane.shape[0]
        for ids, inst in zip(self.group_ids, self.instances):
            row = np.ascontiguousarray(results[inst]).view(np.uint8)
            if row.shape != (lanes, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({lanes}, {self.chunk_bytes})")
            fanned = row[self.lane]
            ctx.system.put_rows(
                ids, self.dst_offset,
                fanned.reshape(ids.size, self.nslots_out * self.chunk_bytes))
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        return self.ids.size * self.nslots_out * self.chunk_bytes

    def _bands(self, tile_bytes: int) -> list[tuple[int, int]]:
        # Source rows live in host scratch, destination in MRAM --
        # banding is always safe here.
        return band_ranges(self.lane.shape[0],
                           self.nslots_out * self.chunk_bytes, tile_bytes)

    def tile_count(self, tile_bytes: int) -> int:
        return len(self._bands(tile_bytes)) * len(self.group_ids)

    def execute_streamed(self, ctx: ExecContext,
                         payloads: Mapping[int, np.ndarray] | None,
                         pool: ScratchPool, tile_bytes: int,
                         workers=None) -> None:
        results = ctx.scratch.get(self.scratch_key)
        if results is None:
            raise CollectiveError(
                f"no host scratch {self.scratch_key!r}; run the reduce "
                "exchange first")
        bands = self._bands(tile_bytes)
        lanes = self.lane.shape[0]
        row_bytes = self.nslots_out * self.chunk_bytes
        system = ctx.system
        # (instance, band) units are all independent: instances write
        # different groups' rows, bands write disjoint rows of one
        # group, so the whole cross product fans out to the workers.
        units = []
        for ids, inst in zip(self.group_ids, self.instances):
            row = np.ascontiguousarray(results[inst]).view(np.uint8)
            if row.shape != (lanes, self.chunk_bytes):
                raise TransferError(
                    f"scratch row {row.shape} does not match group "
                    f"({lanes}, {self.chunk_bytes})")
            # The scratch matrix is contiguous, so each chunk is one
            # wide element regardless of alignment.
            chunks = row.view(wide_dtype(self.chunk_bytes)).reshape(-1)
            units.extend((ids, chunks, r0, r1) for r0, r1 in bands)

        def run_unit(scratch: ScratchPool, unit) -> None:
            ids, chunks, r0, r1 = unit
            fanned = scratch.pong((r1 - r0, self.nslots_out),
                                  wide_dtype(self.chunk_bytes))
            np.take(chunks, self.lane[r0:r1], out=fanned)
            system.put_rows(
                ids[r0:r1], self.dst_offset,
                fanned.view(np.uint8).reshape(r1 - r0, row_bytes))

        _run_bands(units, pool, workers, run_unit)
        ctx.tiles += len(bands) * len(self.group_ids)
        self._charge(ctx)


@dataclass
class HostPullOp(ProgramOp):
    """GatherToHost lowered: per-instance lane reads into host scratch."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    src_offset: int
    chunk_bytes: int
    scratch_key: str
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        results = {}
        for ids, inst in zip(self.group_ids, self.instances):
            block = ctx.system.take_rows(ids, self.src_offset,
                                         self.chunk_bytes)
            results[inst] = block.reshape(-1)
        ctx.scratch[self.scratch_key] = results
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        return sum(ids.size for ids in self.group_ids) * self.chunk_bytes


@dataclass
class HostPushOp(ProgramOp):
    """ScatterFromHost lowered: per-instance payload rows pushed down."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    chunk_bytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional scatter needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            expected = ids.size * self.chunk_bytes
            if buf.size != expected:
                raise TransferError(
                    f"scatter payload of {buf.size}B for instance "
                    f"{inst}, expected {expected}B")
            ctx.system.put_rows(ids, self.dst_offset,
                                buf.reshape(ids.size, self.chunk_bytes))
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        return sum(ids.size for ids in self.group_ids) * self.chunk_bytes


@dataclass
class BroadcastFillOp(ProgramOp):
    """BroadcastStep lowered: one fill per instance, no delivery guard."""

    group_ids: tuple[np.ndarray, ...]
    instances: tuple[int, ...]
    dst_offset: int
    nbytes: int
    source_key: str | None = None
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        source = payloads
        if source is None and self.source_key is not None:
            source = ctx.scratch.get(self.source_key)
        if source is None:
            raise CollectiveError(
                "functional broadcast needs payloads or a scratch key")
        for ids, inst in zip(self.group_ids, self.instances):
            buf = np.asarray(source[inst], dtype=np.uint8)
            if buf.size != self.nbytes:
                raise TransferError(
                    f"broadcast payload of {buf.size}B, expected "
                    f"{self.nbytes}B")
            ctx.system.fill_lanes(ids, self.dst_offset, buf)
        self._charge(ctx)

    def transfer_bytes(self) -> int:
        return sum(ids.size for ids in self.group_ids) * self.nbytes


@dataclass
class StepOp(ProgramOp):
    """Fallback: replay a step that has no lowering via ``apply``."""

    step: Step
    simd: SimdCounter = field(default_factory=SimdCounter)
    wram_tiles: int = 0
    labels: tuple[str, ...] = ()

    def execute(self, ctx: ExecContext,
                payloads: Mapping[int, np.ndarray] | None) -> None:
        self.step.apply(ctx)

    def describe(self) -> str:
        """Label of the wrapped (uncompiled) step."""
        return f"StepOp({self.step.describe()})"


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def _compose_tables(lane_a: np.ndarray, slot_a: np.ndarray,
                    lane_b: np.ndarray, slot_b: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Index tables of ``b after a``: ``out[l,s] = in[lane[l,s], slot[l,s]]``.

    If ``mid = a(in)`` and ``out = b(mid)`` then ``out[l, s] =
    mid[lane_b[l,s], slot_b[l,s]] = in[lane_a[lane_b, slot_b],
    slot_a[lane_b, slot_b]]``.
    """
    return (readonly_table(lane_a[lane_b, slot_b]),
            readonly_table(slot_a[lane_b, slot_b]))


def _chainable(a: GatherMoveOp, b: GatherMoveOp) -> bool:
    """Whether ``a``'s output region is fully consumed-and-overwritten by ``b``.

    Fusing drops ``a``'s intermediate write, which is only invisible
    when ``b`` reads exactly that region (``a.dst == b.src``) and
    writes every byte of it back in place (``b.dst == b.src`` with
    equal in/out slot counts) -- then the final memory state is
    identical to the interpreted two-step execution.
    """
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and a.ngroups == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_moves(a: GatherMoveOp, b: GatherMoveOp) -> GatherMoveOp:
    lane, slot = _compose_tables(a.lane, a.slot, b.lane, b.slot)
    return GatherMoveOp(
        ids=a.ids, ngroups=a.ngroups, src_offset=a.src_offset,
        dst_offset=b.dst_offset, nslots_in=a.nslots_in,
        nslots_out=b.nslots_out, chunk_bytes=a.chunk_bytes,
        lane=lane, slot=slot, simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _fanout_chainable(a: FanoutScratchOp, b: GatherMoveOp) -> bool:
    return (a.dst_offset == b.src_offset == b.dst_offset
            and a.chunk_bytes == b.chunk_bytes
            and a.nslots_out == b.nslots_in == b.nslots_out
            and len(a.group_ids) == b.ngroups
            and np.array_equal(a.ids, b.ids))


def _fuse_fanout(a: FanoutScratchOp, b: GatherMoveOp) -> FanoutScratchOp:
    # a's lane table indexes scratch rows directly (no slot axis), so
    # composing with b only re-routes through b's (lane, slot) pair.
    lane = readonly_table(a.lane[b.lane, b.slot])
    return FanoutScratchOp(
        group_ids=a.group_ids, ids=a.ids, instances=a.instances,
        scratch_key=a.scratch_key, lane=lane, dst_offset=b.dst_offset,
        chunk_bytes=a.chunk_bytes, nslots_out=b.nslots_out,
        simd=_merged(a.simd, b.simd),
        wram_tiles=a.wram_tiles + b.wram_tiles, labels=a.labels + b.labels)


def _op_width(op: ProgramOp) -> int:
    """Source ops absorbed into one program op (labels accumulate)."""
    return max(1, len(op.labels))


def _fuse(ops: list[ProgramOp],
          max_width: int | None = None) -> list[ProgramOp]:
    """Greedy adjacent-pair fusion over the lowered op list.

    ``max_width`` caps how many source ops one fused op may absorb
    (the schedule's ``fusion_depth``): a pair only fuses when the
    combined label width stays within the cap, so ``max_width=1``
    disables fusion entirely and None keeps the unlimited greedy pass.
    """
    fused: list[ProgramOp] = []

    def fits(prev: ProgramOp, op: ProgramOp) -> bool:
        return (max_width is None
                or _op_width(prev) + _op_width(op) <= max_width)

    for op in ops:
        prev = fused[-1] if fused else None
        if isinstance(op, GatherMoveOp):
            if isinstance(prev, GatherMoveOp) and _chainable(prev, op) \
                    and fits(prev, op):
                fused[-1] = _fuse_moves(prev, op)
                continue
            if isinstance(prev, FanoutScratchOp) and _fanout_chainable(
                    prev, op) and fits(prev, op):
                fused[-1] = _fuse_fanout(prev, op)
                continue
        fused.append(op)
    return fused


# ----------------------------------------------------------------------
# The program
# ----------------------------------------------------------------------
@dataclass
class CommProgram:
    """A compiled, fused, pre-priced execution program for one plan."""

    primitive: str
    plan: CommPlan
    ops: list[ProgramOp]
    total_steps: int
    lowered_steps: int
    fused_away: int
    _ledger: CostLedger
    _params: MachineParams
    #: The :class:`~repro.core.collectives.schedule.Schedule` this
    #: program was compiled under, if any (None = default compilation:
    #: unlimited greedy fusion).
    schedule: Any = None

    @property
    def fully_lowered(self) -> bool:
        """True when no op falls back to interpreted ``Step.apply``."""
        return all(not isinstance(op, StepOp) for op in self.ops)

    def priced(self, system: DimmSystem) -> CostLedger:
        """The pre-priced ledger (a fresh copy), repriced only when the
        system's machine parameters changed since compilation."""
        if system.params is not self._params:
            self._ledger = self.plan.estimate(system)
            self._params = system.params
        return self._ledger.copy()

    def tile_counts(self, tile_bytes: int) -> list[int]:
        """Per-op tile counts a streamed replay at this budget runs."""
        return [op.tile_count(tile_bytes) for op in self.ops]

    @property
    def transfer_bytes(self) -> int:
        """Total modelled transfer bytes across all ops (static)."""
        return sum(op.transfer_bytes() for op in self.ops)

    @property
    def scannable_bytes(self) -> int:
        """Source bytes an elided replay would fingerprint-scan.

        Static per program (independent of content), so the autotuner
        can price the scan overhead without running anything.
        """
        return sum(op.ids.size * op.nslots_in * op.chunk_bytes
                   for op in self.ops
                   if isinstance(op, GatherMoveOp) and op._elidable())

    @property
    def elidable_transfer_bytes(self) -> int:
        """Transfer bytes of ops the elision layer can act on at all.

        The best-case saving bound: content can never elide more than
        the elidable ops' full traffic, so when the scan cost exceeds
        this, scanning cannot pay regardless of sparsity.
        """
        return sum(op.transfer_bytes() for op in self.ops
                   if isinstance(op, GatherMoveOp) and op._elidable())

    def pipeline_depth(self, tile_bytes: int) -> int:
        """Software-pipeline depth: the deepest single op's tile count."""
        return max(self.tile_counts(tile_bytes), default=1)

    def replay(self, system: DimmSystem,
               payloads: Mapping[int, np.ndarray] | None = None, *,
               tile_bytes: int | None = None,
               pool: ScratchPool | None = None,
               workers=None,
               elide: bool = False) -> tuple[CostLedger, ExecContext]:
        """Execute the compiled ops; returns (ledger, context).

        Bit-identical to interpreting the source plan: same memory
        state, scratch outputs, SIMD counts and WRAM tiles -- at a
        fraction of the dispatch work.

        Pass ``tile_bytes`` to stream: every op replays tile-by-tile
        through ``pool`` (a fresh :class:`ScratchPool` when None),
        bounding peak working memory to O(tile) instead of O(payload)
        and pricing the two-stage tile pipeline via
        :meth:`CostLedger.pipelined` -- the memory state and host
        outputs stay bit-identical to the untiled replay and the
        interpreted oracle; only the modelled overlap credit differs.

        Pass ``workers`` (an engine worker pool) to fan each op's
        independent row bands across host threads; ops still replay in
        order, the tile count, pipeline depth, ledger and every result
        byte are unchanged -- parallelism is wall-clock only.

        Pass ``elide=True`` for content-aware transfer elision:
        movement ops fingerprint-scan their sources and skip the
        gather/put for all-zero and duplicate output rows,
        substituting a broadcast fill or an aliased copy of the
        byte-verified representative.  Results stay bit-identical at
        any elision rate; the returned ledger charges the scan to the
        ``elide`` category and scales the transfer-bound categories by
        the fraction of modelled bytes actually saved.
        """
        ledger = self.priced(system)
        ctx = ExecContext(system=system, elide=elide)
        if tile_bytes is None:
            for op in self.ops:
                op.execute(ctx, payloads)
            return self._elision_priced(ledger, ctx, system), ctx
        if tile_bytes <= 0:
            raise CollectiveError(
                f"tile_bytes must be positive, got {tile_bytes}")
        if pool is None:
            pool = ScratchPool()
        depth = 1
        for op in self.ops:
            pool.release()
            before = ctx.tiles
            op.execute_streamed(ctx, payloads, pool, tile_bytes, workers)
            depth = max(depth, ctx.tiles - before)
        ctx.peak_scratch_bytes = pool.peak_bytes
        if workers is not None:
            ctx.peak_scratch_bytes += workers.scratch_peak_bytes
        ledger = self._elision_priced(ledger, ctx, system)
        return ledger.pipelined(depth), ctx

    def _elision_priced(self, ledger: CostLedger, ctx: ExecContext,
                        system: DimmSystem) -> CostLedger:
        """Fold an elided replay's scan cost and transfer credit in.

        The scan is charged at ``MachineParams.scan_time`` over the
        bytes the hierarchical scan actually touched; the
        transfer-bound categories (:data:`ELIDABLE_CATEGORIES`) shrink
        by the measured fraction of modelled transfer bytes the
        elisions removed.  A replay with no scan work (``elide``
        off, dense content under the size floor) returns the ledger
        unchanged.
        """
        if not ctx.scan_bytes and not ctx.saved_transfer_bytes:
            return ledger
        scan_s = system.params.scan_time(ctx.scan_bytes)
        if scan_s > 0.0:
            ledger.add("elide", scan_s)
        if ctx.saved_transfer_bytes:
            total = self.transfer_bytes
            if total > 0:
                keep = 1.0 - min(1.0, ctx.saved_transfer_bytes / total)
                for cat in ELIDABLE_CATEGORIES:
                    if cat in ledger.seconds:
                        ledger.seconds[cat] *= keep
        return ledger

    def describe(self) -> str:
        """Multi-line program listing for debugging and docs."""
        lines = [f"CommProgram({self.primitive}, {len(self.ops)} ops from "
                 f"{self.total_steps} steps, "
                 f"{self.lowered_steps} lowered, {self.fused_away} fused)"]
        if self.schedule is not None:
            lines.append(f"  schedule: {self.schedule.describe()}")
        lines.extend(f"  {i}: {op.describe()}"
                     for i, op in enumerate(self.ops))
        return "\n".join(lines)


def compile_plan(plan: CommPlan, system: DimmSystem,
                 schedule=None) -> CommProgram:
    """Lower a plan's steps into a :class:`CommProgram` and fuse them.

    Each step's ``lower(system)`` hook yields its program ops (or None
    for no lowering, in which case the step rides along as a
    :class:`StepOp`); a greedy pass then composes adjacent index-map
    ops wherever dropping the intermediate write is invisible.  The
    plan's analytic cost is priced once, here, so replay never calls
    ``estimate`` again.

    ``schedule`` (a :class:`~repro.core.collectives.schedule.Schedule`)
    caps the fusion pass at ``schedule.fusion_depth`` source ops per
    fused op, attaches the schedule to the program, and asserts the
    resulting structure via :meth:`Schedule.check` -- a mis-scheduled
    compilation fails loudly at compile time, never at replay.
    """
    ops: list[ProgramOp] = []
    lowered = 0
    for step in plan.steps:
        step_ops = step.lower(system)
        if step_ops is None:
            ops.append(StepOp(step, labels=(step.describe(),)))
        else:
            lowered += 1
            ops.extend(step_ops)
    before = len(ops)
    ops = _fuse(ops, schedule.fusion_depth if schedule is not None else None)
    program = CommProgram(
        primitive=plan.primitive, plan=plan, ops=ops,
        total_steps=len(plan.steps), lowered_steps=lowered,
        fused_away=before - len(ops), _ledger=plan.estimate(system),
        _params=system.params, schedule=schedule)
    if schedule is not None:
        schedule.check(program)
    return program
