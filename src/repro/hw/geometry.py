"""DIMM hierarchy geometry and entangled-group addressing.

The modelled hierarchy follows Figure 1 of the paper: a memory *channel*
contains several *ranks*; a rank contains several *chips* (usually 8)
whose 8-bit buses concatenate into the channel's 64-bit bus; a chip
contains several *banks* (usually 8), and a PE (UPMEM "DPU") is attached
to every bank.

Because the chips of a rank operate in unison, the set of banks with the
same bank index across all chips of a rank forms an *entangled group*:
one 64-byte burst on the external bus touches exactly those banks, one
byte lane per chip.  Drawing full bus bandwidth requires addressing a
whole entangled group at once, which is why PID-Comm's hypercube mapping
treats entangled groups as its assignment unit.

PE numbering: the linear PE id varies fastest over chips (the lanes of
an entangled group), then banks, then ranks, then channels.  This makes
any group of ``chips_per_rank`` consecutive PE ids exactly one entangled
group, and matches the paper's chip -> bank -> rank -> channel mapping
order (section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..errors import GeometryError


@dataclass(frozen=True)
class PeCoord:
    """Physical coordinates of one PE (DPU)."""

    channel: int
    rank: int
    bank: int
    chip: int


@dataclass(frozen=True)
class EntangledGroup:
    """One entangled group: same bank index across all chips of a rank.

    Attributes:
        eg_id: Linear id (bank fastest, then rank, then channel).
        channel: Channel index.
        rank: Rank index within the channel.
        bank: Bank index within each chip.
        pe_ids: The member PE ids in chip (lane) order.
    """

    eg_id: int
    channel: int
    rank: int
    bank: int
    pe_ids: tuple[int, ...]

    @property
    def lanes(self) -> int:
        """Number of byte lanes (= chips per rank)."""
        return len(self.pe_ids)


@dataclass(frozen=True)
class DimmGeometry:
    """Shape of the simulated PIM-enabled DIMM system.

    Defaults give the paper's testbed: 4 channels x 4 ranks x 8 chips
    x 8 banks = 1024 PEs.
    """

    channels: int = 4
    ranks_per_channel: int = 4
    chips_per_rank: int = 8
    banks_per_chip: int = 8

    def __post_init__(self) -> None:
        for field_name in (
            "channels", "ranks_per_channel", "chips_per_rank", "banks_per_chip",
        ):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value < 1:
                raise GeometryError(f"{field_name} must be a positive int, got {value!r}")
        if self.chips_per_rank & (self.chips_per_rank - 1):
            raise GeometryError(
                f"chips_per_rank must be a power of two, got {self.chips_per_rank}"
            )

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        """Total number of PEs in the system."""
        return (self.channels * self.ranks_per_channel
                * self.chips_per_rank * self.banks_per_chip)

    @property
    def pes_per_rank(self) -> int:
        return self.chips_per_rank * self.banks_per_chip

    @property
    def pes_per_channel(self) -> int:
        return self.pes_per_rank * self.ranks_per_channel

    @property
    def num_entangled_groups(self) -> int:
        """Total entangled groups (= PEs / chips_per_rank)."""
        return self.num_pes // self.chips_per_rank

    @property
    def egs_per_rank(self) -> int:
        return self.banks_per_chip

    @property
    def egs_per_channel(self) -> int:
        return self.banks_per_chip * self.ranks_per_channel

    # ------------------------------------------------------------------
    # PE id <-> coordinates
    # ------------------------------------------------------------------
    def pe_id(self, coord: PeCoord) -> int:
        """Linear PE id of a coordinate (chip fastest)."""
        self._check_coord(coord)
        return coord.chip + self.chips_per_rank * (
            coord.bank + self.banks_per_chip * (
                coord.rank + self.ranks_per_channel * coord.channel))

    def pe_coord(self, pe_id: int) -> PeCoord:
        """Coordinates of a linear PE id."""
        self._check_pe(pe_id)
        chip = pe_id % self.chips_per_rank
        rest = pe_id // self.chips_per_rank
        bank = rest % self.banks_per_chip
        rest //= self.banks_per_chip
        rank = rest % self.ranks_per_channel
        channel = rest // self.ranks_per_channel
        return PeCoord(channel=channel, rank=rank, bank=bank, chip=chip)

    # ------------------------------------------------------------------
    # Entangled groups
    # ------------------------------------------------------------------
    def eg_of_pe(self, pe_id: int) -> int:
        """Entangled-group id a PE belongs to."""
        self._check_pe(pe_id)
        return pe_id // self.chips_per_rank

    def lane_of_pe(self, pe_id: int) -> int:
        """Byte-lane (chip) index of a PE inside its entangled group."""
        self._check_pe(pe_id)
        return pe_id % self.chips_per_rank

    def entangled_group(self, eg_id: int) -> EntangledGroup:
        """Materialize an :class:`EntangledGroup` descriptor."""
        if not 0 <= eg_id < self.num_entangled_groups:
            raise GeometryError(
                f"eg_id {eg_id} out of range [0, {self.num_entangled_groups})")
        base_pe = eg_id * self.chips_per_rank
        coord = self.pe_coord(base_pe)
        pes = tuple(range(base_pe, base_pe + self.chips_per_rank))
        return EntangledGroup(
            eg_id=eg_id, channel=coord.channel, rank=coord.rank,
            bank=coord.bank, pe_ids=pes)

    @cached_property
    def all_entangled_groups(self) -> tuple[EntangledGroup, ...]:
        """All entangled groups in eg_id order."""
        return tuple(self.entangled_group(i)
                     for i in range(self.num_entangled_groups))

    def channel_of_pe(self, pe_id: int) -> int:
        """Channel index a PE lives on."""
        return self.pe_coord(pe_id).channel

    # ------------------------------------------------------------------
    # Bus utilization
    # ------------------------------------------------------------------
    def lane_utilization(self, pe_ids) -> float:
        """Fraction of burst byte-lanes carrying useful data.

        A burst always moves ``chips_per_rank`` lanes; if a transfer only
        involves ``k`` member PEs of an entangled group, ``k/lanes`` of
        the burst is useful.  Returns the byte-weighted average over the
        entangled groups touched by ``pe_ids`` (uniform bytes per PE
        assumed).  Used by the cost model to penalize communication
        groups that are not entangled-group aligned (paper section
        III-B).
        """
        pe_list = list(pe_ids)
        if not pe_list:
            raise GeometryError("lane_utilization of an empty PE set")
        per_eg: dict[int, int] = {}
        for pe in pe_list:
            per_eg[self.eg_of_pe(pe)] = per_eg.get(self.eg_of_pe(pe), 0) + 1
        lanes = self.chips_per_rank
        # Each touched EG costs a full burst regardless of member count;
        # useful share is members/lanes for that EG's share of the bytes.
        useful = sum(count for count in per_eg.values())
        total = lanes * len(per_eg)
        return useful / total

    def channels_used(self, pe_ids) -> int:
        """Number of distinct channels a PE set spans."""
        return len({self.channel_of_pe(pe) for pe in pe_ids})

    def ranks_used(self, pe_ids) -> int:
        """Number of distinct (channel, rank) pairs a PE set spans."""
        pairs = set()
        for pe in pe_ids:
            coord = self.pe_coord(pe)
            pairs.add((coord.channel, coord.rank))
        return len(pairs)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_pe(self, pe_id: int) -> None:
        if not 0 <= pe_id < self.num_pes:
            raise GeometryError(f"pe_id {pe_id} out of range [0, {self.num_pes})")

    def _check_coord(self, coord: PeCoord) -> None:
        if not (0 <= coord.channel < self.channels
                and 0 <= coord.rank < self.ranks_per_channel
                and 0 <= coord.bank < self.banks_per_chip
                and 0 <= coord.chip < self.chips_per_rank):
            raise GeometryError(f"coordinate {coord} outside geometry {self}")

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (f"{self.channels}ch x {self.ranks_per_channel}rk x "
                f"{self.chips_per_rank}chip x {self.banks_per_chip}bank "
                f"= {self.num_pes} PEs "
                f"({self.num_entangled_groups} entangled groups)")
