"""PE-side kernel execution: WRAM-staged data movement.

A DPU cannot address its MRAM directly from compute instructions; data
must be staged through the 64 KiB WRAM scratchpad in bounded tiles.
The helpers here implement the PE-local reordering kernels of
PID-Comm's PE-assisted reordering honestly: every byte passes through
the WRAM array of the owning PE, in tiles that never exceed the
scratchpad, exactly like the real preparation kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransferError
from .arena import take_chunks_by_table  # noqa: F401  (canonical home: arena)
from .memory import PeMemory

#: Keep a safety margin below the full WRAM (stack, tasklet state).
WRAM_TILE_BYTES = 48 << 10


def check_permutation(permutation: np.ndarray) -> np.ndarray:
    """Validate a slot permutation in O(n); returns it as ``intp``.

    A single ``np.bincount`` establishes that every value in
    ``range(n)`` appears exactly once, replacing the earlier
    sort-based check that ran per PE per step on the hot path.
    """
    perm = np.asarray(permutation)
    n = perm.size
    ok = perm.ndim == 1 and (n == 0 or (
        np.issubdtype(perm.dtype, np.integer)
        and int(perm.min()) >= 0 and int(perm.max()) < n
        and bool((np.bincount(perm, minlength=n) == 1).all())))
    if not ok:
        raise TransferError(f"{perm!r} is not a permutation")
    return perm.astype(np.intp, copy=False)


def check_permutation_rows(permutations: np.ndarray) -> np.ndarray:
    """Validate a ``(rows, nslots)`` batch of permutations in one pass.

    Each row must permute ``range(nslots)``; checked with a single
    offset-``bincount`` over the whole matrix.  Returns the batch as
    ``intp``.
    """
    perms = np.asarray(permutations)
    if perms.ndim != 2:
        raise TransferError(
            f"expected a (rows, nslots) permutation matrix, got shape "
            f"{perms.shape}")
    nrows, nslots = perms.shape
    if perms.size == 0:
        return perms.astype(np.intp, copy=False)
    ok = (np.issubdtype(perms.dtype, np.integer)
          and int(perms.min()) >= 0 and int(perms.max()) < nslots)
    if ok:
        keyed = perms + (np.arange(nrows, dtype=np.intp)[:, None] * nslots)
        counts = np.bincount(keyed.reshape(-1), minlength=nrows * nslots)
        ok = bool((counts == 1).all())
    if not ok:
        bad = next(r for r in range(nrows)
                   if _is_bad_permutation(perms[r]))
        raise TransferError(f"{perms[bad]!r} is not a permutation")
    return perms.astype(np.intp, copy=False)


def _is_bad_permutation(perm: np.ndarray) -> bool:
    try:
        check_permutation(perm)
    except TransferError:
        return True
    return False


def wram_copy(memory: PeMemory, src_offset: int, dst_offset: int,
              nbytes: int, tile_bytes: int = WRAM_TILE_BYTES) -> int:
    """Copy an MRAM range through WRAM tiles; returns tiles used.

    Handles overlapping ranges like ``memmove`` (the whole source is
    conceptually read before the destination is written, which the
    tiled loop preserves by buffering through WRAM in order and
    choosing the copy direction).
    """
    if nbytes < 0:
        raise TransferError(f"negative copy size {nbytes}")
    if tile_bytes <= 0 or tile_bytes > memory.wram.size:
        raise TransferError(
            f"tile of {tile_bytes}B does not fit the {memory.wram.size}B WRAM")
    if nbytes == 0:
        return 0
    tiles = 0
    if dst_offset <= src_offset:
        starts = range(0, nbytes, tile_bytes)
    else:  # copy backwards so an overlapping destination never clobbers
        last = ((nbytes - 1) // tile_bytes) * tile_bytes
        starts = range(last, -1, -tile_bytes)
    for start in starts:
        step = min(tile_bytes, nbytes - start)
        tile = memory.wram[:step]
        tile[:] = memory.view(src_offset + start, step)
        memory.view(dst_offset + start, step)[:] = tile
        tiles += 1
    return tiles


def wram_permute_chunks(memory: PeMemory, src_offset: int, dst_offset: int,
                        chunk_bytes: int, permutation: np.ndarray,
                        tile_bytes: int = WRAM_TILE_BYTES) -> int:
    """Permute equal-size chunks of an MRAM buffer through WRAM.

    ``new[i] = old[permutation[i]]``.  Works in place (``src == dst``)
    via a cycle decomposition so no chunk is overwritten before it is
    read.  Returns the number of WRAM tiles moved.
    """
    perm = check_permutation(permutation)
    nslots = perm.size
    total = nslots * chunk_bytes
    tiles = 0
    src_end = src_offset + total
    dst_end = dst_offset + total
    overlapping = src_offset < dst_end and dst_offset < src_end
    if not overlapping:
        for i in range(nslots):
            tiles += wram_copy(memory,
                               src_offset + int(perm[i]) * chunk_bytes,
                               dst_offset + i * chunk_bytes,
                               chunk_bytes, tile_bytes)
        return tiles
    if src_offset != dst_offset:
        raise TransferError(
            "partially overlapping permute ranges are not supported")
    # In-place: walk permutation cycles.  One chunk per cycle is parked
    # aside (in WRAM when it fits, else in a reserved MRAM bounce slot,
    # which is what the real kernel does for oversized chunks).
    visited = np.zeros(nslots, dtype=bool)
    for start in range(nslots):
        if visited[start] or perm[start] == start:
            visited[start] = True
            continue
        # new[i] = old[perm[i]]: follow the cycle of positions.
        saved = memory.read(src_offset + start * chunk_bytes, chunk_bytes)
        i = start
        while True:
            j = int(perm[i])
            visited[i] = True
            if j == start:
                memory.write(src_offset + i * chunk_bytes, saved)
                tiles += _tiles_for(chunk_bytes, tile_bytes)
                break
            tiles += wram_copy(memory, src_offset + j * chunk_bytes,
                               src_offset + i * chunk_bytes, chunk_bytes,
                               tile_bytes)
            i = j
    return tiles


def _tiles_for(nbytes: int, tile_bytes: int) -> int:
    return (nbytes + tile_bytes - 1) // tile_bytes


# ----------------------------------------------------------------------
# Batched (vectorized-backend) variants
# ----------------------------------------------------------------------
def permute_chunks_batched(data: np.ndarray,
                           perms: np.ndarray) -> np.ndarray:
    """Apply one slot permutation per row, as a single gather.

    ``data`` is ``(rows, nslots, chunk_bytes)`` and row ``r`` of the
    result is ``data[r, perms[r]]`` -- i.e. ``new[i] = old[perm[i]]``,
    exactly :func:`wram_permute_chunks`'s semantics applied to every
    PE of a group at once.  ``perms`` must already be validated (see
    :func:`check_permutation_rows`).
    """
    if data.ndim != 3:
        raise TransferError(
            f"expected (rows, nslots, chunk) data, got shape {data.shape}")
    if perms.shape != data.shape[:2]:
        raise TransferError(
            f"permutation matrix {perms.shape} does not match data "
            f"{data.shape[:2]}")
    rows = np.arange(data.shape[0], dtype=np.intp)[:, None]
    return data[rows, perms]


def batched_permute_tiles(perms: np.ndarray, chunk_bytes: int,
                          tile_bytes: int = WRAM_TILE_BYTES,
                          in_place: bool = False) -> int:
    """WRAM tiles the per-PE execution of ``perms`` would move.

    The batched kernel does not stage chunks through WRAM, but charges
    exactly what :func:`wram_permute_chunks` would: out-of-place, every
    slot is one tiled copy; in place, the cycle walk moves one tiled
    copy per non-fixed slot (fixed points cost nothing).
    """
    if chunk_bytes == 0 or perms.size == 0:
        return 0
    per_chunk = _tiles_for(chunk_bytes, tile_bytes)
    if not in_place:
        return perms.size * per_chunk
    moved = int((perms != np.arange(perms.shape[-1])).sum())
    return moved * per_chunk
