"""PE-side kernel execution: WRAM-staged data movement.

A DPU cannot address its MRAM directly from compute instructions; data
must be staged through the 64 KiB WRAM scratchpad in bounded tiles.
The helpers here implement the PE-local reordering kernels of
PID-Comm's PE-assisted reordering honestly: every byte passes through
the WRAM array of the owning PE, in tiles that never exceed the
scratchpad, exactly like the real preparation kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransferError
from .memory import PeMemory

#: Keep a safety margin below the full WRAM (stack, tasklet state).
WRAM_TILE_BYTES = 48 << 10


def wram_copy(memory: PeMemory, src_offset: int, dst_offset: int,
              nbytes: int, tile_bytes: int = WRAM_TILE_BYTES) -> int:
    """Copy an MRAM range through WRAM tiles; returns tiles used.

    Handles overlapping ranges like ``memmove`` (the whole source is
    conceptually read before the destination is written, which the
    tiled loop preserves by buffering through WRAM in order and
    choosing the copy direction).
    """
    if nbytes < 0:
        raise TransferError(f"negative copy size {nbytes}")
    if tile_bytes <= 0 or tile_bytes > memory.wram.size:
        raise TransferError(
            f"tile of {tile_bytes}B does not fit the {memory.wram.size}B WRAM")
    if nbytes == 0:
        return 0
    tiles = 0
    if dst_offset <= src_offset:
        starts = range(0, nbytes, tile_bytes)
    else:  # copy backwards so an overlapping destination never clobbers
        last = ((nbytes - 1) // tile_bytes) * tile_bytes
        starts = range(last, -1, -tile_bytes)
    for start in starts:
        step = min(tile_bytes, nbytes - start)
        tile = memory.wram[:step]
        tile[:] = memory.view(src_offset + start, step)
        memory.view(dst_offset + start, step)[:] = tile
        tiles += 1
    return tiles


def wram_permute_chunks(memory: PeMemory, src_offset: int, dst_offset: int,
                        chunk_bytes: int, permutation: np.ndarray,
                        tile_bytes: int = WRAM_TILE_BYTES) -> int:
    """Permute equal-size chunks of an MRAM buffer through WRAM.

    ``new[i] = old[permutation[i]]``.  Works in place (``src == dst``)
    via a cycle decomposition so no chunk is overwritten before it is
    read.  Returns the number of WRAM tiles moved.
    """
    perm = np.asarray(permutation)
    nslots = perm.size
    if sorted(perm.tolist()) != list(range(nslots)):
        raise TransferError(f"{perm!r} is not a permutation")
    total = nslots * chunk_bytes
    tiles = 0
    src_end = src_offset + total
    dst_end = dst_offset + total
    overlapping = src_offset < dst_end and dst_offset < src_end
    if not overlapping:
        for i in range(nslots):
            tiles += wram_copy(memory,
                               src_offset + int(perm[i]) * chunk_bytes,
                               dst_offset + i * chunk_bytes,
                               chunk_bytes, tile_bytes)
        return tiles
    if src_offset != dst_offset:
        raise TransferError(
            "partially overlapping permute ranges are not supported")
    # In-place: walk permutation cycles.  One chunk per cycle is parked
    # aside (in WRAM when it fits, else in a reserved MRAM bounce slot,
    # which is what the real kernel does for oversized chunks).
    visited = np.zeros(nslots, dtype=bool)
    for start in range(nslots):
        if visited[start] or perm[start] == start:
            visited[start] = True
            continue
        # new[i] = old[perm[i]]: follow the cycle of positions.
        saved = memory.read(src_offset + start * chunk_bytes, chunk_bytes)
        i = start
        while True:
            j = int(perm[i])
            visited[i] = True
            if j == start:
                memory.write(src_offset + i * chunk_bytes, saved)
                tiles += _tiles_for(chunk_bytes, tile_bytes)
                break
            tiles += wram_copy(memory, src_offset + j * chunk_bytes,
                               src_offset + i * chunk_bytes, chunk_bytes,
                               tile_bytes)
            i = j
    return tiles


def _tiles_for(nbytes: int, tile_bytes: int) -> int:
    return (nbytes + tile_bytes - 1) // tile_bytes
