"""Lane-major MRAM arena: storage for the vectorized backend.

The scalar backend keeps each PE's MRAM in its own numpy array, so a
burst over ``P`` PEs costs ``P`` Python-level reads.  The arena instead
stores every materialized PE's bank as one row of a single
``(rows, mram_bytes)`` uint8 array -- lane-major, row = lane -- so the
host's burst view over an ordered PE list is a single numpy operation:

* a contiguous (or constant-stride) PE run maps to a basic slice of the
  backing array, i.e. a **zero-copy view**; the hypercube mapping
  assigns group members to consecutive PE ids, so every group formed
  over the fastest cube dimensions is such a run;
* any other ordered list maps to one fancy-index gather/scatter.

Rows are addressed by PE id relative to a base offset.  The backing
array starts empty and grows geometrically as PEs are touched, so
analytic (cost-only) runs that touch nothing still allocate nothing,
and the zero-fill of fresh rows is lazy at the OS level (calloc pages).
Accessors always re-derive views from the current backing array, so a
growth-triggered reallocation never leaves a stale alias behind.
"""

from __future__ import annotations

import numpy as np

from ..errors import AllocationError, TransferError


class MemoryArena:
    """One lane-major uint8 array holding many PEs' MRAM banks.

    Args:
        mram_bytes: Bytes per PE bank (one row).
        max_rows: Upper bound on rows (the system's PE count); only
            clamps growth headroom -- untouched PEs never cost memory.
    """

    def __init__(self, mram_bytes: int, max_rows: int) -> None:
        if mram_bytes <= 0:
            raise AllocationError(
                f"mram_bytes must be positive, got {mram_bytes}")
        if max_rows <= 0:
            raise AllocationError(
                f"max_rows must be positive, got {max_rows}")
        self.mram_bytes = mram_bytes
        self.max_rows = max_rows
        self._base = 0
        self._data = np.zeros((0, mram_bytes), dtype=np.uint8)
        self._touched: set[int] = set()

    # ------------------------------------------------------------------
    # Row accounting
    # ------------------------------------------------------------------
    @property
    def touched_count(self) -> int:
        """How many distinct PEs have been touched."""
        return len(self._touched)

    def touched_ids(self) -> list[int]:
        """Touched PE ids in ascending order."""
        return sorted(self._touched)

    def is_touched(self, pe_id: int) -> bool:
        """Whether ``pe_id`` has a live row."""
        return pe_id in self._touched

    def touch(self, pe_ids) -> np.ndarray:
        """Materialize rows for ``pe_ids``; returns them as an id array."""
        ids = np.asarray(pe_ids, dtype=np.intp).reshape(-1)
        if ids.size:
            self._ensure(int(ids.min()), int(ids.max()) + 1)
            self._touched.update(int(pe) for pe in ids)
        return ids

    def _ensure(self, lo: int, hi: int) -> None:
        """Grow (and possibly re-base) the backing array to cover [lo, hi)."""
        nrows = self._data.shape[0]
        if nrows and lo >= self._base and hi <= self._base + nrows:
            return
        if lo < 0 or hi > self.max_rows:
            raise AllocationError(
                f"arena rows [{lo}, {hi}) outside [0, {self.max_rows})")
        new_base = min(lo, self._base) if nrows else lo
        new_end = max(hi, self._base + nrows) if nrows else hi
        # Geometric headroom upward, so touching PEs one by one costs
        # O(log n) reallocations instead of O(n).
        grown = max(new_end - new_base, 2 * nrows)
        new_end = max(new_end, min(new_base + grown, self.max_rows))
        fresh = np.zeros((new_end - new_base, self.mram_bytes), dtype=np.uint8)
        if nrows:
            at = self._base - new_base
            fresh[at:at + nrows] = self._data
        self._base = new_base
        self._data = fresh

    def _rows(self, ids: np.ndarray) -> np.ndarray:
        return ids - self._base

    def _check_span(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.mram_bytes:
            raise TransferError(
                f"MRAM access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.mram_bytes})")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def row_view(self, pe_id: int) -> np.ndarray:
        """Zero-copy view of one PE's whole bank (touches the PE).

        Re-derived from the current backing array on every call, so it
        is always safe to use even after the arena has grown.
        """
        ids = self.touch((pe_id,))
        return self._data[int(ids[0]) - self._base]

    def lane_view(self, pe_ids, offset: int, nbytes: int) -> np.ndarray | None:
        """Zero-copy ``(len(pe_ids), nbytes)`` window, when one exists.

        Returns a basic-slice view of the backing array when the PE
        list is a single id, a contiguous run, or a constant positive
        stride (the layouts the hypercube mapping produces for
        entangled groups); returns None for any other ordering, in
        which case callers fall back to one gather/scatter.
        """
        self._check_span(offset, nbytes)
        ids = self.touch(pe_ids)
        if ids.size == 0:
            return None
        rows = self._rows(ids)
        span = self._data[:, offset:offset + nbytes]
        if ids.size == 1:
            return span[rows[0]:rows[0] + 1]
        steps = np.diff(ids)
        step = int(steps[0])
        if step > 0 and bool((steps == step).all()):
            return span[rows[0]:rows[-1] + 1:step]
        return None

    # ------------------------------------------------------------------
    # Bulk transfers
    # ------------------------------------------------------------------
    def read_rows(self, pe_ids, offset: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` at ``offset`` from each PE into a lane matrix."""
        view = self.lane_view(pe_ids, offset, nbytes)
        if view is not None:
            return view.copy()
        ids = self.touch(pe_ids)
        # Slice the column window first, then gather: the fancy index
        # then copies only the requested bytes, never whole rows.
        return self._data[:, offset:offset + nbytes][self._rows(ids)]

    def write_rows(self, pe_ids, offset: int, matrix: np.ndarray) -> None:
        """Write lane-matrix rows into each PE at ``offset``."""
        mat = np.asarray(matrix)
        if mat.ndim != 2 or mat.dtype != np.uint8:
            raise TransferError(
                f"expected 2-D uint8 lane matrix, got {mat.dtype} "
                f"ndim={mat.ndim}")
        nbytes = mat.shape[1]
        view = self.lane_view(pe_ids, offset, nbytes)
        ids = self.touch(pe_ids)
        if mat.shape[0] != ids.size:
            raise TransferError(
                f"lane matrix has {mat.shape[0]} rows for {ids.size} PEs")
        if view is not None:
            view[:] = mat
            return
        self._data[:, offset:offset + nbytes][self._rows(ids)] = mat

    def fill_rows(self, pe_ids, offset: int, row: np.ndarray) -> None:
        """Write the same 1-D uint8 buffer to every listed PE."""
        buf = np.asarray(row)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise TransferError(
                f"MRAM writes take 1-D uint8 buffers, got {buf.dtype} "
                f"ndim={buf.ndim}")
        view = self.lane_view(pe_ids, offset, buf.size)
        if view is not None:
            view[:] = buf
            return
        ids = self.touch(pe_ids)
        self._data[:, offset:offset + buf.size][self._rows(ids)] = buf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryArena({self._data.shape[0]} rows @ base "
                f"{self._base}, {self.touched_count} touched, "
                f"{self.mram_bytes}B each)")
