"""Lane-major MRAM arena: storage for the vectorized backend.

The scalar backend keeps each PE's MRAM in its own numpy array, so a
burst over ``P`` PEs costs ``P`` Python-level reads.  The arena instead
stores every materialized PE's bank as one row of a single
``(rows, mram_bytes)`` uint8 array -- lane-major, row = lane -- so the
host's burst view over an ordered PE list is a single numpy operation:

* a contiguous (or constant-stride) PE run maps to a basic slice of the
  backing array, i.e. a **zero-copy view**; the hypercube mapping
  assigns group members to consecutive PE ids, so every group formed
  over the fastest cube dimensions is such a run;
* any other ordered list maps to one fancy-index gather/scatter.

Rows are addressed by PE id relative to a base offset.  The backing
array starts empty and grows geometrically as PEs are touched, so
analytic (cost-only) runs that touch nothing still allocate nothing,
and the zero-fill of fresh rows is lazy at the OS level (calloc pages).
Accessors always re-derive views from the current backing array, so a
growth-triggered reallocation never leaves a stale alias behind.

Concurrency contract (the parallel replay engine): writes from
multiple threads are safe exactly when they target **disjoint byte
ranges** of already-materialized rows -- disjoint row bands of one
streamed op, or the disjoint footprints of hazard-independent wave
members.  The engine pre-materializes every member PE before
dispatching concurrent work, so the backing array never reallocates
mid-flight; the internal lock below makes the growth and flat-view
builds themselves safe against a racing first touch, but it does NOT
serialize data transfers -- overlapping concurrent writes stay the
caller's bug.
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import AllocationError, TransferError
from ..reliability.checksum import chunk_digests


#: chunk sizes with a native wide dtype; anything else gathers as void.
_WIDE_DTYPES = {1: np.dtype(np.uint8), 2: np.dtype(np.uint16),
                4: np.dtype(np.uint32), 8: np.dtype(np.uint64)}


def flat_chunk_table(lane_table: np.ndarray, slot_table: np.ndarray,
                     nslots: int) -> np.ndarray:
    """Flatten a (lane, slot) table pair into one chunk-index table.

    ``flat[l, s] = lane[l, s] * nslots + slot[l, s]`` indexes a group's
    chunk block flattened to ``(lanes * nslots,)`` chunks.  Computed
    once at plan-lowering time so steady-state replay does zero index
    arithmetic.
    """
    flat = lane_table.astype(np.intp) * nslots + slot_table
    flat.setflags(write=False)
    return flat


def wide_dtype(nbytes: int) -> np.dtype:
    """The widest native dtype viewing ``nbytes``-wide chunks (void else)."""
    return _WIDE_DTYPES.get(nbytes, np.dtype((np.void, nbytes)))


def take_band_staged(grouped: np.ndarray, flat_table: np.ndarray,
                     r0: int, r1: int, out: np.ndarray) -> None:
    """Gather output rows ``[r0, r1)`` from a staged grouped source.

    The scalar-backend band kernel of streamed replay: ``grouped`` is
    the full staged source viewed as ``(ngroups, lanes * nslots)`` wide
    chunk elements, ``flat_table`` the per-group ``(lanes, nslots_out)``
    flat chunk table, and ``out`` a preallocated ``(r1 - r0,
    nslots_out)`` band of the same wide dtype.  Output row ``r`` lives
    in group ``r // lanes`` at lane ``r % lanes``; bands that straddle
    a group boundary split into one ``np.take`` per group touched.
    Never allocates.
    """
    lanes = flat_table.shape[0]
    pos = r0
    while pos < r1:
        group, l0 = divmod(pos, lanes)
        l1 = min(lanes, l0 + (r1 - pos))
        np.take(grouped[group], flat_table[l0:l1],
                out=out[pos - r0:pos - r0 + (l1 - l0)])
        pos += l1 - l0


def take_chunks_by_table(grouped: np.ndarray, lane_table: np.ndarray,
                         slot_table: np.ndarray,
                         flat_table: np.ndarray | None = None) -> np.ndarray:
    """Gather chunks by a precompiled (lane, slot) index-table pair.

    ``grouped`` is a ``(ngroups, lanes, nslots_in, chunk_bytes)`` block
    and the result is ``out[g, l, s] = grouped[g, lane[l, s],
    slot[l, s]]`` -- one fancy index covering every group at once.
    This is the single-dispatch core of compiled program replay: the
    tables come pre-validated and pre-composed from plan lowering, so
    no permutation check or index math happens here.

    The gather views each chunk as one wide element (uint64 for 8-byte
    chunks, opaque void otherwise) and takes along a single flattened
    axis: numpy's single-axis integer take on wide elements is several
    times faster than a two-table advanced index with a trailing byte
    axis, which is where steady-state replay spends nearly all its
    time.  Pass ``flat_table`` (see :func:`flat_chunk_table`) to skip
    re-deriving the flattened indices per call.
    """
    if grouped.ndim != 4:
        raise TransferError(
            f"expected (groups, lanes, nslots, chunk) block, got shape "
            f"{grouped.shape}")
    if lane_table.shape != slot_table.shape:
        raise TransferError(
            f"index tables disagree: {lane_table.shape} vs "
            f"{slot_table.shape}")
    ngroups, lanes, nslots, chunk = grouped.shape
    if flat_table is None:
        flat_table = lane_table.astype(np.intp) * nslots + slot_table
    wide = _WIDE_DTYPES.get(chunk, np.dtype((np.void, chunk)))
    # One strided copy to a contiguous block, then a flat single-axis
    # gather of wide elements; both beat fancy-indexing the strided
    # source chunk-by-chunk.
    block = np.ascontiguousarray(grouped)
    out = np.take(block.view(wide).reshape(ngroups, lanes * nslots),
                  flat_table, axis=1)
    return out.view(np.uint8).reshape(ngroups, *flat_table.shape, chunk)


#: Chunk count at which the scan samples before committing: below it
#: both stages always run exactly; above it a deterministic evenly
#: spaced sample must first *nominate* a stage (a zero chunk in the
#: sample -> exact zero pass; duplicate sampled content -> digest
#: pass), so dense traffic pays only the sample read.
#: Retained write-log entries per arena; older history is dropped and
#: treated as "anything may have changed" (see ``writes_since``).
WRITE_LOG_MAX = 64

SCAN_SAMPLE_MIN_CHUNKS = 1 << 13
#: Evenly spaced chunks the nomination sample reads.
SCAN_SAMPLE_CHUNKS = 256

#: all-ones pattern of ``(words == 0)`` bool rows packed as one native
#: integer, per word count with a native width; the packed compare
#: turns per-chunk zero detection into two full-width vector passes.
_ZERO_PACKED = {1: np.uint8(0x01), 2: np.uint16(0x0101),
                4: np.uint32(0x01010101),
                8: np.uint64(0x0101010101010101)}


def scan_chunk_classes(chunks: np.ndarray, ngroups: int | None = None
                       ) -> tuple[np.ndarray, np.ndarray | None, int]:
    """Content fingerprint scan: exact zero / duplicate chunk classes.

    ``chunks`` is a ``(..., chunk_bytes)`` uint8 block whose leading
    axes flatten to ``ngroups * nchunks`` chunks in group-major order
    (``ngroups`` defaults to the first axis).  Strided views are fine
    as long as the byte axis is contiguous -- exactly what
    :meth:`MemoryArena.lane_view` produces -- and the leading axes are
    never reshaped through a copy.  Returns ``(zero, cls,
    scanned_bytes)``:

    * ``zero`` -- flat ``(n,)`` bool, chunk is all-zero (byte-exact);
    * ``cls`` -- flat ``(n,)`` class table where ``cls[f]`` is the flat
      index of the *first* chunk in the same group with byte-identical
      content (``cls[f] == f`` for uniques), or **None** when every
      chunk is its own class -- the common dense outcome, returned
      without materializing the identity table so callers skip all
      class bookkeeping;
    * ``scanned_bytes`` -- bytes the scan actually touched, for the
      ``elide`` ledger category.

    Above :data:`SCAN_SAMPLE_MIN_CHUNKS` the scan is nomination-gated:
    a deterministic evenly spaced sample is read first, and each stage
    only commits when the sample exhibits its pattern -- a zero chunk
    enables the exact zero pass, duplicate sampled content (equal
    CRC-seeded digests, :func:`~repro.reliability.checksum
    .chunk_digests`, within one group) enables the digest pass over
    live chunks.  Dense traffic therefore pays one sample read and
    nothing else, while a skipped stage can only *miss* elisions on
    content the sample did not represent, never mark a chunk zero or
    duplicate wrongly: every committed class is byte-exact (the zero
    pass reads all bytes; duplicates are byte-verified against their
    class representative, digest collisions demote to unique).  Chunks
    whose byte width is not a multiple of 8 fall back to the exact
    full-pass zero scan with no duplicate detection.
    """
    lead = chunks.shape[:-1]
    chunk_bytes = chunks.shape[-1]
    n = 1
    for dim in lead:
        n *= dim
    if ngroups is None:
        ngroups = lead[0] if lead else 1
    nchunks = n // ngroups
    cls = None  # identity until the digest pass commits a duplicate

    def _at(flat: np.ndarray, arr: np.ndarray) -> tuple:
        """Multi-axis coordinates of flat chunk ids (no lead reshape)."""
        return np.unravel_index(flat, lead) if len(lead) > 1 else (flat,)

    if chunk_bytes % 8:
        return ~chunks.any(axis=-1).reshape(n), None, n * chunk_bytes
    try:
        words = chunks.view(np.uint64)
    except (TypeError, ValueError):  # pragma: no cover - exotic strides
        return ~chunks.any(axis=-1).reshape(n), None, n * chunk_bytes
    nwords = chunk_bytes // 8
    scanned = 0
    scan_zero = scan_dup = True
    if n >= SCAN_SAMPLE_MIN_CHUNKS:
        sample = np.linspace(0, n - 1, SCAN_SAMPLE_CHUNKS).astype(np.intp)
        sw = words[_at(sample, words)].reshape(sample.size, nwords)
        szero = ~sw.any(axis=1)
        scan_zero = bool(szero.any())
        live = np.flatnonzero(~szero)
        scan_dup = False
        if live.size > 1:
            sdig = chunk_digests(sw[live])
            sg = sample[live] // nchunks
            order = np.lexsort((sdig, sg))
            ds, gs = sdig[order], sg[order]
            scan_dup = bool(((ds[1:] == ds[:-1]) & (gs[1:] == gs[:-1]))
                            .any())
        scanned += sample.size * chunk_bytes
        if not scan_zero and not scan_dup:
            return np.zeros(n, dtype=bool), None, scanned
    # Zero pass (exact): ``(words == 0)`` is one full-width vector
    # compare, and its bool rows pack into one native integer per
    # chunk, so the all-zero test is a second full-width compare
    # instead of numpy's much slower short-inner-axis reduction.
    zero = np.zeros(n, dtype=bool)
    if scan_zero:
        eq = (words == 0).reshape(n, nwords)
        packed = _ZERO_PACKED.get(nwords)
        if packed is not None:
            zero = eq.view(packed.dtype).ravel() == packed
        elif nwords % 8 == 0:
            zero = (eq.view(np.uint64).reshape(n, nwords // 8)
                    == _ZERO_PACKED[8]).all(axis=1)
        else:
            zero = eq.all(axis=1)
        scanned += n * chunk_bytes
    # Digest pass: duplicate classes among live (non-zero) chunks.
    # Equal (group, digest) pairs nominate; a byte-exact compare
    # against the class representative (first occurrence) confirms.
    if scan_dup:
        flat = np.flatnonzero(~zero)
        if flat.size > 1:
            dig = chunk_digests(words[_at(flat, words)].reshape(
                flat.size, nwords))
            scanned += flat.size * chunk_bytes
            g = flat // nchunks
            order = np.argsort(dig)
            ds = dig[order]
            run_start = np.ones(order.size, dtype=bool)
            run_start[1:] = ds[1:] != ds[:-1]
            run_id = np.cumsum(run_start) - 1
            cand = np.bincount(run_id)[run_id] > 1
            if cand.any():
                cf, cd, cg = (flat[order[cand]], ds[cand],
                              g[order[cand]])
                order2 = np.lexsort((cf, cd, cg))
                cf2, cd2, cg2 = cf[order2], cd[order2], cg[order2]
                start2 = np.ones(cf2.size, dtype=bool)
                start2[1:] = (cd2[1:] != cd2[:-1]) | (cg2[1:] != cg2[:-1])
                # lexsort keeps flat order inside a class, so the
                # class head is the first occurrence of that content.
                rep = cf2[start2][np.cumsum(start2) - 1]
                dup = rep != cf2
                if dup.any():
                    di, ri = cf2[dup], rep[dup]
                    eq2 = (chunks[_at(di, chunks)] ==
                           chunks[_at(ri, chunks)]).all(axis=1)
                    scanned += 2 * di.size * chunk_bytes
                    if eq2.any():
                        cls = np.arange(n, dtype=np.intp)
                        cls[di[eq2]] = ri[eq2]
    return zero, cls, scanned


class MemoryArena:
    """One lane-major uint8 array holding many PEs' MRAM banks.

    Args:
        mram_bytes: Bytes per PE bank (one row).
        max_rows: Upper bound on rows (the system's PE count); only
            clamps growth headroom -- untouched PEs never cost memory.
    """

    def __init__(self, mram_bytes: int, max_rows: int) -> None:
        if mram_bytes <= 0:
            raise AllocationError(
                f"mram_bytes must be positive, got {mram_bytes}")
        if max_rows <= 0:
            raise AllocationError(
                f"max_rows must be positive, got {max_rows}")
        self.mram_bytes = mram_bytes
        self.max_rows = max_rows
        self._base = 0
        self._data = np.zeros((0, mram_bytes), dtype=np.uint8)
        # Boolean mask over all possible rows: marking a thousand PEs
        # touched is one vectorized store, not a Python set update per
        # id (the touched set sat on the hot path of every transfer).
        self._touched = np.zeros(max_rows, dtype=bool)
        #: Bumped on every backing-array reallocation; streamed replay
        #: keys its cached flat gather tables on this, so a growth (or
        #: re-base) invalidates them instead of leaving stale rows.
        self.version = 0
        self._flat_views: dict[int, np.ndarray] = {}
        # Guards growth/re-base and flat-view construction against a
        # concurrent first touch from worker threads; plain transfers
        # into materialized rows never take it.
        self._grow_lock = threading.Lock()
        # Content-change log for fingerprint caching: every mutation
        # notes its column interval under a fresh epoch, and
        # ``writes_since`` answers "may [lo, hi) have changed after
        # epoch e?" conservatively -- dropped history and overlaps
        # both collapse to True, never to a false "unchanged".
        self._write_epoch = 0
        self._write_floor = 0
        self._write_log: list[tuple[int, int, int]] = []
        self._write_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Row accounting
    # ------------------------------------------------------------------
    @property
    def touched_count(self) -> int:
        """How many distinct PEs have been touched."""
        return int(self._touched.sum())

    def touched_ids(self) -> list[int]:
        """Touched PE ids in ascending order."""
        return [int(pe) for pe in np.flatnonzero(self._touched)]

    def is_touched(self, pe_id: int) -> bool:
        """Whether ``pe_id`` has a live row."""
        return 0 <= pe_id < self.max_rows and bool(self._touched[pe_id])

    def touch(self, pe_ids) -> np.ndarray:
        """Materialize rows for ``pe_ids``; returns them as an id array."""
        ids = np.asarray(pe_ids, dtype=np.intp).reshape(-1)
        if ids.size:
            self._ensure(int(ids.min()), int(ids.max()) + 1)
            self._touched[ids] = True
        return ids

    def _ensure(self, lo: int, hi: int) -> None:
        """Grow (and possibly re-base) the backing array to cover [lo, hi).

        Double-checked under the growth lock: the in-bounds fast path
        stays lock-free, and two threads racing a first touch build
        the grown array once (the loser re-checks and returns).
        """
        nrows = self._data.shape[0]
        if nrows and lo >= self._base and hi <= self._base + nrows:
            return
        if lo < 0 or hi > self.max_rows:
            raise AllocationError(
                f"arena rows [{lo}, {hi}) outside [0, {self.max_rows})")
        with self._grow_lock:
            nrows = self._data.shape[0]
            if nrows and lo >= self._base and hi <= self._base + nrows:
                return
            new_base = min(lo, self._base) if nrows else lo
            new_end = max(hi, self._base + nrows) if nrows else hi
            # Geometric headroom upward, so touching PEs one by one costs
            # O(log n) reallocations instead of O(n).
            grown = max(new_end - new_base, 2 * nrows)
            new_end = max(new_end, min(new_base + grown, self.max_rows))
            fresh = np.zeros((new_end - new_base, self.mram_bytes),
                             dtype=np.uint8)
            if nrows:
                at = self._base - new_base
                fresh[at:at + nrows] = self._data
            self._base = new_base
            self._data = fresh
            self.version += 1
            self._flat_views = {}

    def _rows(self, ids: np.ndarray) -> np.ndarray:
        return ids - self._base

    def _check_span(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.mram_bytes:
            raise TransferError(
                f"MRAM access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.mram_bytes})")

    # ------------------------------------------------------------------
    # Write tracking (fingerprint-cache invalidation)
    # ------------------------------------------------------------------
    @property
    def write_epoch(self) -> int:
        """Monotonic count of noted content mutations."""
        return self._write_epoch

    def note_write(self, lo: int, hi: int) -> None:
        """Record a (possible) content change over columns ``[lo, hi)``.

        Row-agnostic on purpose: the log stays a handful of integers
        per mutation, and a column overlap on *any* row is enough to
        force a rescan -- elision plans are cheap to rebuild, wrong
        ones are not.  Back-to-back writes to the same interval (the
        steady-state replay pattern) collapse into one entry, so the
        bounded log never churns under a tight replay loop.
        """
        with self._write_lock:
            self._write_epoch += 1
            log = self._write_log
            if log and log[-1][1] == lo and log[-1][2] == hi:
                log[-1] = (self._write_epoch, lo, hi)
            else:
                log.append((self._write_epoch, lo, hi))
                if len(log) > WRITE_LOG_MAX:
                    self._write_floor = log[0][0]
                    del log[0]

    def writes_since(self, epoch: int, lo: int, hi: int) -> bool:
        """Whether ``[lo, hi)`` may have changed after ``epoch``.

        True whenever a logged interval written after ``epoch``
        overlaps, and whenever ``epoch`` predates the retained log
        (dropped entries are assumed to overlap).
        """
        with self._write_lock:
            if epoch < self._write_floor:
                return True
            for e, wlo, whi in reversed(self._write_log):
                if e <= epoch:
                    break
                if wlo < hi and lo < whi:
                    return True
        return False

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def row_view(self, pe_id: int) -> np.ndarray:
        """Zero-copy view of one PE's whole bank (touches the PE).

        Re-derived from the current backing array on every call, so it
        is always safe to use even after the arena has grown.
        """
        ids = self.touch((pe_id,))
        return self._data[int(ids[0]) - self._base]

    def lane_view(self, pe_ids, offset: int, nbytes: int) -> np.ndarray | None:
        """Zero-copy ``(len(pe_ids), nbytes)`` window, when one exists.

        Returns a basic-slice view of the backing array when the PE
        list is a single id, a contiguous run, or a constant positive
        stride (the layouts the hypercube mapping produces for
        entangled groups); returns None for any other ordering, in
        which case callers fall back to one gather/scatter.
        """
        self._check_span(offset, nbytes)
        ids = self.touch(pe_ids)
        if ids.size == 0:
            return None
        rows = self._rows(ids)
        span = self._data[:, offset:offset + nbytes]
        if ids.size == 1:
            return span[rows[0]:rows[0] + 1]
        steps = np.diff(ids)
        step = int(steps[0])
        if step > 0 and bool((steps == step).all()):
            return span[rows[0]:rows[-1] + 1:step]
        return None

    # ------------------------------------------------------------------
    # Streamed-replay flat gathers
    # ------------------------------------------------------------------
    def stream_width(self, offset: int, chunk_bytes: int) -> int:
        """Element width for flat arena-global gathers at this layout.

        The whole chunk when every chunk lands on a chunk-multiple of
        the flattened backing array (``mram_bytes`` and ``offset`` both
        chunk-aligned); otherwise the widest native element (8/4/2/1
        bytes) that divides all three, so the flat index still
        addresses every chunk exactly.
        """
        if self.mram_bytes % chunk_bytes == 0 and offset % chunk_bytes == 0:
            return chunk_bytes
        width = 8
        while chunk_bytes % width or offset % width or self.mram_bytes % width:
            width //= 2
        return width

    def stream_table(self, pe_ids, ngroups: int, offset: int,
                     chunk_bytes: int, lane_table: np.ndarray,
                     slot_table: np.ndarray) -> tuple[np.ndarray, int]:
        """Arena-global flat gather table for row-band streamed replay.

        Lifts a per-group ``(lanes, nslots_out)`` (lane, slot) table
        pair into element indices over the whole backing array viewed
        as :meth:`flat_wide` elements: row ``r = g * lanes + l`` of the
        returned ``(len(pe_ids), nslots_out * chunk_bytes // width)``
        table holds the source elements of output row ``r``, so a band
        of output rows gathers with one ``np.take(..., out=)`` straight
        from the strided source -- no staging copy, and total index
        work independent of the band count.  Returns ``(table,
        width)``; the table is only valid until the arena reallocates
        (key caches on :attr:`version`).
        """
        width = self.stream_width(offset, chunk_bytes)
        ids = self.touch(pe_ids)
        lanes = ids.size // ngroups
        per = chunk_bytes // width
        src_rows = self._rows(ids).reshape(ngroups, lanes)[:, lane_table]
        table = (src_rows * (self.mram_bytes // width)
                 + slot_table * per + offset // width)
        if per > 1:
            table = table[..., None] + np.arange(per, dtype=np.intp)
        table = np.ascontiguousarray(table.reshape(ids.size, -1),
                                     dtype=np.intp)
        table.setflags(write=False)
        return table, width

    def flat_wide(self, width: int) -> np.ndarray:
        """The whole backing array as one flat run of wide elements.

        Cached per width and rebuilt after growth, so steady-state
        band gathers create no new array objects.  Built under the
        growth lock so concurrent band workers hitting a cold cache
        share one read-consistent view.
        """
        view = self._flat_views.get(width)
        if view is None:
            with self._grow_lock:
                view = self._flat_views.get(width)
                if view is None:
                    view = self._data.reshape(-1).view(wide_dtype(width))
                    self._flat_views[width] = view
        return view

    def take_band(self, table: np.ndarray, width: int, r0: int, r1: int,
                  out: np.ndarray) -> None:
        """Gather one row band of a :meth:`stream_table` into ``out``."""
        np.take(self.flat_wide(width), table[r0:r1], out=out)

    def take_select(self, table: np.ndarray, width: int,
                    rows: np.ndarray, out: np.ndarray) -> None:
        """Gather an arbitrary row subset of a :meth:`stream_table`.

        The elision-aware replay path gathers only the representative
        output rows (first occurrence of each distinct content class)
        and fills or aliases the rest, so the expensive strided gather
        shrinks with the elision rate.
        """
        np.take(self.flat_wide(width), table[rows], out=out)

    # ------------------------------------------------------------------
    # Bulk transfers
    # ------------------------------------------------------------------
    def read_rows(self, pe_ids, offset: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` at ``offset`` from each PE into a lane matrix."""
        view = self.lane_view(pe_ids, offset, nbytes)
        if view is not None:
            return view.copy()
        ids = self.touch(pe_ids)
        # Slice the column window first, then gather: the fancy index
        # then copies only the requested bytes, never whole rows.
        return self._data[:, offset:offset + nbytes][self._rows(ids)]

    def gather_chunks(self, pe_ids, offset: int, nslots: int,
                      chunk_bytes: int, ngroups: int,
                      lane_table: np.ndarray,
                      slot_table: np.ndarray,
                      flat_table: np.ndarray | None = None) -> np.ndarray:
        """Fused take-by-index-table over grouped rows (compiled replay).

        Reads ``nslots * chunk_bytes`` bytes at ``offset`` from each PE
        (zero-copy when the id list is a strided run), views the block
        as ``(ngroups, lanes, nslots, chunk_bytes)``, and gathers
        ``out[g, l, s] = block[g, lane[l, s], slot[l, s]]`` in one
        fancy index.  The gather itself materializes the copy, so no
        separate staging copy of the source block is ever made.
        """
        total = nslots * chunk_bytes
        block = self.lane_view(pe_ids, offset, total)
        if block is None:
            ids = self.touch(pe_ids)
            block = self._data[:, offset:offset + total][self._rows(ids)]
        grouped = block.reshape(ngroups, -1, nslots, chunk_bytes)
        return take_chunks_by_table(grouped, lane_table, slot_table,
                                    flat_table)

    def write_rows(self, pe_ids, offset: int, matrix: np.ndarray) -> None:
        """Write lane-matrix rows into each PE at ``offset``."""
        mat = np.asarray(matrix)
        if mat.ndim != 2 or mat.dtype != np.uint8:
            raise TransferError(
                f"expected 2-D uint8 lane matrix, got {mat.dtype} "
                f"ndim={mat.ndim}")
        nbytes = mat.shape[1]
        view = self.lane_view(pe_ids, offset, nbytes)
        ids = self.touch(pe_ids)
        if mat.shape[0] != ids.size:
            raise TransferError(
                f"lane matrix has {mat.shape[0]} rows for {ids.size} PEs")
        self.note_write(offset, offset + nbytes)
        if view is not None:
            view[:] = mat
            return
        self._data[:, offset:offset + nbytes][self._rows(ids)] = mat

    def fill_rows(self, pe_ids, offset: int, row: np.ndarray) -> None:
        """Write the same 1-D uint8 buffer to every listed PE."""
        buf = np.asarray(row)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise TransferError(
                f"MRAM writes take 1-D uint8 buffers, got {buf.dtype} "
                f"ndim={buf.ndim}")
        self.note_write(offset, offset + buf.size)
        view = self.lane_view(pe_ids, offset, buf.size)
        if view is not None:
            view[:] = buf
            return
        ids = self.touch(pe_ids)
        self._data[:, offset:offset + buf.size][self._rows(ids)] = buf

    def zero_fill_rows(self, pe_ids, offset: int, nbytes: int) -> None:
        """Make ``nbytes`` at ``offset`` read all-zero on every row.

        Semantically :meth:`fill_rows` with a zero buffer, but
        verify-first: rows whose region already reads zero are left
        untouched.  A wide read costs well under half a rewrite, and
        the caller -- the elision layer's zero-row fill -- hits the
        already-clean case on every steady-state replay of the same
        sparse collective, so repeated elisions stop dirtying pages.
        Concurrency-safe under the arena's disjoint-rows contract:
        the verify and the conditional write touch only the given
        rows' byte range.
        """
        view = self.lane_view(pe_ids, offset, nbytes)
        if view is not None:
            dirty = view.any(axis=1)
            if dirty.any():
                self.note_write(offset, offset + nbytes)
                view[dirty] = 0
            return
        ids = self.touch(pe_ids)
        rows = self._rows(ids)
        region = self._data[:, offset:offset + nbytes]
        dirty = region[rows].any(axis=1)
        if dirty.any():
            self.note_write(offset, offset + nbytes)
            region[rows[dirty]] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryArena({self._data.shape[0]} rows @ base "
                f"{self._base}, {self.touched_count} touched, "
                f"{self.mram_bytes}B each)")


class ScratchPool:
    """Double-buffered streaming scratch: reusable ping/pong tile buffers.

    Streamed replay (``CommProgram.replay(..., tile_bytes=...)``) moves
    every payload through bounded reusable buffers: **pong** receives
    each gathered output band, **fold** holds the band's reduce
    accumulator, and **ping** stages the full source block on the
    scalar backend (the vectorized backend gathers straight from the
    arena and never touches ping).  Buffers grow geometrically on
    demand and are then reused for every band of every op of every
    replay, so the steady state performs zero heap allocations and --
    on the vectorized backend -- peak working memory is O(tile), not
    O(payload).

    ``peak_bytes`` records the high-water mark of simultaneously
    requested view bytes; on the vectorized backend that is at most
    two tiles (pong + the fold sliver), which the streaming benchmark
    gates on (``benchmarks/bench_stream.py``).
    """

    #: buffer roles, in index order.
    ROLES = ("ping", "pong", "fold")

    def __init__(self) -> None:
        self._bufs = [np.empty(0, dtype=np.uint8) for _ in self.ROLES]
        self._live = [0] * len(self.ROLES)
        self.peak_bytes = 0

    @property
    def capacity_bytes(self) -> int:
        """Total bytes currently backing all buffers."""
        return sum(buf.nbytes for buf in self._bufs)

    def _view(self, index: int, shape: tuple[int, ...],
              dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= int(dim)
        nbytes = count * dt.itemsize
        buf = self._bufs[index]
        if buf.nbytes < nbytes:
            # Geometric growth: repeated replays with slightly varying
            # tile shapes converge on O(1) reallocations.
            buf = np.empty(max(nbytes, 2 * buf.nbytes), dtype=np.uint8)
            self._bufs[index] = buf
        self._live[index] = nbytes
        live = sum(self._live)
        if live > self.peak_bytes:
            self.peak_bytes = live
        return buf[:nbytes].view(dt).reshape(shape)

    def ping(self, shape: tuple[int, ...], dtype=np.uint8) -> np.ndarray:
        """Staging view for the scalar backend's source block."""
        return self._view(0, shape, dtype)

    def pong(self, shape: tuple[int, ...], dtype=np.uint8) -> np.ndarray:
        """Output view for one gathered/fanned row band."""
        return self._view(1, shape, dtype)

    def fold(self, shape: tuple[int, ...], dtype=np.uint8) -> np.ndarray:
        """Accumulator view for one reduce-fold band (chunk-sized rows)."""
        return self._view(2, shape, dtype)

    def release(self) -> None:
        """Mark all views dead for peak accounting (buffers are kept)."""
        self._live = [0] * len(self.ROLES)

    def reset_peak(self) -> None:
        """Restart the high-water mark (e.g. per engine session)."""
        self.peak_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScratchPool({self.capacity_bytes}B capacity, "
                f"peak {self.peak_bytes}B)")
