"""Structured DPU kernels: WRAM-tiled, instruction-counted compute.

Where :mod:`repro.hw.pe` covers pure data movement, this module models
*compute* kernels the way a DPU program runs them: stream MRAM operands
through WRAM tiles, apply the operation element-wise, stream results
back, and count instructions so modelled kernel time can be derived
from the same execution that produces the functional result.

Used by the PE-side reductions of the ring/tree topologies and
available to applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dtypes import DataType, ReduceOp
from ..errors import TransferError
from .memory import PeMemory
from .pe import WRAM_TILE_BYTES
from .timing import MachineParams

#: Modelled DPU instructions per element for a load-op-store triplet.
_INSTR_PER_ELEMENT = 4


def fold_slots(values: np.ndarray, op: ReduceOp,
               out: np.ndarray | None = None) -> np.ndarray:
    """Fold the slot axis of a ``(..., nslots, elems)`` value block.

    The shared reduce kernel of compiled replay: integer dtypes fold
    with one ``ufunc.reduce`` (fixed-width modular arithmetic is
    order-independent, so any fold order is bit-exact); floats keep the
    explicit left fold whose evaluation order matches the interpreted
    backends, so floating-point results stay bit-identical to the
    scalar oracle.  Pass ``out`` (shaped like ``values`` without the
    slot axis) to accumulate into preallocated scratch -- the ``out=``
    variant streamed replay uses so steady-state tiles allocate
    nothing.  ``out`` must not alias ``values``.
    """
    if values.dtype.kind in "iub":
        return op.reduce_axis(values, axis=-2, out=out)
    nslots = values.shape[-2]
    if out is None:
        acc = values[..., 0, :].copy()
    else:
        acc = out
        np.copyto(acc, values[..., 0, :])
    for s in range(1, nslots):
        acc = op.combine(acc, values[..., s, :], out=acc)
    return acc


@dataclass
class KernelStats:
    """Execution counters of one kernel run on one PE."""

    instructions: int = 0
    mram_read_bytes: int = 0
    mram_write_bytes: int = 0
    wram_tiles: int = 0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another run's counters into this one."""
        self.instructions += other.instructions
        self.mram_read_bytes += other.mram_read_bytes
        self.mram_write_bytes += other.mram_write_bytes
        self.wram_tiles += other.wram_tiles

    def seconds(self, params: MachineParams) -> float:
        """Modelled time of this run (PEs execute in parallel)."""
        stream = (self.mram_read_bytes + self.mram_write_bytes) \
            / (params.pe_mram_gbps * 1e9)
        compute = self.instructions / params.pe_ops_per_sec
        return stream + compute


@dataclass(frozen=True)
class ElementwiseKernel:
    """``out[i] = op(a[i], b[i])``, streamed through WRAM tiles.

    The two operand tiles and the output tile share the WRAM, so the
    per-pass tile is a third of the usual staging size.
    """

    op: ReduceOp
    dtype: DataType

    def run(self, memory: PeMemory, a_offset: int, b_offset: int,
            out_offset: int, nbytes: int,
            tile_bytes: int = WRAM_TILE_BYTES // 3) -> KernelStats:
        """Execute on one PE; in-place (out == a or b) is allowed."""
        if nbytes % self.dtype.itemsize:
            raise TransferError(
                f"{nbytes}B is not a whole number of {self.dtype.name} "
                "elements")
        if tile_bytes < self.dtype.itemsize:
            raise TransferError(f"tile of {tile_bytes}B holds no element")
        stats = KernelStats()
        tile_bytes -= tile_bytes % self.dtype.itemsize
        for start in range(0, nbytes, tile_bytes):
            step = min(tile_bytes, nbytes - start)
            a = memory.read(a_offset + start, step).view(self.dtype.np_dtype)
            b = memory.read(b_offset + start, step).view(self.dtype.np_dtype)
            merged = self.op.combine(a, b)
            memory.write(out_offset + start,
                         np.ascontiguousarray(merged).view(np.uint8))
            elements = step // self.dtype.itemsize
            stats.instructions += _INSTR_PER_ELEMENT * elements
            stats.mram_read_bytes += 2 * step
            stats.mram_write_bytes += step
            stats.wram_tiles += 3
        return stats


@dataclass(frozen=True)
class MapKernel:
    """``out[i] = fn(a[i])`` (e.g. ReLU), streamed through WRAM tiles."""

    fn_name: str
    dtype: DataType

    _FNS = {
        "relu": lambda x: np.maximum(x, 0),
        "negate": lambda x: -x,
        "identity": lambda x: x,
    }

    def __post_init__(self) -> None:
        if self.fn_name not in self._FNS:
            raise TransferError(
                f"unknown map fn {self.fn_name!r}; known: "
                f"{sorted(self._FNS)}")

    def run(self, memory: PeMemory, src_offset: int, out_offset: int,
            nbytes: int,
            tile_bytes: int = WRAM_TILE_BYTES // 2) -> KernelStats:
        """Execute on one PE; in-place mapping is allowed."""
        if nbytes % self.dtype.itemsize:
            raise TransferError(
                f"{nbytes}B is not a whole number of {self.dtype.name} "
                "elements")
        stats = KernelStats()
        fn = self._FNS[self.fn_name]
        tile_bytes -= tile_bytes % self.dtype.itemsize
        for start in range(0, nbytes, tile_bytes):
            step = min(tile_bytes, nbytes - start)
            a = memory.read(src_offset + start,
                            step).view(self.dtype.np_dtype)
            memory.write(out_offset + start,
                         np.ascontiguousarray(fn(a)).view(np.uint8))
            elements = step // self.dtype.itemsize
            stats.instructions += (_INSTR_PER_ELEMENT - 1) * elements
            stats.mram_read_bytes += step
            stats.mram_write_bytes += step
            stats.wram_tiles += 2
        return stats
