"""PIM-domain byte striping and domain transfer.

When the host copies a contiguous buffer to an entangled group, the DDR
bus spreads each 64-bit word across the group's 8 chips, one byte lane
per chip (Figure 1).  The UPMEM driver hides this by rearranging bytes
with vector shuffles -- the *domain transfer* (paper section II-B) -- so
that each PE receives whole words.  The rearrangement is exactly a byte
transpose between

* the **host domain**: ``k`` words of ``lanes`` bytes laid out
  contiguously, and
* the **PIM domain**: a ``(lanes, k)`` matrix whose row ``l`` holds byte
  ``l`` of every word and lives in PE ``l``'s bank.

We carry PIM-resident data as such *lane matrices* (numpy uint8 arrays
of shape ``(lanes, nbytes_per_lane)``).  A raw (domain-transfer-free)
host access sees the lane matrix as-is: byte-granular lane permutations
are cheap SIMD shuffles on it (cross-domain modulation), but words in a
single lane cannot be interpreted by the host without the transpose.
"""

from __future__ import annotations

import numpy as np

from ..errors import TransferError
from .pe import check_permutation


def host_to_pim(host_bytes: np.ndarray, lanes: int) -> np.ndarray:
    """Domain-transfer a host-domain byte buffer into a lane matrix.

    Args:
        host_bytes: 1-D uint8 array, length a multiple of ``lanes``.
        lanes: Number of byte lanes (chips per rank).

    Returns:
        A ``(lanes, len(host_bytes) // lanes)`` uint8 array; row ``l``
        holds byte ``l`` of every ``lanes``-byte word.
    """
    buf = _as_bytes(host_bytes)
    if buf.size % lanes:
        raise TransferError(
            f"host buffer of {buf.size} bytes is not a multiple of {lanes} lanes")
    return np.ascontiguousarray(buf.reshape(-1, lanes).T)


def pim_to_host(lane_matrix: np.ndarray) -> np.ndarray:
    """Domain-transfer a lane matrix back to a host-domain byte buffer."""
    matrix = _as_matrix(lane_matrix)
    return np.ascontiguousarray(matrix.T).reshape(-1)


def words_from_lanes(lane_matrix: np.ndarray, np_dtype: np.dtype) -> np.ndarray:
    """Interpret each *lane* as contiguous elements of ``np_dtype``.

    This is the PE's own view of its bank: PEs always see whole
    elements.  Shape of the result is ``(lanes, elems_per_lane)``.
    """
    matrix = _as_matrix(lane_matrix)
    itemsize = np.dtype(np_dtype).itemsize
    if matrix.shape[1] % itemsize:
        raise TransferError(
            f"lane length {matrix.shape[1]} is not a multiple of "
            f"{np_dtype} itemsize {itemsize}")
    return matrix.view(np_dtype)


def lanes_from_words(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`words_from_lanes`: elements back to raw bytes."""
    if words.ndim != 2:
        raise TransferError(f"expected 2-D word matrix, got shape {words.shape}")
    return np.ascontiguousarray(words).view(np.uint8)


def rotate_lanes(lane_matrix: np.ndarray, amount: int) -> np.ndarray:
    """Rotate lane rows downward by ``amount`` (lane l -> lane l+amount).

    Models the byte-level shift (`_mm512_rol_epi64`-style shuffles) used
    by cross-domain modulation: the contents of lane ``l`` move to lane
    ``(l + amount) % lanes`` without touching byte order within a lane.
    """
    matrix = _as_matrix(lane_matrix)
    return np.roll(matrix, amount, axis=0)


def permute_lanes(lane_matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Generic lane permutation: output lane ``l`` = input lane ``perm[l]``."""
    matrix = _as_matrix(lane_matrix)
    perm = np.asarray(permutation)
    if perm.shape != (matrix.shape[0],):
        raise TransferError(
            f"permutation of shape {perm.shape} does not match "
            f"{matrix.shape[0]} lanes")
    return matrix[check_permutation(perm)]


def _as_bytes(buf: np.ndarray) -> np.ndarray:
    arr = np.asarray(buf)
    if arr.dtype != np.uint8 or arr.ndim != 1:
        raise TransferError(
            f"expected 1-D uint8 host buffer, got {arr.dtype} ndim={arr.ndim}")
    return arr


def _as_matrix(lane_matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(lane_matrix)
    if arr.dtype != np.uint8 or arr.ndim != 2:
        raise TransferError(
            f"expected 2-D uint8 lane matrix, got {arr.dtype} ndim={arr.ndim}")
    return arr
