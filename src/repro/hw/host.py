"""Host-side vector-register data path (the AVX-512 modulation engine).

PID-Comm's host pass never lets a word leave one vector register
(in-register modulation): bursts are loaded 64 bytes at a time, lane
rotations are one- or two-source shuffles (``valignq`` /
``vpermi2q``-class), domain transfers are 8x8 byte transposes within a
register, and reductions are vertical SIMD adds.

This module executes those operations *register-wise* on lane matrices
and counts them, so the functional path moves data exactly the way the
real SIMD kernels do and the op counts can be cross-checked against
what the cost model charges (see ``tests/test_host_simd.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..errors import TransferError

#: AVX-512 register width.
REGISTER_BYTES = 64
#: Lanes a single register covers (one entangled group's burst).
REGISTER_LANES = 8


@dataclass
class SimdCounter:
    """Counts of register operations performed by a host pass."""

    loads: int = 0
    stores: int = 0
    shuffles: int = 0
    transposes: int = 0
    adds: int = 0

    def merge(self, other: "SimdCounter") -> None:
        """Accumulate another counter into this one."""
        self.loads += other.loads
        self.stores += other.stores
        self.shuffles += other.shuffles
        self.transposes += other.transposes
        self.adds += other.adds

    @property
    def shuffle_bytes(self) -> int:
        """Bytes that passed through lane shuffles."""
        return self.shuffles * REGISTER_BYTES

    @property
    def transpose_bytes(self) -> int:
        return self.transposes * REGISTER_BYTES

    @property
    def add_bytes(self) -> int:
        return self.adds * REGISTER_BYTES


def _check_row(row: np.ndarray) -> tuple[int, int]:
    if row.ndim != 2 or row.dtype != np.uint8:
        raise TransferError(
            f"expected 2-D uint8 lane matrix, got {row.dtype} "
            f"ndim={row.ndim}")
    lanes, nbytes = row.shape
    if lanes % REGISTER_LANES and lanes < REGISTER_LANES:
        # Sub-register groups are fine (instances pack within one
        # register); only require the matrix to be rectangular.
        pass
    return lanes, nbytes


def rotate_lanes_registerwise(row: np.ndarray, amount: int,
                              counter: SimdCounter | None = None
                              ) -> np.ndarray:
    """Rotate lane rows down by ``amount``, one output register at a time.

    Equivalent to ``np.roll(row, amount, axis=0)`` but executed the way
    the SIMD kernel does: every output register gathers its 8 lanes
    from at most two source registers (one shuffle each when aligned,
    two otherwise).  Groups smaller than a register rotate inside one
    register with a single shuffle.
    """
    lanes, nbytes = _check_row(row)
    counter = counter if counter is not None else SimdCounter()
    out = np.empty_like(row)
    amount %= lanes
    lane_block = min(REGISTER_LANES, lanes)
    col_step = REGISTER_BYTES // lane_block
    for col in range(0, nbytes, col_step):
        width = min(col_step, nbytes - col)
        for block in range(0, lanes, lane_block):
            src_lanes = [(block + i - amount) % lanes
                         for i in range(min(lane_block, lanes - block))]
            source_regs = {l // lane_block for l in src_lanes}
            counter.loads += len(source_regs)
            counter.shuffles += len(source_regs)
            counter.stores += 1
            out[block:block + len(src_lanes), col:col + width] = \
                row[src_lanes, col:col + width]
    return out


@lru_cache(maxsize=None)
def _rotate_block_ops(lanes: int, amount: int) -> tuple[int, int]:
    """Per-column (source-register loads, register stores) of one rotate.

    :func:`rotate_lanes_registerwise`'s inner loop charges the same ops
    for every column, so the whole matrix costs ``ncols`` times these
    block sums; caching them lets the vectorized backend charge a
    rotation without walking the blocks again.
    """
    amount %= lanes
    lane_block = min(REGISTER_LANES, lanes)
    loads = 0
    stores = 0
    for block in range(0, lanes, lane_block):
        src_lanes = [(block + i - amount) % lanes
                     for i in range(min(lane_block, lanes - block))]
        loads += len({l // lane_block for l in src_lanes})
        stores += 1
    return loads, stores


def count_rotate_ops(lanes: int, nbytes: int, amount: int,
                     counter: SimdCounter) -> None:
    """Charge exactly what ``rotate_lanes_registerwise`` would, datalessly."""
    lane_block = min(REGISTER_LANES, lanes)
    col_step = REGISTER_BYTES // lane_block
    ncols = (nbytes + col_step - 1) // col_step
    loads, stores = _rotate_block_ops(lanes, amount)
    counter.loads += ncols * loads
    counter.shuffles += ncols * loads
    counter.stores += ncols * stores


@lru_cache(maxsize=None)
def _rotate_sweep_ops(lanes: int, nbytes: int,
                      nslots: int) -> tuple[int, int, int]:
    """(loads, shuffles, stores) of rotating slots ``0..nslots-1``."""
    probe = SimdCounter()
    for amount in range(nslots):
        count_rotate_ops(lanes, nbytes, amount, probe)
    return probe.loads, probe.shuffles, probe.stores


def charge_rotate_sweep(lanes: int, nbytes: int, nslots: int,
                        counter: SimdCounter) -> None:
    """Charge the full slot sweep (rotations ``0..nslots-1``) at once.

    This is the register-op bill of :func:`rotate_all_slots` /
    :func:`fanout_all_slots`; plan lowering uses it to pre-price a
    compiled program's host pass without touching data.
    """
    loads, shuffles, stores = _rotate_sweep_ops(lanes, nbytes, nslots)
    counter.loads += loads
    counter.shuffles += shuffles
    counter.stores += stores


@lru_cache(maxsize=None)
def rotation_table(lanes: int, nslots: int) -> np.ndarray:
    """Read-only ``(lanes, nslots)`` source-lane table of the slot sweep.

    ``table[l, s] = (l - s) % lanes``: the gather index both
    :func:`rotate_all_slots` and :func:`fanout_all_slots` apply, shared
    (memoized) across calls and across compiled programs.
    """
    table = (np.arange(lanes, dtype=np.intp)[:, None]
             - np.arange(nslots, dtype=np.intp)[None, :]) % lanes
    table.setflags(write=False)
    return table


def rotate_all_slots(tensor: np.ndarray,
                     counter: SimdCounter | None = None) -> np.ndarray:
    """Every slot's lane rotation in one gather: slot ``s`` rolls by ``s``.

    ``tensor`` is a ``(lanes, nslots, chunk_bytes)`` uint8 array;
    ``out[l, s] = tensor[(l - s) % lanes, s]``.  This is the batched
    equivalent of calling :func:`rotate_lanes_registerwise` on each
    slot's ``(lanes, chunk_bytes)`` row with ``amount = s``; the
    counter is charged identically (cost parity is asserted by
    ``tests/test_backend_parity.py``).
    """
    if tensor.ndim != 3 or tensor.dtype != np.uint8:
        raise TransferError(
            f"expected 3-D uint8 slot tensor, got {tensor.dtype} "
            f"ndim={tensor.ndim}")
    lanes, nslots, _chunk = tensor.shape
    counter = counter if counter is not None else SimdCounter()
    charge_rotate_sweep(lanes, tensor.shape[2], nslots, counter)
    src = rotation_table(lanes, nslots)
    return tensor[src, np.arange(nslots)[None, :], :]


def fanout_all_slots(row: np.ndarray, nslots: int,
                     counter: SimdCounter | None = None) -> np.ndarray:
    """Stack ``nslots`` downward rotations of one lane row.

    ``out[l, s] = row[(l - s) % lanes]``: the batched equivalent of
    writing ``rotate_lanes_registerwise(row, s)`` per slot (the
    AllGather fan-out), with identical counter charges.  Returns a
    ``(lanes, nslots, row_bytes)`` array.
    """
    lanes, nbytes = _check_row(row)
    counter = counter if counter is not None else SimdCounter()
    charge_rotate_sweep(lanes, nbytes, nslots, counter)
    src = rotation_table(lanes, nslots)
    return row[src]


def domain_transfer_registerwise(row: np.ndarray,
                                 counter: SimdCounter | None = None
                                 ) -> np.ndarray:
    """Transpose between PIM and host domain, register by register.

    Each 64-byte register holds an 8x8 byte tile (8 lanes x 8 bytes);
    the domain transfer is the in-register transpose of that tile.
    The operation is an involution, so it converts either direction.
    For groups of other sizes the tile is lanes x (64/lanes) and the
    transpose exchanges the axes the same way.
    """
    lanes, nbytes = _check_row(row)
    counter = counter if counter is not None else SimdCounter()
    word = REGISTER_BYTES // min(lanes, REGISTER_LANES)
    if nbytes % word:
        raise TransferError(
            f"lane length {nbytes} is not a whole number of {word}-byte "
            "words")
    out = np.empty_like(row)
    lane_block = min(REGISTER_LANES, lanes)
    for col in range(0, nbytes, word):
        for block in range(0, lanes, lane_block):
            height = min(lane_block, lanes - block)
            tile = row[block:block + height, col:col + word]
            if height == word:
                out[block:block + height, col:col + word] = tile.T
            else:
                # Non-square tile: transpose via reshape (the hardware
                # uses a pair of shuffles either way).
                flat = tile.reshape(-1)
                out[block:block + height, col:col + word] = (
                    flat.reshape(word, height).T)
            counter.transposes += 1
    return out


def vertical_add_registerwise(acc: np.ndarray, row: np.ndarray,
                              np_dtype: np.dtype,
                              counter: SimdCounter | None = None,
                              ufunc: np.ufunc = np.add) -> np.ndarray:
    """Elementwise-reduce ``row`` into ``acc``, counting register adds.

    Both arguments are (lanes, nbytes) uint8 matrices whose lanes hold
    whole elements of ``np_dtype``; the reduction is one vertical SIMD
    op per 64 loaded bytes.
    """
    lanes, nbytes = _check_row(acc)
    if row.shape != acc.shape:
        raise TransferError(
            f"operand shapes differ: {acc.shape} vs {row.shape}")
    counter = counter if counter is not None else SimdCounter()
    total = lanes * nbytes
    regs = (total + REGISTER_BYTES - 1) // REGISTER_BYTES
    counter.loads += regs
    counter.adds += regs
    merged = ufunc(acc.view(np_dtype), row.view(np_dtype))
    return np.ascontiguousarray(merged).view(np.uint8)
