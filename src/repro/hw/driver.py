"""UPMEM-SDK-style driver surface over the simulated system.

The real PID-Comm is implemented against the UPMEM host SDK (paper
section VI-B): DPU *sets* are allocated at rank granularity, data moves
with ``dpu_copy_to/from`` (single DPU), ``dpu_push_xfer`` (parallel
per-DPU buffers) and ``dpu_broadcast_to`` (same buffer to all), and the
driver performs the domain transfer transparently -- which PID-Comm
selectively disables.

This module reproduces that API shape over :class:`DimmSystem`, so host
code written for the SDK ports with minimal edits, and the library's
internals can be read against familiar names.  Transfers return the
modelled cost of the call, priced exactly like the plan steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..errors import AllocationError, TransferDropped, TransferError
from ..reliability.checksum import guarded_delivery
from ..reliability.faults import partial_prefix
from .system import DimmSystem
from .timing import CostLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultInjector

#: Transfer directions, named after the SDK's enum.
XFER_TO_DPU = "to_dpu"
XFER_FROM_DPU = "from_dpu"


@dataclass
class DpuRankSet:
    """A set of allocated ranks (the SDK's ``dpu_set_t``)."""

    system: DimmSystem
    rank_ids: tuple[int, ...]  # global (channel * ranks + rank) indices

    @property
    def pe_ids(self) -> tuple[int, ...]:
        geom = self.system.geometry
        per_rank = geom.pes_per_rank
        pes: list[int] = []
        for rank in self.rank_ids:
            base = rank * per_rank
            pes.extend(range(base, base + per_rank))
        return tuple(pes)

    @property
    def nr_dpus(self) -> int:
        return len(self.pe_ids)

    def __iter__(self):
        return iter(self.pe_ids)


class DpuDriver:
    """Rank allocation + transfers + launches (the SDK's host API).

    Args:
        system: The simulated substrate.
        fault_injector: Optional fault source for this driver; when
            omitted, the system's attached injector (if any) applies.
            Every transfer is checksum-verified end to end, so injected
            in-flight corruption raises
            :class:`~repro.errors.ChecksumError` instead of landing.
    """

    def __init__(self, system: DimmSystem,
                 fault_injector: "FaultInjector | None" = None) -> None:
        self.system = system
        self._allocated: set[int] = set()
        self.ledger = CostLedger()
        self._fault_injector = fault_injector

    @property
    def fault_injector(self) -> "FaultInjector | None":
        """This driver's fault source (its own, else the system's)."""
        if self._fault_injector is not None:
            return self._fault_injector
        return self.system.fault_injector

    def _guard(self, pes: Sequence[int]) -> "FaultInjector | None":
        injector = self.fault_injector
        if injector is not None:
            injector.guard_pes(self.system.geometry, pes)
        return injector

    # ------------------------------------------------------------------
    # Allocation (dpu_alloc / dpu_free)
    # ------------------------------------------------------------------
    @property
    def total_ranks(self) -> int:
        geom = self.system.geometry
        return geom.channels * geom.ranks_per_channel

    def alloc_ranks(self, nr_ranks: int) -> DpuRankSet:
        """Allocate ``nr_ranks`` free ranks (lowest ids first)."""
        free = [r for r in range(self.total_ranks)
                if r not in self._allocated]
        if len(free) < nr_ranks:
            raise AllocationError(
                f"requested {nr_ranks} ranks but only {len(free)} free")
        chosen = tuple(free[:nr_ranks])
        self._allocated.update(chosen)
        return DpuRankSet(self.system, chosen)

    def free(self, dpu_set: DpuRankSet) -> None:
        """Release a rank set."""
        self._allocated.difference_update(dpu_set.rank_ids)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def copy_to(self, dpu_set: DpuRankSet, pe_index: int, offset: int,
                data: np.ndarray) -> float:
        """``dpu_copy_to``: one buffer to one DPU of the set."""
        buf = self._as_bytes(data)
        pe = dpu_set.pe_ids[pe_index]
        injector = self._guard([pe])
        buf = guarded_delivery(injector, buf, "dpu_copy_to")
        self.system.memory(pe).write(offset, buf)
        return self._charge_transfer([pe], buf.size, domain_transfer=True)

    def copy_from(self, dpu_set: DpuRankSet, pe_index: int, offset: int,
                  nbytes: int) -> np.ndarray:
        """``dpu_copy_from``: one buffer back from one DPU."""
        pe = dpu_set.pe_ids[pe_index]
        injector = self._guard([pe])
        data = self.system.memory(pe).read(offset, nbytes)
        data = guarded_delivery(injector, data, "dpu_copy_from")
        self._charge_transfer([pe], nbytes, domain_transfer=True)
        return data

    def push_xfer(self, dpu_set: DpuRankSet, direction: str, offset: int,
                  buffers: Sequence[np.ndarray] | None = None,
                  nbytes: int | None = None,
                  domain_transfer: bool = True):
        """``dpu_push_xfer``: parallel per-DPU buffers, rank-batched.

        ``domain_transfer=False`` is the hook PID-Comm uses: the driver
        skips the byte rearrangement and the host receives/provides raw
        PIM-domain data (section VI-B "we manipulated the conventional
        library to disable automatic domain transfer").
        """
        pes = dpu_set.pe_ids
        injector = self._guard(pes)
        if direction == XFER_TO_DPU:
            if buffers is None or len(buffers) != len(pes):
                raise TransferError(
                    f"push_xfer to_dpu needs one buffer per DPU "
                    f"({len(pes)})")
            bufs = [self._as_bytes(b) for b in buffers]
            sizes = {b.size for b in bufs}
            if len(sizes) != 1:
                raise TransferError("push_xfer buffers must be equal-sized")
            if injector is not None:
                if injector.take_drop():
                    # Partial rank-batched transfer: a prefix of the
                    # DPUs receives its buffer before the batch aborts.
                    reached = partial_prefix(list(pes))
                    for pe, buf in zip(reached, bufs):
                        self.system.memory(pe).write(offset, buf)
                    raise TransferDropped(
                        f"push_xfer to_dpu dropped after "
                        f"{len(reached)}/{len(pes)} DPUs")
                stacked = guarded_delivery(injector, np.stack(bufs),
                                           "push_xfer to_dpu", drop=False)
                bufs = list(stacked)
            for pe, buf in zip(pes, bufs):
                self.system.memory(pe).write(offset, buf)
            seconds = self._charge_transfer(pes, sizes.pop() * len(pes),
                                            domain_transfer)
            return seconds
        if direction == XFER_FROM_DPU:
            if nbytes is None:
                raise TransferError("push_xfer from_dpu needs nbytes")
            out = [self.system.memory(pe).read(offset, nbytes) for pe in pes]
            if injector is not None:
                stacked = guarded_delivery(injector, np.stack(out),
                                           "push_xfer from_dpu")
                out = [row for row in stacked]
            self._charge_transfer(pes, nbytes * len(pes), domain_transfer)
            return out
        raise TransferError(f"unknown direction {direction!r}")

    def broadcast_to(self, dpu_set: DpuRankSet, offset: int,
                     data: np.ndarray) -> float:
        """``dpu_broadcast_to``: same buffer to every DPU (fast path:
        one domain transfer serves all copies)."""
        buf = self._as_bytes(data)
        pes = dpu_set.pe_ids
        injector = self._guard(pes)
        buf = guarded_delivery(injector, buf, "dpu_broadcast_to")
        for pe in pes:
            self.system.memory(pe).write(offset, buf)
        params = self.system.params
        geom = self.system.geometry
        seconds = params.bus_time(buf.size * len(pes),
                                  geom.channels_used(pes),
                                  geom.lane_utilization(pes))
        seconds += params.dt_time(buf.size)
        self.ledger.add("bus", seconds - params.dt_time(buf.size))
        self.ledger.add("dt", params.dt_time(buf.size))
        return seconds

    # ------------------------------------------------------------------
    # Kernel launches
    # ------------------------------------------------------------------
    def launch(self, dpu_set: DpuRankSet,
               kernel: Callable[[int, "DimmSystem"], None] | None = None
               ) -> float:
        """``dpu_launch``: run a per-DPU kernel function synchronously.

        ``kernel(pe_id, system)`` runs once per DPU (functionally); the
        modelled cost is the launch overhead -- compute time is the
        kernel author's to account (see ``repro/hw/kernels.py``).
        """
        injector = self._guard(dpu_set.pe_ids)
        if injector is not None:
            injector.take_timeout("dpu_launch")
        if kernel is not None:
            for pe in dpu_set.pe_ids:
                kernel(pe, self.system)
        seconds = self.system.params.kernel_launch_s
        self.ledger.add("launch", seconds)
        return seconds

    # ------------------------------------------------------------------
    def _as_bytes(self, data: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(data)
        return arr.reshape(-1).view(np.uint8)

    def _charge_transfer(self, pes, nbytes: int,
                         domain_transfer: bool) -> float:
        params = self.system.params
        geom = self.system.geometry
        bus = params.bus_time(nbytes, geom.channels_used(pes),
                              geom.lane_utilization(pes))
        self.ledger.add("bus", bus)
        seconds = bus
        if domain_transfer:
            dt = params.dt_time(nbytes)
            self.ledger.add("dt", dt)
            seconds += dt
        return seconds
