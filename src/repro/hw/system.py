"""The :class:`DimmSystem` facade: geometry + memories + data movement.

This is the substrate every higher layer builds on.  It exposes

* symmetric MRAM buffer allocation (UPMEM-style: the same offset is
  valid on every PE),
* per-PE typed reads/writes (the PE's own whole-element view),
* lane-matrix reads/writes over ordered PE lists (the host's burst view
  used by the collective engine), and
* lazy per-PE memory so analytic (cost-only) runs allocate nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import AllocationError, TransferDropped, TransferError
from .geometry import DimmGeometry
from .memory import MRAM_DEFAULT_BYTES, PeMemory
from .timing import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultInjector


class DimmSystem:
    """A simulated system of PIM-enabled DIMMs.

    Args:
        geometry: Channel/rank/chip/bank shape; defaults to the paper's
            1024-PE testbed.
        params: Machine cost parameters for pricing plans.
        mram_bytes: Simulated MRAM size per PE (functional runs only).
    """

    def __init__(
        self,
        geometry: DimmGeometry | None = None,
        params: MachineParams | None = None,
        mram_bytes: int = MRAM_DEFAULT_BYTES,
    ) -> None:
        self.geometry = geometry or DimmGeometry()
        self.params = params or MachineParams()
        self.mram_bytes = mram_bytes
        self._memories: dict[int, PeMemory] = {}
        self._alloc_cursor = 0
        #: Optional fault source consulted by every lane transfer (and
        #: by :class:`~repro.hw.driver.DpuDriver`).  None = perfect
        #: hardware, the historical behavior.
        self.fault_injector: "FaultInjector | None" = None

    def attach_fault_injector(self, injector: "FaultInjector | None"
                              ) -> "DimmSystem":
        """Install (or clear) the system's fault source; returns self."""
        self.fault_injector = injector
        return self

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_testbed(cls, params: MachineParams | None = None,
                      mram_bytes: int = 64 << 20) -> "DimmSystem":
        """The evaluation system: 4 ch x 4 rk x 8 chips x 8 banks.

        MRAM defaults to the real UPMEM bank size (64 MiB); memories
        are lazy, so analytic runs still allocate nothing.
        """
        return cls(DimmGeometry(4, 4, 8, 8), params, mram_bytes)

    @classmethod
    def small(cls, params: MachineParams | None = None,
              mram_bytes: int = MRAM_DEFAULT_BYTES) -> "DimmSystem":
        """A small system for tests: 2 ch x 1 rk x 4 chips x 4 banks = 32 PEs."""
        return cls(DimmGeometry(2, 1, 4, 4), params, mram_bytes)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.geometry.num_pes

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` of symmetric MRAM on every PE.

        Returns the offset, valid on all PEs (UPMEM symbols work the
        same way).  A simple bump allocator; there is no free().
        """
        if nbytes <= 0:
            raise AllocationError(f"alloc size must be positive, got {nbytes}")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"align must be a power of two, got {align}")
        offset = (self._alloc_cursor + align - 1) & ~(align - 1)
        if offset + nbytes > self.mram_bytes:
            raise AllocationError(
                f"MRAM exhausted: need [{offset}, {offset + nbytes}) of "
                f"{self.mram_bytes} bytes per PE")
        self._alloc_cursor = offset + nbytes
        return offset

    def reset_allocations(self) -> None:
        """Forget all allocations (buffers' contents are untouched)."""
        self._alloc_cursor = 0

    def memory(self, pe_id: int) -> PeMemory:
        """The (lazily created) memories of one PE."""
        self.geometry._check_pe(pe_id)
        mem = self._memories.get(pe_id)
        if mem is None:
            mem = PeMemory(self.mram_bytes)
            self._memories[pe_id] = mem
        return mem

    @property
    def touched_pes(self) -> int:
        """How many PEs have materialized memories (test/debug aid)."""
        return len(self._memories)

    # ------------------------------------------------------------------
    # Per-PE typed access (the PE's own element view of its bank)
    # ------------------------------------------------------------------
    def write_elements(self, pe_id: int, offset: int, values: np.ndarray,
                       dtype: DataType) -> None:
        """Store a 1-D element array into a PE's MRAM at ``offset``."""
        arr = np.ascontiguousarray(values, dtype=dtype.np_dtype)
        if arr.ndim != 1:
            raise TransferError(f"expected 1-D values, got shape {arr.shape}")
        self.memory(pe_id).write(offset, arr.view(np.uint8))

    def read_elements(self, pe_id: int, offset: int, count: int,
                      dtype: DataType) -> np.ndarray:
        """Load ``count`` elements from a PE's MRAM at ``offset``."""
        nbytes = count * dtype.itemsize
        raw = self.memory(pe_id).read(offset, nbytes)
        return raw.view(dtype.np_dtype)

    # ------------------------------------------------------------------
    # Lane-matrix access (the host's burst view over an ordered PE list)
    # ------------------------------------------------------------------
    def read_lanes(self, pe_ids: Sequence[int], offset: int,
                   nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``offset`` from each PE into a lane matrix.

        Row ``i`` of the returned ``(len(pe_ids), nbytes)`` uint8 array
        is PE ``pe_ids[i]``'s bytes.  This is the raw (PIM-domain) view
        a domain-transfer-free host transfer produces.
        """
        if not pe_ids:
            raise TransferError("read_lanes over an empty PE list")
        injector = self.fault_injector
        if injector is not None:
            injector.guard_pes(self.geometry, pe_ids)
        rows = [self.memory(pe).read(offset, nbytes) for pe in pe_ids]
        matrix = np.stack(rows, axis=0)
        if injector is not None:
            from ..reliability.checksum import guarded_delivery
            matrix = guarded_delivery(injector, matrix, "read_lanes")
        return matrix

    def write_lanes(self, pe_ids: Sequence[int], offset: int,
                    matrix: np.ndarray) -> None:
        """Write lane matrix rows back to the PEs (inverse of read_lanes)."""
        mat = np.asarray(matrix)
        if mat.ndim != 2 or mat.dtype != np.uint8:
            raise TransferError(
                f"expected 2-D uint8 lane matrix, got {mat.dtype} ndim={mat.ndim}")
        if mat.shape[0] != len(pe_ids):
            raise TransferError(
                f"lane matrix has {mat.shape[0]} rows for {len(pe_ids)} PEs")
        injector = self.fault_injector
        if injector is not None:
            from ..reliability.checksum import guarded_delivery
            from ..reliability.faults import partial_prefix
            injector.guard_pes(self.geometry, pe_ids)
            if injector.take_drop():
                # Partial delivery: a prefix of the lanes lands before
                # the burst is abandoned, then the fault surfaces.
                reached = partial_prefix(list(pe_ids))
                for row, pe in zip(mat, reached):
                    self.memory(pe).write(offset, row)
                raise TransferDropped(
                    f"write_lanes dropped after {len(reached)}/"
                    f"{len(pe_ids)} lanes")
            mat = guarded_delivery(injector, mat, "write_lanes", drop=False)
        for row, pe in zip(mat, pe_ids):
            self.memory(pe).write(offset, row)

    # ------------------------------------------------------------------
    # Bulk host <-> PIM helpers (per-PE distinct payloads)
    # ------------------------------------------------------------------
    def scatter_elements(self, pe_ids: Iterable[int], offset: int,
                         per_pe_values: Sequence[np.ndarray],
                         dtype: DataType) -> None:
        """Write a distinct element array to each PE (functional only)."""
        pes = list(pe_ids)
        if len(pes) != len(per_pe_values):
            raise TransferError(
                f"{len(pes)} PEs but {len(per_pe_values)} payloads")
        for pe, values in zip(pes, per_pe_values):
            self.write_elements(pe, offset, values, dtype)

    def gather_elements(self, pe_ids: Iterable[int], offset: int,
                        count: int, dtype: DataType) -> list[np.ndarray]:
        """Read ``count`` elements from each PE (functional only)."""
        return [self.read_elements(pe, offset, count, dtype) for pe in pe_ids]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DimmSystem({self.geometry.describe()})"
