"""The :class:`DimmSystem` facade: geometry + memories + data movement.

This is the substrate every higher layer builds on.  It exposes

* symmetric MRAM buffer allocation (UPMEM-style: the same offset is
  valid on every PE),
* per-PE typed reads/writes (the PE's own whole-element view),
* lane-matrix reads/writes over ordered PE lists (the host's burst view
  used by the collective engine), and
* lazy per-PE memory so analytic (cost-only) runs allocate nothing.

Two execution backends sit behind the same API:

* ``"scalar"`` -- each PE owns a private :class:`PeMemory`; lane
  transfers loop over PEs.  Simple, and the correctness oracle.
* ``"vectorized"`` -- all touched PEs' banks live in one lane-major
  :class:`~repro.hw.arena.MemoryArena`; lane transfers, broadcasts and
  PE-local permutations are single numpy operations over the whole PE
  list.  Results and cost accounting are bit-identical to scalar
  (``docs/performance.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..dtypes import DataType
from ..errors import AllocationError, TransferDropped, TransferError
from ..reliability.checksum import guarded_delivery
from ..reliability.faults import partial_prefix
from .arena import MemoryArena
from .geometry import DimmGeometry
from .memory import MRAM_DEFAULT_BYTES, WRAM_BYTES, ArenaPeMemory, PeMemory
from .pe import (
    WRAM_TILE_BYTES,
    batched_permute_tiles,
    check_permutation_rows,
    permute_chunks_batched,
    take_chunks_by_table,
    wram_permute_chunks,
)
from .timing import MachineParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..reliability.faults import FaultInjector

#: Execution backends selectable per system (and per Communicator).
BACKENDS = ("scalar", "vectorized")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise AllocationError(
            f"unknown backend {backend!r}; known: {BACKENDS}")
    return backend


class DimmSystem:
    """A simulated system of PIM-enabled DIMMs.

    Args:
        geometry: Channel/rank/chip/bank shape; defaults to the paper's
            1024-PE testbed.
        params: Machine cost parameters for pricing plans.
        mram_bytes: Simulated MRAM size per PE (functional runs only).
        backend: ``"scalar"`` (per-PE arrays, the oracle) or
            ``"vectorized"`` (lane-major arena, batched transfers).
    """

    def __init__(
        self,
        geometry: DimmGeometry | None = None,
        params: MachineParams | None = None,
        mram_bytes: int = MRAM_DEFAULT_BYTES,
        backend: str = "scalar",
    ) -> None:
        self.geometry = geometry or DimmGeometry()
        self.params = params or MachineParams()
        self.mram_bytes = mram_bytes
        self._backend = _check_backend(backend)
        self._arena: MemoryArena | None = None
        self._memories: dict[int, PeMemory] = {}
        self._alloc_cursor = 0
        #: Optional fault source consulted by every lane transfer (and
        #: by :class:`~repro.hw.driver.DpuDriver`).  None = perfect
        #: hardware, the historical behavior.
        self.fault_injector: "FaultInjector | None" = None

    def attach_fault_injector(self, injector: "FaultInjector | None"
                              ) -> "DimmSystem":
        """Install (or clear) the system's fault source; returns self."""
        self.fault_injector = injector
        return self

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_testbed(cls, params: MachineParams | None = None,
                      mram_bytes: int = 64 << 20,
                      backend: str = "scalar") -> "DimmSystem":
        """The evaluation system: 4 ch x 4 rk x 8 chips x 8 banks.

        MRAM defaults to the real UPMEM bank size (64 MiB); memories
        are lazy, so analytic runs still allocate nothing.
        """
        return cls(DimmGeometry(4, 4, 8, 8), params, mram_bytes, backend)

    @classmethod
    def small(cls, params: MachineParams | None = None,
              mram_bytes: int = MRAM_DEFAULT_BYTES,
              backend: str = "scalar") -> "DimmSystem":
        """A small system for tests: 2 ch x 1 rk x 4 chips x 4 banks = 32 PEs."""
        return cls(DimmGeometry(2, 1, 4, 4), params, mram_bytes, backend)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @property
    def num_pes(self) -> int:
        return self.geometry.num_pes

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` of symmetric MRAM on every PE.

        Returns the offset, valid on all PEs (UPMEM symbols work the
        same way).  A simple bump allocator; there is no free().
        """
        if nbytes <= 0:
            raise AllocationError(f"alloc size must be positive, got {nbytes}")
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"align must be a power of two, got {align}")
        offset = (self._alloc_cursor + align - 1) & ~(align - 1)
        if offset + nbytes > self.mram_bytes:
            raise AllocationError(
                f"MRAM exhausted: need [{offset}, {offset + nbytes}) of "
                f"{self.mram_bytes} bytes per PE")
        self._alloc_cursor = offset + nbytes
        return offset

    def reset_allocations(self) -> None:
        """Forget all allocations (buffers' contents are untouched)."""
        self._alloc_cursor = 0

    def memory(self, pe_id: int) -> PeMemory:
        """The (lazily created) memories of one PE."""
        self.geometry._check_pe(pe_id)
        mem = self._memories.get(pe_id)
        if mem is None:
            if self.vectorized:
                mem = ArenaPeMemory(self._ensure_arena(), pe_id)
            else:
                mem = PeMemory(self.mram_bytes)
            self._memories[pe_id] = mem
        return mem

    def materialize(self, pe_ids: Sequence[int]) -> None:
        """Pre-create backing state for ``pe_ids`` (parallel-safe prep).

        The parallel engine calls this serially before dispatching a
        wave's members to worker threads: with every member PE's row
        (vectorized) or ``PeMemory`` (scalar) already live, concurrent
        execution never triggers an arena reallocation or a
        ``_memories`` dict insert mid-wave -- workers only read and
        write disjoint, already-materialized byte ranges.
        """
        if self.vectorized:
            self._ensure_arena().touch(self._lane_ids(pe_ids))
            return
        for pe in pe_ids:
            self.memory(int(pe))

    @property
    def touched_pes(self) -> int:
        """How many PEs have materialized memories (test/debug aid)."""
        if self.vectorized:
            # Bulk transfers touch arena rows without creating per-PE
            # handle objects; the arena's touched set is the truth.
            return self._arena.touched_count if self._arena else 0
        return len(self._memories)

    # ------------------------------------------------------------------
    # Execution backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """Active execution backend name (see :data:`BACKENDS`)."""
        return self._backend

    @property
    def vectorized(self) -> bool:
        """True when the lane-major arena backend is active."""
        return self._backend == "vectorized"

    @property
    def arena(self) -> MemoryArena | None:
        """The lane-major arena, if the vectorized backend has one live."""
        return self._arena

    def _ensure_arena(self) -> MemoryArena:
        arena = self._arena
        if arena is None:
            arena = MemoryArena(self.mram_bytes, self.num_pes)
            self._arena = arena
        return arena

    def _lane_ids(self, pe_ids: Sequence[int]) -> np.ndarray:
        """Validate an ordered PE list once, as an index array."""
        ids = np.asarray(pe_ids, dtype=np.intp).reshape(-1)
        if ids.size:
            lo, hi = int(ids.min()), int(ids.max())
            if lo < 0:
                self.geometry._check_pe(lo)
            if hi >= self.num_pes:
                self.geometry._check_pe(hi)
        return ids

    def set_backend(self, backend: str) -> "DimmSystem":
        """Switch execution backends in place; returns self.

        All live PE state (MRAM contents, WRAM scratchpads, the touched
        set) migrates across, so a mid-run switch is transparent.
        Untouched PEs stay unallocated in both directions.
        """
        _check_backend(backend)
        if backend == self._backend:
            return self
        old_memories = self._memories
        old_arena = self._arena
        self._memories = {}
        self._backend = backend
        if backend == "vectorized":
            self._arena = None
            arena = self._ensure_arena()
            for pe, mem in old_memories.items():
                fresh = ArenaPeMemory(arena, pe)
                fresh.mram[:] = mem.mram
                fresh.wram[:] = mem.wram
                self._memories[pe] = fresh
        else:
            self._arena = None
            if old_arena is not None:
                for pe in old_arena.touched_ids():
                    fresh = PeMemory(self.mram_bytes)
                    fresh.mram[:] = old_arena.row_view(pe)
                    prev = old_memories.get(pe)
                    if prev is not None:
                        fresh.wram[:] = prev.wram
                    self._memories[pe] = fresh
        return self

    # ------------------------------------------------------------------
    # Per-PE typed access (the PE's own element view of its bank)
    # ------------------------------------------------------------------
    def write_elements(self, pe_id: int, offset: int, values: np.ndarray,
                       dtype: DataType) -> None:
        """Store a 1-D element array into a PE's MRAM at ``offset``."""
        arr = np.ascontiguousarray(values, dtype=dtype.np_dtype)
        if arr.ndim != 1:
            raise TransferError(f"expected 1-D values, got shape {arr.shape}")
        self.memory(pe_id).write(offset, arr.view(np.uint8))

    def read_elements(self, pe_id: int, offset: int, count: int,
                      dtype: DataType) -> np.ndarray:
        """Load ``count`` elements from a PE's MRAM at ``offset``."""
        nbytes = count * dtype.itemsize
        raw = self.memory(pe_id).read(offset, nbytes)
        return raw.view(dtype.np_dtype)

    # ------------------------------------------------------------------
    # Lane-matrix access (the host's burst view over an ordered PE list)
    # ------------------------------------------------------------------
    def read_lanes(self, pe_ids: Sequence[int], offset: int,
                   nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``offset`` from each PE into a lane matrix.

        Row ``i`` of the returned ``(len(pe_ids), nbytes)`` uint8 array
        is PE ``pe_ids[i]``'s bytes.  This is the raw (PIM-domain) view
        a domain-transfer-free host transfer produces.
        """
        if not len(pe_ids):
            raise TransferError("read_lanes over an empty PE list")
        injector = self.fault_injector
        if injector is not None:
            injector.guard_pes(self.geometry, pe_ids)
        if self.vectorized:
            matrix = self._ensure_arena().read_rows(
                self._lane_ids(pe_ids), offset, nbytes)
        else:
            rows = [self.memory(pe).read(offset, nbytes) for pe in pe_ids]
            matrix = np.stack(rows, axis=0)
        if injector is not None:
            matrix = guarded_delivery(injector, matrix, "read_lanes")
        return matrix

    def write_lanes(self, pe_ids: Sequence[int], offset: int,
                    matrix: np.ndarray) -> None:
        """Write lane matrix rows back to the PEs (inverse of read_lanes)."""
        mat = np.asarray(matrix)
        if mat.ndim != 2 or mat.dtype != np.uint8:
            raise TransferError(
                f"expected 2-D uint8 lane matrix, got {mat.dtype} ndim={mat.ndim}")
        if mat.shape[0] != len(pe_ids):
            raise TransferError(
                f"lane matrix has {mat.shape[0]} rows for {len(pe_ids)} PEs")
        injector = self.fault_injector
        if injector is not None:
            injector.guard_pes(self.geometry, pe_ids)
            if injector.take_drop():
                # Partial delivery: a prefix of the lanes lands before
                # the burst is abandoned, then the fault surfaces.
                reached = partial_prefix(list(pe_ids))
                if self.vectorized:
                    self._ensure_arena().write_rows(
                        self._lane_ids(reached), offset,
                        mat[:len(reached)])
                else:
                    for row, pe in zip(mat, reached):
                        self.memory(pe).write(offset, row)
                raise TransferDropped(
                    f"write_lanes dropped after {len(reached)}/"
                    f"{len(pe_ids)} lanes")
            mat = guarded_delivery(injector, mat, "write_lanes", drop=False)
        if self.vectorized:
            self._ensure_arena().write_rows(self._lane_ids(pe_ids), offset,
                                            mat)
            return
        for row, pe in zip(mat, pe_ids):
            self.memory(pe).write(offset, row)

    # ------------------------------------------------------------------
    # Bulk host <-> PIM helpers (per-PE distinct payloads)
    # ------------------------------------------------------------------
    def scatter_elements(self, pe_ids: Iterable[int], offset: int,
                         per_pe_values: Sequence[np.ndarray],
                         dtype: DataType) -> None:
        """Write a distinct element array to each PE (functional only)."""
        pes = list(pe_ids)
        if len(pes) != len(per_pe_values):
            raise TransferError(
                f"{len(pes)} PEs but {len(per_pe_values)} payloads")
        if self.vectorized and pes:
            arrays = []
            for values in per_pe_values:
                arr = np.ascontiguousarray(values, dtype=dtype.np_dtype)
                if arr.ndim != 1:
                    raise TransferError(
                        f"expected 1-D values, got shape {arr.shape}")
                arrays.append(arr)
            if len({arr.size for arr in arrays}) == 1:
                # Equal-length payloads: one stack + reshape is the
                # whole scatter.  Ragged payloads (rare) fall through
                # to the per-PE path below.
                self._ensure_arena().write_rows(
                    self._lane_ids(pes), offset,
                    np.stack(arrays).view(np.uint8))
                return
        for pe, values in zip(pes, per_pe_values):
            self.write_elements(pe, offset, values, dtype)

    def gather_elements(self, pe_ids: Iterable[int], offset: int,
                        count: int, dtype: DataType) -> list[np.ndarray]:
        """Read ``count`` elements from each PE (functional only)."""
        pes = list(pe_ids)
        if self.vectorized and pes:
            raw = self._ensure_arena().read_rows(
                self._lane_ids(pes), offset, count * dtype.itemsize)
            return list(raw.view(dtype.np_dtype))
        return [self.read_elements(pe, offset, count, dtype) for pe in pes]

    def fill_lanes(self, pe_ids: Sequence[int], offset: int,
                   data: np.ndarray) -> None:
        """Write one uint8 buffer to every listed PE (broadcast image)."""
        buf = np.asarray(data)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise TransferError(
                f"MRAM writes take 1-D uint8 buffers, got {buf.dtype} "
                f"ndim={buf.ndim}")
        if self.vectorized:
            self._ensure_arena().fill_rows(self._lane_ids(pe_ids), offset,
                                           buf)
            return
        for pe in pe_ids:
            self.memory(pe).write(offset, buf)

    def zero_fill_lanes(self, pe_ids: Sequence[int], offset: int,
                        nbytes: int) -> None:
        """Make ``nbytes`` at ``offset`` read all-zero on every PE.

        Semantically :meth:`fill_lanes` with a zero buffer, but
        verify-first (:meth:`MemoryArena.zero_fill_rows`): regions that
        already read zero are skipped instead of rewritten.  This is
        the elision layer's zero-row fill -- back-to-back replays of
        the same sparse collective hit the already-clean steady state,
        so repeated elisions pay a read pass, never a write.
        """
        if self.vectorized:
            self._ensure_arena().zero_fill_rows(
                self._lane_ids(pe_ids), offset, nbytes)
            return
        zeros = None
        for pe in pe_ids:
            if self.memory(pe).read(offset, nbytes).any():
                if zeros is None:
                    zeros = np.zeros(nbytes, dtype=np.uint8)
                self.memory(pe).write(offset, zeros)

    # ------------------------------------------------------------------
    # Compiled-program kernels (injector-free: replay only runs on
    # perfect hardware; the engine routes faulty systems to the
    # interpreted path)
    # ------------------------------------------------------------------
    def take_by_table(self, pe_ids: Sequence[int], ngroups: int,
                      src_offset: int, nslots_in: int, chunk_bytes: int,
                      lane_table: np.ndarray, slot_table: np.ndarray,
                      flat_table: np.ndarray | None = None) -> np.ndarray:
        """Gather chunks by a precompiled (lane, slot) index-table pair.

        ``pe_ids`` is the rank-ordered concatenation of ``ngroups``
        equal-size groups; the result is the ``(ngroups, lanes,
        nslots_out, chunk_bytes)`` gather ``out[g, l, s] =
        in[g, lane[l, s], slot[l, s]]`` over each group's
        ``(lanes, nslots_in)`` chunk block at ``src_offset``.  The
        vectorized backend does this in one fancy index over the arena;
        the scalar backend stacks per-PE reads first, so compiled
        programs replay on either backend.
        """
        ids = self._lane_ids(pe_ids)
        if self.vectorized:
            return self._ensure_arena().gather_chunks(
                ids, src_offset, nslots_in, chunk_bytes, ngroups,
                lane_table, slot_table, flat_table)
        total = nslots_in * chunk_bytes
        rows = np.stack([self.memory(int(pe)).read(src_offset, total)
                         for pe in ids])
        grouped = rows.reshape(ngroups, -1, nslots_in, chunk_bytes)
        return take_chunks_by_table(grouped, lane_table, slot_table,
                                    flat_table)

    def put_rows(self, pe_ids: Sequence[int], offset: int,
                 matrix: np.ndarray) -> None:
        """Write a pre-shaped ``(len(pe_ids), nbytes)`` uint8 lane matrix.

        The put half of the compiled-program kernels: no injector
        consultation and no per-call shape re-validation (lowering
        already fixed the shapes).
        """
        if self.vectorized:
            self._ensure_arena().write_rows(self._lane_ids(pe_ids), offset,
                                            matrix)
            return
        for row, pe in zip(matrix, pe_ids):
            self.memory(int(pe)).write(offset, row)

    def stream_token(self):
        """Cache token for streamed-replay gather tables, or None.

        The vectorized backend returns ``(arena identity, arena
        version)``: a table built against that state stays valid until
        the backing array reallocates.  The scalar backend returns
        None -- it has no flat address space, so streamed replay takes
        its staged-source path instead.
        """
        if not self.vectorized:
            return None
        arena = self._ensure_arena()
        return id(arena), arena.version

    def content_epoch(self) -> int | None:
        """Arena write-epoch for fingerprint caching, or None.

        The scalar backend returns None: its per-PE banks keep no
        shared write log, so content-derived caches (elision plans)
        are rebuilt on every replay there.
        """
        if not self.vectorized:
            return None
        return self._ensure_arena().write_epoch

    def content_changed(self, epoch: int, offset: int,
                        nbytes: int) -> bool:
        """Whether ``[offset, offset + nbytes)`` may have changed on any
        PE since ``epoch`` (conservative: True on any doubt)."""
        if not self.vectorized:
            return True
        return self._ensure_arena().writes_since(epoch, offset,
                                                 offset + nbytes)

    def stream_table(self, pe_ids: Sequence[int], ngroups: int,
                     src_offset: int, chunk_bytes: int,
                     lane_table: np.ndarray, slot_table: np.ndarray
                     ) -> tuple[np.ndarray, int]:
        """Arena-global flat gather table for row-band streamed replay.

        See :meth:`~repro.hw.arena.MemoryArena.stream_table`; only
        meaningful on the vectorized backend (callers check
        :meth:`stream_token` first).
        """
        return self._ensure_arena().stream_table(
            self._lane_ids(pe_ids), ngroups, src_offset, chunk_bytes,
            lane_table, slot_table)

    def take_band_flat(self, table: np.ndarray, width: int, r0: int,
                       r1: int, out: np.ndarray) -> None:
        """Gather output rows ``[r0, r1)`` straight from the arena.

        One ``np.take(..., out=)`` of wide elements through a
        pre-built :meth:`stream_table` -- the vectorized band kernel of
        streamed replay: no staging copy, no allocation, and total
        index work independent of the band count.
        """
        self._ensure_arena().take_band(table, width, r0, r1, out)

    def stage_rows(self, pe_ids: Sequence[int], src_offset: int,
                   nbytes: int, stage: np.ndarray) -> None:
        """Copy ``nbytes`` at ``src_offset`` from each PE into ``stage``.

        The scalar backend's streamed-replay staging: one per-PE copy
        loop into a preallocated scratch-pool block (the oracle path;
        the vectorized backend skips staging entirely).
        """
        ids = self._lane_ids(pe_ids)
        for i, pe in enumerate(ids):
            np.copyto(stage[i], self.memory(int(pe)).view(src_offset,
                                                          nbytes))

    def take_rows(self, pe_ids: Sequence[int], offset: int,
                  nbytes: int) -> np.ndarray:
        """Injector-free lane-matrix read (compiled host-pull kernel)."""
        if self.vectorized:
            return self._ensure_arena().read_rows(self._lane_ids(pe_ids),
                                                  offset, nbytes)
        return np.stack([self.memory(int(pe)).read(offset, nbytes)
                         for pe in pe_ids])

    def scan_view(self, pe_ids: Sequence[int], offset: int,
                  nbytes: int) -> np.ndarray:
        """Read-only ``(len(pe_ids), nbytes)`` window for fingerprint scans.

        The elision layer's source window: zero-copy on the vectorized
        backend whenever the PE list is a strided run (the layouts the
        hypercube mapping produces), a gathered copy otherwise.  The
        returned rows always have a contiguous byte axis, which is what
        :func:`~repro.hw.arena.scan_chunk_classes` requires.  Callers
        must treat the window as read-only and finish scanning before
        writing any destination that may alias it.
        """
        if self.vectorized:
            arena = self._ensure_arena()
            view = arena.lane_view(self._lane_ids(pe_ids), offset, nbytes)
            if view is not None:
                return view
            return arena.read_rows(self._lane_ids(pe_ids), offset, nbytes)
        return np.stack([self.memory(int(pe)).view(offset, nbytes)
                         for pe in pe_ids])

    def take_select_flat(self, table: np.ndarray, width: int,
                         rows: np.ndarray, out: np.ndarray) -> None:
        """Gather an arbitrary output-row subset through a stream table.

        The elision-aware gather: only representative rows (first
        occurrence of each distinct content class) go through the
        expensive strided arena gather; elided rows are filled or
        alias-copied from the representatives.  Vectorized backend
        only (callers check :meth:`stream_token` first).
        """
        self._ensure_arena().take_select(table, width, rows, out)

    # ------------------------------------------------------------------
    # PE-local kernels over ordered PE lists
    # ------------------------------------------------------------------
    def permute_chunks(self, pe_ids: Sequence[int], src_offset: int,
                       dst_offset: int, chunk_bytes: int,
                       permutations: np.ndarray,
                       tile_bytes: int = WRAM_TILE_BYTES) -> int:
        """Run the PE-local chunk-permutation kernel on an ordered PE list.

        Row ``i`` of ``permutations`` is the slot permutation PE
        ``pe_ids[i]`` applies (``new[s] = old[perm[s]]``).  The scalar
        backend stages every chunk through each PE's WRAM in bounded
        tiles (the honest per-PE kernel); the vectorized backend
        applies one batched gather over the whole list while charging
        exactly the WRAM tiles the per-PE kernels would move.  Returns
        the total tile count.
        """
        perms = np.asarray(permutations)
        if perms.ndim != 2 or perms.shape[0] != len(pe_ids):
            raise TransferError(
                f"permutation matrix of shape {perms.shape} does not "
                f"match {len(pe_ids)} PEs")
        if not self.vectorized:
            total = 0
            for pe, perm in zip(pe_ids, perms):
                total += wram_permute_chunks(
                    self.memory(pe), src_offset, dst_offset, chunk_bytes,
                    perm, tile_bytes)
            return total
        perms = check_permutation_rows(perms)
        if tile_bytes <= 0 or tile_bytes > WRAM_BYTES:
            raise TransferError(
                f"tile of {tile_bytes}B does not fit the {WRAM_BYTES}B WRAM")
        nslots = perms.shape[1]
        total_bytes = nslots * chunk_bytes
        overlapping = (src_offset < dst_offset + total_bytes
                       and dst_offset < src_offset + total_bytes)
        if overlapping and src_offset != dst_offset:
            raise TransferError(
                "partially overlapping permute ranges are not supported")
        ids = self._lane_ids(pe_ids)
        arena = self._ensure_arena()
        data = arena.read_rows(ids, src_offset, total_bytes).reshape(
            ids.size, nslots, chunk_bytes)
        arena.write_rows(ids, dst_offset,
                         permute_chunks_batched(data, perms).reshape(
                             ids.size, total_bytes))
        return batched_permute_tiles(perms, chunk_bytes, tile_bytes,
                                     in_place=overlapping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DimmSystem({self.geometry.describe()})"
