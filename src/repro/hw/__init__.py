"""Simulated PIM-enabled DIMM substrate (UPMEM-like).

This package models the hardware the paper runs on:

* :mod:`repro.hw.geometry` -- the channel/rank/chip/bank hierarchy and
  the *entangled groups* (sets of banks, one per chip of a rank, that
  share 64-byte bursts on the external bus).
* :mod:`repro.hw.domain` -- the PIM-domain byte striping and the domain
  transfer (byte transpose) the UPMEM driver performs.
* :mod:`repro.hw.memory` -- per-PE MRAM/WRAM byte arrays.
* :mod:`repro.hw.timing` -- the analytic cost model (machine parameter
  presets plus a per-category cost ledger).
* :mod:`repro.hw.system` -- the :class:`~repro.hw.system.DimmSystem`
  facade tying geometry, memories, and transfers together.
"""

from .geometry import DimmGeometry, EntangledGroup, PeCoord
from .memory import MRAM_DEFAULT_BYTES, WRAM_BYTES, PeMemory
from .system import DimmSystem
from .timing import CostLedger, MachineParams

__all__ = [
    "DimmGeometry",
    "EntangledGroup",
    "PeCoord",
    "PeMemory",
    "MRAM_DEFAULT_BYTES",
    "WRAM_BYTES",
    "DimmSystem",
    "CostLedger",
    "MachineParams",
]
