"""Analytic cost model: machine parameters and per-category ledgers.

Collectives and applications never measure wall-clock time; they build
*plans* whose steps are priced here.  This mirrors how the paper reasons
about its techniques: each optimization removes a specific cost category
(host staging traffic, domain transfer, global modulation), so modelled
time is the sum of per-category terms.

Categories (matching the paper's breakdown figures 4 and 17):

* ``bus``        -- bytes on the external DDR bus, parallel over channels.
* ``dt``         -- domain transfer (byte transpose), host-core parallel.
* ``host_mem``   -- staging traffic to/from host DRAM.
* ``host_mod``   -- modulation compute (global scalar / local / SIMD).
* ``host_reduce``-- reduction arithmetic on the host.
* ``pe``         -- PE-local work (reordering kernels), PE parallel.
* ``launch``     -- fixed per-invocation overheads (kernel launches,
  transfer setup).
* ``kernel``     -- application compute on the PEs.
* ``cpu``        -- application compute on a CPU-only system.
* ``mpi``        -- inter-host traffic in the multi-host extension
  (flat single-link pricing via :class:`MpiSimulator`).
* ``fabric``     -- inter-host traffic priced on a topology-aware
  :class:`~repro.multihost.Fabric` link graph (per-link congestion,
  heterogeneous bandwidths); the hierarchical collectives charge their
  global phase here.
* ``retry``      -- reliability backoff waits before re-running a
  faulted collective (see ``repro/reliability/retry.py``).
* ``elide``      -- content fingerprint scans (zero / duplicate chunk
  detection) run by elision-aware replay; the scan is what buys the
  right to *skip* bus/staging charges for elided chunks.

The default parameter values are calibrated so the modelled speedups
track the ratios reported in the paper (see EXPERIMENTS.md); absolute
numbers are roofline-style estimates for the paper's testbed (Xeon Gold
5215, DDR4-2400, UPMEM DPUs) and are not meant to match a real machine
to the percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..errors import PidCommError

GIB = float(1 << 30)
GB = 1e9

CATEGORIES = (
    "bus", "dt", "host_mem", "host_mod", "host_reduce",
    "pe", "launch", "kernel", "cpu", "mpi", "fabric", "retry", "elide",
)

#: Categories counted as "communication" in application breakdowns.
#: ``retry`` (reliability backoff waits) is communication overhead: the
#: time is spent waiting to redo a transfer.  ``elide`` (content
#: fingerprint scans) likewise rides the communication path: it is the
#: toll paid to skip part of the transfer.
COMM_CATEGORIES = (
    "bus", "dt", "host_mem", "host_mod", "host_reduce", "pe", "launch",
    "mpi", "fabric", "retry", "elide",
)

#: Categories that overlap across *independent* collective instances
#: submitted together.  Bus bursts and PE-local kernels of one instance
#: proceed while another instance occupies the host cores (the per-rank
#: parallelism the paper exploits inside one collective, applied across
#: instances), and a batched submission pays the host-side launch/sync
#: once instead of per call.  Host-core-bound categories (``dt``,
#: ``host_mem``, ``host_mod``, ``host_reduce``) contend for the same
#: cores and therefore serialize.
OVERLAPPABLE_CATEGORIES = ("bus", "pe", "launch")

#: Two-stage split used by streamed-replay pipelining: the PE-resident
#: stage of a collective (on-DIMM reorder kernels) and the
#: host-resident stage (bus transfer plus the host's transpose /
#: modulation / reduce passes).  When a payload streams tile-by-tile,
#: tile *i*'s host stage drains while tile *i+1*'s PE stage runs --
#: the bulk-transfer pipelining the paper's host runtime relies on.
STREAM_PE_STAGE = ("pe",)
STREAM_HOST_STAGE = ("bus", "dt", "host_mem", "host_mod", "host_reduce",
                     "elide")

#: Categories that shrink when content-aware elision skips a chunk's
#: transfer: the bus burst, the byte transpose, and the host staging /
#: rearrange passes all scale with bytes actually moved.  Fixed
#: overheads (``launch``) and arithmetic on delivered values
#: (``host_reduce``, ``pe``) do not.
ELIDABLE_CATEGORIES = ("bus", "dt", "host_mem", "host_mod")

MOD_CLASSES = ("scalar", "local", "simd", "shuffle")


@dataclass(frozen=True)
class MachineParams:
    """Bandwidth/throughput parameters of the modelled testbed.

    All *gbps* values are GB/s (1e9 bytes per second).
    """

    # External bus: DDR4-2400 channel peak is 19.2 GB/s; sustained
    # host<->UPMEM transfer rates observed in practice are lower.
    bus_gbps_per_channel: float = 14.0

    # Host CPU (Xeon Gold 5215: 10 cores, AVX-512).
    host_cores: int = 10
    dt_gbps_per_core: float = 12.0          # byte-transpose shuffles
    mod_scalar_gbps_per_core: float = 1.1   # global gather/scatter rearrange
    mod_local_gbps_per_core: float = 4.0    # cache-friendly local rearrange
    mod_simd_gbps_per_core: float = 11.0    # in-register word shifts
    mod_shuffle_gbps_per_core: float = 18.0  # raw byte-lane shuffles (CM)
    reduce_simd_gbps_per_core: float = 9.0   # vertical SIMD reduction
    reduce_scalar_gbps_per_core: float = 2.0  # strided/horizontal reduce
    host_mem_gbps: float = 40.0             # effective staging stream BW

    # PEs (UPMEM DPUs, ~350 MHz; MRAM<->WRAM streaming per DPU).
    # With 16+ tasklets the pipeline sustains near 1 int-op/cycle.
    pe_mram_gbps: float = 1.6
    pe_ops_per_sec: float = 2.5e8

    # Fixed overheads (UPMEM launches across 1024 DPUs are ~ms scale).
    collective_launch_s: float = 5.0e-4
    kernel_launch_s: float = 1.0e-3

    # CPU-only application model (roofline).
    cpu_flops: float = 2.2e11
    cpu_mem_gbps: float = 60.0

    # Multi-host interconnect (paper throttles MPI to 10 Gbps).
    mpi_gbps: float = 1.25
    mpi_latency_s: float = 2.0e-5

    # Content fingerprint scan (zero / duplicate chunk detection before
    # a transfer): a contiguous single-pass read + hash over staged
    # source bytes, streaming at close to host DRAM bandwidth.
    scan_gbps: float = 30.0

    # ------------------------------------------------------------------
    # Pricing helpers (all return seconds)
    # ------------------------------------------------------------------
    def bus_time(self, nbytes: float, channels: int, utilization: float = 1.0) -> float:
        """Time to move ``nbytes`` over ``channels`` parallel channels.

        ``utilization`` < 1 inflates the transfer for bursts whose byte
        lanes are only partially useful (non-EG-aligned PE sets).
        """
        _check_nonneg(nbytes, "nbytes")
        if channels < 1:
            raise PidCommError(f"channels must be >= 1, got {channels}")
        if not 0.0 < utilization <= 1.0:
            raise PidCommError(f"utilization must be in (0, 1], got {utilization}")
        return nbytes / (channels * self.bus_gbps_per_channel * GB * utilization)

    def dt_time(self, nbytes: float) -> float:
        """Domain transfer of ``nbytes``, parallel over host cores."""
        _check_nonneg(nbytes, "nbytes")
        return nbytes / (self.dt_gbps_per_core * GB * self.host_cores)

    def host_mem_time(self, nbytes: float) -> float:
        """``nbytes`` of staging traffic against host DRAM."""
        _check_nonneg(nbytes, "nbytes")
        return nbytes / (self.host_mem_gbps * GB)

    def mod_time(self, nbytes: float, klass: str) -> float:
        """Modulation compute over ``nbytes``; ``klass`` picks the rate."""
        _check_nonneg(nbytes, "nbytes")
        rates = {
            "scalar": self.mod_scalar_gbps_per_core,
            "local": self.mod_local_gbps_per_core,
            "simd": self.mod_simd_gbps_per_core,
            "shuffle": self.mod_shuffle_gbps_per_core,
        }
        if klass not in rates:
            raise PidCommError(f"unknown modulation class {klass!r}")
        return nbytes / (rates[klass] * GB * self.host_cores)

    def reduce_time(self, nbytes: float, simd: bool) -> float:
        """Host reduction over ``nbytes`` of input operands."""
        _check_nonneg(nbytes, "nbytes")
        rate = (self.reduce_simd_gbps_per_core if simd
                else self.reduce_scalar_gbps_per_core)
        return nbytes / (rate * GB * self.host_cores)

    def pe_stream_time(self, bytes_per_pe: float, passes: int = 1) -> float:
        """PE-local streaming (MRAM->WRAM->MRAM); PEs run in parallel."""
        _check_nonneg(bytes_per_pe, "bytes_per_pe")
        # Each pass reads and writes the data once.
        return 2.0 * passes * bytes_per_pe / (self.pe_mram_gbps * GB)

    def pe_compute_time(self, ops_per_pe: float) -> float:
        """PE-local compute; PEs run in parallel."""
        _check_nonneg(ops_per_pe, "ops_per_pe")
        return ops_per_pe / self.pe_ops_per_sec

    def cpu_time(self, flops: float, nbytes: float) -> float:
        """Roofline CPU-only time: max of compute and memory terms."""
        _check_nonneg(flops, "flops")
        _check_nonneg(nbytes, "nbytes")
        return max(flops / self.cpu_flops, nbytes / (self.cpu_mem_gbps * GB))

    def mpi_time(self, nbytes: float, messages: int = 1) -> float:
        """Inter-host transfer of ``nbytes`` in ``messages`` messages."""
        return self.link_time(nbytes, messages=messages)

    def link_time(self, nbytes: float, messages: int = 1, *,
                  gbps: float | None = None,
                  latency_s: float | None = None) -> float:
        """Transfer time on one inter-host link.

        Defaults to the testbed's throttled MPI link
        (:attr:`mpi_gbps` / :attr:`mpi_latency_s`); ``gbps`` /
        ``latency_s`` override per link, so a heterogeneous
        :class:`~repro.multihost.Fabric` and the flat
        :class:`~repro.multihost.MpiSimulator` price one link the same
        way.
        """
        _check_nonneg(nbytes, "nbytes")
        rate = self.mpi_gbps if gbps is None else gbps
        latency = self.mpi_latency_s if latency_s is None else latency_s
        if rate <= 0:
            raise PidCommError(f"link bandwidth must be positive, got {rate}")
        _check_nonneg(latency, "latency_s")
        return nbytes / (rate * GB) + messages * latency

    def scan_time(self, nbytes: float) -> float:
        """Content fingerprint scan over ``nbytes`` of source bytes."""
        _check_nonneg(nbytes, "nbytes")
        return nbytes / (self.scan_gbps * GB)

    def scaled(self, **overrides: float) -> "MachineParams":
        """Copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


def _check_nonneg(value: float, name: str) -> None:
    if value < 0:
        raise PidCommError(f"{name} must be non-negative, got {value}")


@dataclass
class CostLedger:
    """Accumulated modelled seconds per category."""

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, category: str, seconds: float) -> None:
        """Accrue ``seconds`` to ``category``."""
        if category not in CATEGORIES:
            raise PidCommError(
                f"unknown cost category {category!r}; known: {CATEGORIES}")
        if seconds < 0:
            raise PidCommError(f"negative cost {seconds} for {category}")
        self.seconds[category] = self.seconds.get(category, 0.0) + seconds

    def merge(self, other: "CostLedger") -> None:
        """Accrue all of ``other`` into this ledger."""
        for category, seconds in other.seconds.items():
            self.add(category, seconds)

    @staticmethod
    def merge_concurrent(ledgers: "Sequence[CostLedger]",
                         overlappable: tuple[str, ...] = OVERLAPPABLE_CATEGORIES
                         ) -> "CostLedger":
        """Combined cost of ledgers whose work runs *concurrently*.

        For categories in ``overlappable`` the slowest instance hides
        the others (max); every other category serializes (sum).  This
        is the overlap-aware pricing the batch submitter applies to a
        wave of data-independent collective instances: bus transfers
        and PE kernels of different instances occupy disjoint resources
        (channels / DPUs working on different buffers), while the
        host-core-bound phases contend and add up.

        Callers are responsible for only merging ledgers that are
        actually independent; dependent work must be summed with
        :meth:`merge` instead.
        """
        merged = CostLedger()
        for category in CATEGORIES:
            values = [lg.seconds.get(category, 0.0) for lg in ledgers]
            if not any(values):
                continue
            if category in overlappable:
                merged.add(category, max(values))
            else:
                merged.add(category, sum(values))
        return merged

    def pipelined(self, depth: int,
                  pe_stage: "Sequence[str]" = STREAM_PE_STAGE,
                  host_stage: "Sequence[str]" = STREAM_HOST_STAGE
                  ) -> "CostLedger":
        """Cost under a two-stage software pipeline over ``depth`` tiles.

        Streamed replay splits the payload into ``depth`` equal tiles
        and overlaps the PE stage of tile *i+1* with the host stage of
        tile *i*.  In a two-stage pipeline only the shorter stage's
        pipeline-fill tile stays exposed: with per-tile stage times
        ``P/depth`` and ``H/depth`` the makespan is ``max(P, H) +
        min(P, H) / depth``, so the shorter stage's categories scale by
        ``1/depth`` while the longer stage (and every fixed category:
        launch, kernel, cpu, mpi, retry) is charged in full.  ``depth
        <= 1`` returns an unchanged copy, so unstreamed pricing is the
        degenerate case.
        """
        out = self.copy()
        if depth <= 1:
            return out
        pe_total = sum(self.seconds.get(c, 0.0) for c in pe_stage)
        host_total = sum(self.seconds.get(c, 0.0) for c in host_stage)
        hidden = pe_stage if pe_total <= host_total else host_stage
        for category in hidden:
            if category in out.seconds:
                out.seconds[category] /= depth
        return out

    def scaled(self, factor: float) -> "CostLedger":
        """Return a copy with every category multiplied by ``factor``."""
        if factor < 0:
            raise PidCommError(f"negative scale factor {factor}")
        return CostLedger({k: v * factor for k, v in self.seconds.items()})

    def get(self, category: str) -> float:
        """Seconds accrued to ``category`` (0.0 if none)."""
        return self.seconds.get(category, 0.0)

    @property
    def total(self) -> float:
        """Total modelled seconds across categories."""
        return sum(self.seconds.values())

    @property
    def comm_total(self) -> float:
        """Seconds in communication categories (everything but compute)."""
        return sum(self.seconds.get(c, 0.0) for c in COMM_CATEGORIES)

    def breakdown(self) -> dict[str, float]:
        """Category -> seconds, only non-zero entries, insertion-ordered
        by the canonical category order."""
        return {c: self.seconds[c] for c in CATEGORIES if self.seconds.get(c)}

    def fractions(self) -> dict[str, float]:
        """Category -> share of total (empty if total is zero)."""
        total = self.total
        if total <= 0.0:
            return {}
        return {c: s / total for c, s in self.breakdown().items()}

    def __add__(self, other: "CostLedger") -> "CostLedger":
        result = CostLedger(dict(self.seconds))
        result.merge(other)
        return result

    def copy(self) -> "CostLedger":
        """Independent copy of this ledger."""
        return CostLedger(dict(self.seconds))


def throughput_gbps(nbytes: float, seconds: float) -> float:
    """Throughput in GB/s given bytes moved and modelled seconds."""
    if seconds <= 0:
        raise PidCommError(f"non-positive duration {seconds}")
    return nbytes / seconds / GB
