"""Per-PE memories: MRAM (the DRAM bank) and WRAM (the scratchpad).

Functional executions move real bytes through these arrays; analytic
executions never touch them (the :class:`~repro.hw.system.DimmSystem`
allocates memories lazily, so a 1024-PE analytic run costs nothing).

Two storage layouts exist behind the same interface: the scalar
backend's private-array :class:`PeMemory`, and the vectorized backend's
:class:`ArenaPeMemory`, whose MRAM is a row of the system-wide
lane-major :class:`~repro.hw.arena.MemoryArena`.
"""

from __future__ import annotations

import numpy as np

from ..errors import AllocationError, TransferError
from .arena import MemoryArena

#: Default simulated MRAM size.  Real UPMEM banks hold 64 MiB; tests and
#: examples use far less, and the size is configurable per system.
MRAM_DEFAULT_BYTES = 1 << 20

#: WRAM scratchpad size (matches UPMEM's 64 KiB).
WRAM_BYTES = 64 << 10


class PeMemory:
    """The memories attached to one PE."""

    def __init__(self, mram_bytes: int = MRAM_DEFAULT_BYTES) -> None:
        if mram_bytes <= 0:
            raise AllocationError(f"mram_bytes must be positive, got {mram_bytes}")
        self.mram = np.zeros(mram_bytes, dtype=np.uint8)
        self.wram = np.zeros(WRAM_BYTES, dtype=np.uint8)

    @property
    def mram_bytes(self) -> int:
        return self.mram.size

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Copy ``nbytes`` of MRAM starting at ``offset``."""
        self._check_range(offset, nbytes)
        return self.mram[offset:offset + nbytes].copy()

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write a uint8 buffer into MRAM at ``offset``."""
        buf = np.asarray(data)
        if buf.dtype != np.uint8 or buf.ndim != 1:
            raise TransferError(
                f"MRAM writes take 1-D uint8 buffers, got {buf.dtype} "
                f"ndim={buf.ndim}")
        self._check_range(offset, buf.size)
        self.mram[offset:offset + buf.size] = buf

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-copy MRAM window (mutating it mutates the bank)."""
        self._check_range(offset, nbytes)
        return self.mram[offset:offset + nbytes]

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.mram.size:
            raise TransferError(
                f"MRAM access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.mram.size})")


class ArenaPeMemory(PeMemory):
    """One PE's handle into a shared lane-major :class:`MemoryArena`.

    ``mram`` resolves to the PE's *current* arena row on every access,
    so arena growth (which reallocates the backing array) can never
    leave a stale alias behind.  WRAM stays a private per-PE scratchpad
    exactly as in :class:`PeMemory`; all inherited accessors work
    unchanged and read/write the shared arena.
    """

    def __init__(self, arena: MemoryArena, pe_id: int) -> None:
        self.arena = arena
        self.pe_id = pe_id
        self.wram = np.zeros(WRAM_BYTES, dtype=np.uint8)
        arena.touch((pe_id,))

    @property
    def mram(self) -> np.ndarray:
        """This PE's bank: a zero-copy row view of the arena."""
        return self.arena.row_view(self.pe_id)

    def write(self, offset: int, data: np.ndarray) -> None:
        super().write(offset, data)
        self.arena.note_write(offset, offset + int(np.asarray(data).size))

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        # A writable window escapes the arena's write tracking, so its
        # handout must count as a write for fingerprint-cache safety
        # (holders may mutate it at any later point).
        self.arena.note_write(offset, offset + nbytes)
        return super().view(offset, nbytes)
