"""PID-Comm on other PIM architectures (paper section IX, Figure 24)."""

from .architectures import (
    ARCHITECTURE_PROFILES,
    ArchitectureProfile,
    variant_allreduce,
    variant_alltoall,
)
from .dsa import dsa_offload_params

__all__ = [
    "ArchitectureProfile", "ARCHITECTURE_PROFILES",
    "variant_allreduce", "variant_alltoall", "dsa_offload_params",
]
