"""What-if: offloading the host's data modulation to a DSA-like engine.

Section IX-B suggests that a future Intel Data Streaming Accelerator
with shift/add/domain-transfer support could replace the host CPU in
PID-Comm's data path.  This module builds the corresponding machine
parameters: modulation, domain transfer, and reduction run at the
accelerator's streaming rate instead of occupying CPU cores.
"""

from __future__ import annotations

from ..hw.timing import MachineParams


def dsa_offload_params(base: MachineParams | None = None,
                       dsa_gbps: float = 160.0) -> MachineParams:
    """Machine parameters with the host data path offloaded to a DSA.

    ``dsa_gbps`` is the accelerator's streaming throughput; the engines
    handle shifts, transposes, and vertical adds at line rate, so all
    host-side per-byte categories collapse to that single rate (and the
    ``host_cores`` parallelism no longer applies -- we fold it in by
    dividing the per-core rates).  The default models the future
    multi-engine DSA the paper wishes for ("could fully replace the
    host with an even higher speedup"); today's single engine at
    ~30 GB/s would not beat ten AVX-512 cores.
    """
    base = base or MachineParams()
    per_core = dsa_gbps / base.host_cores
    return base.scaled(
        dt_gbps_per_core=per_core,
        mod_scalar_gbps_per_core=per_core,
        mod_local_gbps_per_core=per_core,
        mod_simd_gbps_per_core=per_core,
        mod_shuffle_gbps_per_core=per_core,
        reduce_simd_gbps_per_core=per_core,
        reduce_scalar_gbps_per_core=per_core,
    )
