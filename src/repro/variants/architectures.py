"""PID-Comm adapted to other PIM hardware (section IX-A, Figure 24).

The paper argues the core ideas carry to any PIM without a globally
shared medium, splitting architectures by whether a *partial*
communication medium exists:

* **UPMEM** (the baseline): no medium at all; everything host-mediated;
  byte-striped entangled groups make the domain transfer necessary.
* **HBM-PIM**: PEs attached per two banks of a single chip -- there is
  no cross-chip striping, so no domain transfer exists to remove
  (PID-Comm applies *without* cross-domain modulation, which has
  nothing left to fuse).
* **AxDIMM**: a rank-level buffer connects the PEs of one DIMM; the
  connected PEs run a first local pass over it, then the groups act as
  *super-PEs* whose global pass is ordinary PID-Comm.
* **CXL-NMP**: same hierarchical shape with a pool-level medium (wider
  local groups, slower link).

These are analytic models (the paper itself only sketches them); each
profile reuses the calibrated PID-Comm cost machinery with the
architectural deltas above.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.collectives import FULL, plan_allreduce, plan_alltoall
from ..core.hypercube import HypercubeManager
from ..dtypes import INT64, SUM
from ..errors import PidCommError
from ..hw.geometry import DimmGeometry
from ..hw.system import DimmSystem
from ..hw.timing import GB, CostLedger, MachineParams


@dataclass(frozen=True)
class ArchitectureProfile:
    """One PIM architecture variant."""

    name: str
    #: Whether host transfers need the byte-transpose domain transfer.
    has_domain_transfer: bool
    #: PEs connected by a partial local medium (1 = none).
    local_group: int
    #: Bandwidth of that medium in GB/s (unused when local_group == 1).
    local_gbps: float = 0.0
    notes: str = ""

    def local_phase_seconds(self, payload_per_pe: int, reduction: bool
                            ) -> float:
        """Cost of the intra-group pass over the local medium.

        A ring pass over ``local_group`` members moves
        ``(g-1)/g * payload`` per member for a reduction and the full
        payload for a redistribution.
        """
        if self.local_group <= 1:
            return 0.0
        g = self.local_group
        factor = (g - 1) / g if reduction else 1.0
        return g * payload_per_pe * factor / (self.local_gbps * GB)


ARCHITECTURE_PROFILES = {
    "upmem": ArchitectureProfile(
        "UPMEM", has_domain_transfer=True, local_group=1,
        notes="commodity PIM-enabled DIMMs (the paper's testbed)"),
    "hbm-pim": ArchitectureProfile(
        "HBM-PIM", has_domain_transfer=False, local_group=1,
        notes="per-2-bank PEs, single chip: no byte striping, no DT"),
    "axdimm": ArchitectureProfile(
        "AxDIMM", has_domain_transfer=True, local_group=8,
        local_gbps=25.0,
        notes="rank-level buffer links 8 PEs; host handles super-PEs"),
    "cxl-nmp": ArchitectureProfile(
        "CXL-NMP", has_domain_transfer=True, local_group=64,
        local_gbps=12.0,
        notes="pool-level medium links 64 PEs over CXL"),
}


def _no_dt_params(params: MachineParams) -> MachineParams:
    """Parameters for architectures whose transfers need no transpose."""
    return params.scaled(dt_gbps_per_core=1e12)  # effectively free


def _variant_system(profile: ArchitectureProfile,
                    params: MachineParams | None,
                    num_pes: int) -> tuple[DimmSystem, HypercubeManager, int]:
    """System + hypercube over the *host-visible* units of a profile.

    For partial-medium architectures the host only routes between
    super-PEs (one per local group), so the hypercube is built over
    ``num_pes / local_group`` units.
    """
    params = params or MachineParams()
    if not profile.has_domain_transfer:
        params = _no_dt_params(params)
    units = num_pes // max(1, profile.local_group)
    if units < 8:
        raise PidCommError(
            f"{profile.name}: need at least 8 host-visible units, "
            f"got {units}")
    geometry = DimmGeometry(1, max(1, units // 64), 8,
                            max(1, min(8, units // 8)))
    if geometry.num_pes < units:
        geometry = DimmGeometry(1, units // 64 or 1, 8, 8)
    system = DimmSystem(geometry, params)
    manager = HypercubeManager(system, shape=(units,))
    return system, manager, units


def variant_allreduce(profile_name: str, num_pes: int = 1024,
                      payload_per_pe: int = 1 << 20,
                      params: MachineParams | None = None) -> dict:
    """Modelled AllReduce time on an architecture variant.

    Partial-medium profiles reduce locally first, so the host-level
    pass handles ``1/local_group`` of the data -- the same volume
    argument as the paper's multi-host AllReduce.
    """
    profile = _get(profile_name)
    system, manager, units = _variant_system(profile, params, num_pes)
    local = profile.local_phase_seconds(payload_per_pe, reduction=True)
    plan = plan_allreduce(manager, "1", payload_per_pe, 0, 0, INT64, SUM,
                          FULL)
    global_ledger = plan.estimate(system)
    return _result(profile, units, local, global_ledger)


def variant_alltoall(profile_name: str, num_pes: int = 1024,
                     payload_per_pe: int = 1 << 20,
                     params: MachineParams | None = None) -> dict:
    """Modelled AlltoAll time on an architecture variant.

    AlltoAll has no reduction, so the local medium only helps with the
    intra-group share; the full inter-group volume still crosses the
    host (per-super-PE payload grows by ``local_group``).
    """
    profile = _get(profile_name)
    system, manager, units = _variant_system(profile, params, num_pes)
    local = profile.local_phase_seconds(payload_per_pe, reduction=False)
    per_unit = payload_per_pe * max(1, profile.local_group)
    plan = plan_alltoall(manager, "1", _align(per_unit, units), 0, 0,
                         INT64, FULL)
    global_ledger = plan.estimate(system)
    return _result(profile, units, local, global_ledger)


def _align(nbytes: int, units: int) -> int:
    chunk = max(8, (nbytes // units) // 8 * 8)
    return chunk * units


def _get(name: str) -> ArchitectureProfile:
    try:
        return ARCHITECTURE_PROFILES[name]
    except KeyError:
        raise PidCommError(
            f"unknown architecture {name!r}; known: "
            f"{sorted(ARCHITECTURE_PROFILES)}") from None


def _result(profile: ArchitectureProfile, units: int, local_seconds: float,
            global_ledger: CostLedger) -> dict:
    return {
        "architecture": profile.name,
        "host_visible_units": units,
        "local_s": local_seconds,
        "global_s": global_ledger.total,
        "dt_s": global_ledger.get("dt"),
        "total_s": local_seconds + global_ledger.total,
    }
