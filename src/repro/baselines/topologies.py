"""Ring- and tree-topology AllReduce on PIM-enabled DIMMs (Figure 23a).

These are the classic multi-hop algorithms used by GPU/CPU collective
libraries, transplanted onto the DIMMs with all of PID-Comm's data-path
optimizations applied (as the paper does for the comparison).  They
lose anyway:

* the **ring** needs ``2(N-1)`` host-mediated rounds, multiplying bus
  traffic and per-round launch overheads;
* the **tree** halves its active PE set every round, so later rounds
  leave most byte lanes of each burst idle -- it "wastes the available
  host-PIM bandwidth" exactly as section VIII-H describes.

Both are implemented functionally (verified against the golden
AllReduce) and analytically through the same plan machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.collectives.plan import CommPlan, ExecContext, Step
from ..core.collectives.steps import PeReorderStep, _bus_terms
from ..hw.kernels import ElementwiseKernel
from ..core.groups import CommGroup, slice_groups
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, ReduceOp, check_op_dtype
from ..errors import CollectiveError
from ..hw.system import DimmSystem
from ..hw.timing import CostLedger


@dataclass
class RingStep(Step):
    """One ring round: every PE ships one chunk to its +1 neighbour.

    With ``op`` set the receiver reduces the chunk into its buffer
    (reduce-scatter phase); without it the chunk is stored verbatim
    (allgather phase).  The chunk index rotates with the round counter
    ``t`` following the textbook ring schedule.
    """

    groups: Sequence[CommGroup]
    offset: int
    chunk_bytes: int
    round_t: int
    dtype: DataType
    op: ReduceOp | None
    #: MRAM offset where the host stages the incoming chunk before the
    #: receiving PE's reduction kernel merges it.
    staging_offset: int = 0

    def _send_index(self, rank: int, nslots: int) -> int:
        base = (rank - self.round_t) % nslots
        if self.op is None:
            # Allgather phase forwards the chunk completed in the RS
            # phase, which for rank i is chunk (i + 1) mod N.
            return (base + 1) % nslots
        return base

    def apply(self, ctx: ExecContext) -> None:
        for group in self.groups:
            n = group.size
            outgoing = []
            for rank, pe in enumerate(group.pe_ids):
                idx = self._send_index(rank, n)
                outgoing.append(ctx.system.memory(pe).read(
                    self.offset + idx * self.chunk_bytes, self.chunk_bytes))
            for rank, pe in enumerate(group.pe_ids):
                src_rank = (rank - 1) % n
                idx = self._send_index(src_rank, n)
                incoming = outgoing[src_rank]
                mem = ctx.system.memory(pe)
                slot = self.offset + idx * self.chunk_bytes
                if self.op is None:
                    mem.write(slot, incoming)
                else:
                    # Host stages the chunk; the DPU reduction kernel
                    # merges it tile-by-tile through WRAM.
                    mem.write(self.staging_offset, incoming)
                    kernel = ElementwiseKernel(self.op, self.dtype)
                    kernel.run(mem, self.staging_offset, slot, slot,
                               self.chunk_bytes)

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        moved = sum(g.size for g in self.groups) * self.chunk_bytes
        pes = sorted({pe for g in self.groups for pe in g.pe_ids})
        channels, util = _bus_terms(system, pes)
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(2 * moved, channels, util))
        ledger.add("host_mod", params.mod_time(moved, "shuffle"))
        if self.op is not None:
            # The receiving PE reduces the staged chunk into its buffer.
            ledger.add("pe", params.pe_stream_time(self.chunk_bytes))
            ledger.add("pe", params.pe_compute_time(
                self.chunk_bytes / self.dtype.itemsize))
            ledger.add("launch", params.kernel_launch_s)
        ledger.add("launch", params.collective_launch_s)
        return ledger

    def describe(self) -> str:
        phase = "reduce" if self.op else "gather"
        return f"Ring[{phase}] t={self.round_t} chunk={self.chunk_bytes}B"


@dataclass
class TreePairStep(Step):
    """One tree round: pair (i, i + 2^r) exchanges a full buffer.

    Direction ``up`` reduces the partner's buffer into the lower PE;
    ``down`` pushes the finished buffer back out.  Only a shrinking
    subset of PEs participates, so the bus-lane utilization penalty is
    computed from the actual member set.
    """

    groups: Sequence[CommGroup]
    offset: int
    nbytes: int
    round_r: int
    dtype: DataType
    op: ReduceOp
    direction: str
    #: MRAM offset where the partner's buffer is staged for the merge.
    staging_offset: int = 0

    def _pairs(self, n: int) -> list[tuple[int, int]]:
        stride = 1 << self.round_r
        return [(i, i + stride) for i in range(0, n, stride * 2)]

    def apply(self, ctx: ExecContext) -> None:
        for group in self.groups:
            for low, high in self._pairs(group.size):
                pe_low = group.pe_ids[low]
                pe_high = group.pe_ids[high]
                if self.direction == "up":
                    partner = ctx.system.memory(pe_high).read(self.offset,
                                                              self.nbytes)
                    mem = ctx.system.memory(pe_low)
                    mem.write(self.staging_offset, partner)
                    kernel = ElementwiseKernel(self.op, self.dtype)
                    kernel.run(mem, self.staging_offset, self.offset,
                               self.offset, self.nbytes)
                else:
                    data = ctx.system.memory(pe_low).read(self.offset,
                                                          self.nbytes)
                    ctx.system.memory(pe_high).write(self.offset, data)

    def _active_pes(self) -> list[int]:
        active = []
        for group in self.groups:
            for low, high in self._pairs(group.size):
                active.append(group.pe_ids[low])
                active.append(group.pe_ids[high])
        return active

    def cost(self, system: DimmSystem) -> CostLedger:
        params = system.params
        pairs = sum(len(self._pairs(g.size)) for g in self.groups)
        moved = pairs * self.nbytes
        channels, util = _bus_terms(system, self._active_pes())
        ledger = CostLedger()
        ledger.add("bus", params.bus_time(2 * moved, channels, util))
        ledger.add("host_mod", params.mod_time(moved, "shuffle"))
        if self.direction == "up":
            ledger.add("pe", params.pe_stream_time(self.nbytes))
            ledger.add("pe", params.pe_compute_time(
                self.nbytes / self.dtype.itemsize))
            ledger.add("launch", params.kernel_launch_s)
        ledger.add("launch", params.collective_launch_s)
        return ledger

    def describe(self) -> str:
        return f"Tree[{self.direction}] r={self.round_r} {self.nbytes}B"


def ring_allreduce_plan(manager: HypercubeManager, dims: str | Sequence[int],
                        total_data_size: int, src_offset: int,
                        dst_offset: int, dtype: DataType,
                        op: ReduceOp) -> CommPlan:
    """Ring AllReduce: N-1 reduce rounds + N-1 gather rounds."""
    check_op_dtype(op, dtype)
    groups = slice_groups(manager, dims)
    n = groups[0].size
    if total_data_size % n or (total_data_size // n) % dtype.itemsize:
        raise CollectiveError(
            f"ring allreduce needs per-PE size divisible into {n} aligned "
            "chunks")
    chunk = total_data_size // n
    staging = manager.system.alloc(chunk)
    steps: list[Step] = [
        # Stage the working copy in dst (identity reorder = plain copy).
        PeReorderStep(groups, "identity", src_offset, dst_offset, chunk, n),
    ]
    for t in range(n - 1):
        steps.append(RingStep(groups, dst_offset, chunk, t, dtype, op,
                              staging_offset=staging))
    for t in range(n - 1):
        steps.append(RingStep(groups, dst_offset, chunk, t, dtype, None,
                              staging_offset=staging))
    return CommPlan("allreduce", steps, {
        "primitive": "allreduce", "topology": "ring",
        "instances": len(groups), "group_size": n,
        "per_pe_bytes": total_data_size,
        "out_bytes_per_pe": total_data_size})


def tree_allreduce_plan(manager: HypercubeManager, dims: str | Sequence[int],
                        total_data_size: int, src_offset: int,
                        dst_offset: int, dtype: DataType,
                        op: ReduceOp) -> CommPlan:
    """Tree AllReduce: log2(N) reduce rounds up, log2(N) broadcast down."""
    check_op_dtype(op, dtype)
    groups = slice_groups(manager, dims)
    n = groups[0].size
    if n & (n - 1):
        raise CollectiveError(f"tree allreduce needs a power-of-two group "
                              f"size, got {n}")
    if total_data_size % dtype.itemsize:
        raise CollectiveError("tree allreduce payload must hold whole elements")
    rounds = n.bit_length() - 1
    staging = manager.system.alloc(total_data_size)
    steps: list[Step] = [
        PeReorderStep(groups, "identity", src_offset, dst_offset,
                      total_data_size, 1),
    ]
    for r in range(rounds):
        steps.append(TreePairStep(groups, dst_offset, total_data_size, r,
                                  dtype, op, "up", staging_offset=staging))
    for r in reversed(range(rounds)):
        steps.append(TreePairStep(groups, dst_offset, total_data_size, r,
                                  dtype, op, "down",
                                  staging_offset=staging))
    return CommPlan("allreduce", steps, {
        "primitive": "allreduce", "topology": "tree",
        "instances": len(groups), "group_size": n,
        "per_pe_bytes": total_data_size,
        "out_bytes_per_pe": total_data_size})
