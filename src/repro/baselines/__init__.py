"""Comparison systems: SimplePIM-style library, ring/tree topologies,
and the CPU-only execution model."""

from .simplepim import (
    SIMPLEPIM_SUPPORTED,
    UPMEM_SDK_SUPPORTED,
    baseline_plan,
    capability_table,
)
from .topologies import ring_allreduce_plan, tree_allreduce_plan
from .cpu_only import CpuOnlyModel

__all__ = [
    "baseline_plan", "capability_table",
    "SIMPLEPIM_SUPPORTED", "UPMEM_SDK_SUPPORTED",
    "ring_allreduce_plan", "tree_allreduce_plan",
    "CpuOnlyModel",
]
