"""CPU-only execution model (the Figure 21 comparison point).

Applications on the CPU-only system run the same phases as on the PIM
system but with no inter-PE communication: each compute phase is priced
by a roofline (compute-bound or memory-bound, whichever dominates) on
the host parameters.  This mirrors how the paper's CPU baselines from
PrIM/SparseP behave: memory-intensive kernels are bandwidth-bound on
the CPU, which is exactly the gap PIM exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.timing import CostLedger, MachineParams


@dataclass
class CpuOnlyModel:
    """Accumulates roofline-priced phases of a CPU-only run."""

    params: MachineParams
    ledger: CostLedger = field(default_factory=CostLedger)

    def run_phase(self, name: str, flops: float, nbytes: float) -> float:
        """Price one compute phase; returns its modelled seconds."""
        seconds = self.params.cpu_time(flops, nbytes)
        self.ledger.add("cpu", seconds)
        return seconds

    @property
    def total(self) -> float:
        return self.ledger.total
