"""The evaluation baseline: SimplePIM-style collectives + conventional flows.

The paper's baseline (section VIII-A) uses SimplePIM's implementations
for the primitives it supports (Broadcast, Scatter, Gather, AllReduce,
AllGather) and faithfully-implemented conventional versions of the rest
(AlltoAll, ReduceScatter, Reduce), all extended with the same
multi-dimensional hypercube for fairness.  We reproduce exactly that:

* AllGather  = Gather + Broadcast of the concatenation.  This leans on
  the driver's fast broadcast, which is why the 1-D baseline AllGather
  is already competitive (Figure 18) -- but with many instances (2-D
  cubes) each group needs its own broadcast payload and the advantage
  evaporates.
* AllReduce  = Gather + host-side reduction + Broadcast.
* Everything else takes the conventional pull/modulate/push flow.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.collectives import BASELINE, CommPlan
from ..core.collectives.planner import (
    GATHER_SCRATCH,
    REDUCE_SCRATCH,
    plan_alltoall,
    plan_broadcast,
    plan_gather,
    plan_reduce,
    plan_reduce_scatter,
    plan_scatter,
)
from ..core.collectives.steps import (
    BroadcastStep,
    GatherToHostStep,
    HostReduceStep,
    LaunchStep,
)
from ..core.groups import slice_groups
from ..core.hypercube import HypercubeManager
from ..dtypes import DataType, ReduceOp, check_op_dtype
from ..errors import CollectiveError

#: Primitives each framework supports (Table I).
UPMEM_SDK_SUPPORTED = frozenset({"scatter", "gather", "broadcast"})
SIMPLEPIM_SUPPORTED = frozenset(
    {"broadcast", "scatter", "gather", "allreduce", "allgather"})
PIDCOMM_SUPPORTED = frozenset({
    "alltoall", "reduce_scatter", "allgather", "allreduce",
    "scatter", "gather", "reduce", "broadcast"})

_SP_AG_GATHERED = "simplepim.allgather.gathered"
_SP_AR_GATHERED = "simplepim.allreduce.gathered"


def sp_allgather(manager: HypercubeManager, dims: str | Sequence[int],
                 total_data_size: int, src_offset: int,
                 dst_offset: int, dtype: DataType) -> CommPlan:
    """SimplePIM AllGather: gather to host, broadcast the concatenation."""
    groups = slice_groups(manager, dims)
    n = groups[0].size
    if total_data_size % dtype.itemsize:
        raise CollectiveError("allgather chunk must hold whole elements")
    steps = [
        LaunchStep(count=2),
        GatherToHostStep(groups=groups, src_offset=src_offset,
                         chunk_bytes=total_data_size,
                         scratch_key=_SP_AG_GATHERED, mode="conventional"),
        BroadcastStep(groups=groups, dst_offset=dst_offset,
                      nbytes=n * total_data_size,
                      scratch_key=_SP_AG_GATHERED),
    ]
    return CommPlan("allgather", steps, {
        "primitive": "allgather", "instances": len(groups),
        "group_size": n, "config": "SimplePIM",
        "per_pe_bytes": total_data_size,
        "out_bytes_per_pe": n * total_data_size})


def sp_allreduce(manager: HypercubeManager, dims: str | Sequence[int],
                 total_data_size: int, src_offset: int, dst_offset: int,
                 dtype: DataType, op: ReduceOp) -> CommPlan:
    """SimplePIM AllReduce: gather, reduce on the host, broadcast."""
    check_op_dtype(op, dtype)
    groups = slice_groups(manager, dims)
    n = groups[0].size
    steps = [
        LaunchStep(count=2),
        GatherToHostStep(groups=groups, src_offset=src_offset,
                         chunk_bytes=total_data_size,
                         scratch_key=_SP_AR_GATHERED, mode="rearrange"),
        HostReduceStep(scratch_key=_SP_AR_GATHERED,
                       out_key="simplepim.allreduce.reduced",
                       dtype=dtype, op=op, vectors=n,
                       nbytes=total_data_size).with_instances(len(groups)),
        BroadcastStep(groups=groups, dst_offset=dst_offset,
                      nbytes=total_data_size,
                      scratch_key="simplepim.allreduce.reduced"),
    ]
    return CommPlan("allreduce", steps, {
        "primitive": "allreduce", "instances": len(groups),
        "group_size": n, "config": "SimplePIM",
        "per_pe_bytes": total_data_size,
        "out_bytes_per_pe": total_data_size})


def baseline_plan(primitive: str, manager: HypercubeManager,
                  dims: str | Sequence[int], total_data_size: int,
                  src_offset: int = 0, dst_offset: int = 0,
                  dtype: DataType | None = None,
                  op: ReduceOp | None = None,
                  payloads: Mapping[int, np.ndarray] | None = None
                  ) -> CommPlan:
    """Build the evaluation-baseline plan for any primitive.

    Dispatches to the SimplePIM implementation where one exists and to
    the conventional flow otherwise (with the ``BASELINE`` OptConfig).
    """
    from ..dtypes import INT64, SUM
    dtype = dtype or INT64
    op = op or SUM
    if primitive == "allgather":
        return sp_allgather(manager, dims, total_data_size, src_offset,
                            dst_offset, dtype)
    if primitive == "allreduce":
        return sp_allreduce(manager, dims, total_data_size, src_offset,
                            dst_offset, dtype, op)
    if primitive == "alltoall":
        return plan_alltoall(manager, dims, total_data_size, src_offset,
                             dst_offset, dtype, BASELINE)
    if primitive == "reduce_scatter":
        return plan_reduce_scatter(manager, dims, total_data_size,
                                   src_offset, dst_offset, dtype, op,
                                   BASELINE)
    if primitive == "gather":
        return plan_gather(manager, dims, total_data_size, src_offset,
                           dtype, BASELINE)
    if primitive == "scatter":
        return plan_scatter(manager, dims, total_data_size, dst_offset,
                            dtype, payloads, BASELINE)
    if primitive == "reduce":
        return plan_reduce(manager, dims, total_data_size, src_offset,
                           dtype, op, BASELINE)
    if primitive == "broadcast":
        return plan_broadcast(manager, dims, total_data_size, dst_offset,
                              dtype, payloads, BASELINE)
    raise CollectiveError(f"unknown primitive {primitive!r}")


#: Scratch keys a caller may need to read baseline host outputs.
BASELINE_SCRATCH = {
    "gather": GATHER_SCRATCH,
    "reduce": REDUCE_SCRATCH,
    "allgather": _SP_AG_GATHERED,
}


def capability_table() -> list[dict[str, object]]:
    """Table I: which framework supports what (introspected)."""
    order = ("alltoall", "reduce_scatter", "allgather", "allreduce",
             "scatter", "gather", "reduce", "broadcast")
    rows = []
    for name, supported, multi, perf in (
        ("UPMEM SDK", UPMEM_SDK_SUPPORTED, False, "Not Optimized"),
        ("SimplePIM", SIMPLEPIM_SUPPORTED, False, "Not Optimized"),
        ("PID-Comm", PIDCOMM_SUPPORTED, True, "Optimized"),
    ):
        rows.append({
            "framework": name,
            "multi_instance": multi,
            "performance": perf,
            **{p: (p in supported) for p in order},
        })
    return rows
