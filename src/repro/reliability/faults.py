"""Deterministic fault injection for the simulated UPMEM substrate.

Real PID-Comm deployments see the host mediate *every* inter-PE
transfer, so a single flaky rank, corrupted bus burst, or hung DPU
launch poisons an entire collective (Gomez-Luna et al. report
transfer-level variability on production UPMEM systems).  The
:class:`FaultInjector` reproduces those failure modes on the simulator,
seeded so every run is exactly replayable:

* **bit flips** -- one bit of a transfer is corrupted in flight; the
  checksum layer (``reliability/checksum.py``) detects it and raises
  :class:`~repro.errors.ChecksumError`;
* **drops** -- a ``push_xfer``/lane write is abandoned, possibly after
  a partial delivery (:class:`~repro.errors.TransferDropped`);
* **timeouts** -- a kernel launch hangs past its watchdog deadline
  (:class:`~repro.errors.LaunchTimeout`);
* **permanent rank failures** -- a whole rank goes dark; every later
  access raises :class:`~repro.errors.RankFailure` until the caller
  remaps around it.

The injector hangs off :class:`~repro.hw.system.DimmSystem` (for the
engine's lane transfers) and :class:`~repro.hw.driver.DpuDriver` (for
the SDK-shaped host API); decisions are drawn from one
``np.random.default_rng`` stream, so a fixed seed plus a fixed call
sequence reproduces the exact same fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import LaunchTimeout, RankFailure, ReliabilityError

#: Fault classes the injector can produce, in reporting order.
FAULT_KINDS = ("bit_flip", "drop", "timeout", "rank_failure")


@dataclass(frozen=True)
class FaultSpec:
    """Per-event fault probabilities (each decision is one draw).

    Rates are per *operation* (one transfer, one launch), not per byte:
    a ``bit_flip_rate`` of 0.01 corrupts roughly one in a hundred
    transfers regardless of size, matching how bus-burst CRC errors
    present on real hardware.
    """

    bit_flip_rate: float = 0.0
    drop_rate: float = 0.0
    timeout_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("bit_flip_rate", "drop_rate", "timeout_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ReliabilityError(
                    f"{name} must be in [0, 1], got {rate}")

    @property
    def transient_total(self) -> float:
        """Combined per-operation transient fault pressure."""
        return self.bit_flip_rate + self.drop_rate + self.timeout_rate


class FaultInjector:
    """Seeded fault source shared by the driver and the system.

    Args:
        spec: Transient fault rates; keyword rates may be given instead
            (``FaultInjector(seed=1, bit_flip_rate=0.01)``).
        seed: Seed for the decision stream (deterministic replay).
    """

    def __init__(self, spec: FaultSpec | None = None, seed: int = 0,
                 **rates: float) -> None:
        if spec is not None and rates:
            raise ReliabilityError("pass either a FaultSpec or rates, not both")
        self.spec = spec if spec is not None else FaultSpec(**rates)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        #: Faults actually injected, by kind.
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        #: Permanently failed global rank ids.
        self.failed_ranks: set[int] = set()

    # ------------------------------------------------------------------
    # Permanent failures
    # ------------------------------------------------------------------
    def fail_rank(self, rank_id: int) -> None:
        """Mark a global rank (channel * ranks + rank) permanently dead."""
        if rank_id < 0:
            raise ReliabilityError(f"rank id must be >= 0, got {rank_id}")
        if rank_id not in self.failed_ranks:
            self.failed_ranks.add(rank_id)
            self.injected["rank_failure"] += 1

    def failed_pes(self, geometry) -> frozenset[int]:
        """All PE ids living on failed ranks."""
        per_rank = geometry.pes_per_rank
        dead: set[int] = set()
        for rank in self.failed_ranks:
            base = rank * per_rank
            dead.update(range(base, base + per_rank))
        return frozenset(dead)

    def guard_pes(self, geometry, pe_ids: Iterable[int]) -> None:
        """Raise :class:`RankFailure` if any PE sits on a failed rank."""
        if not self.failed_ranks:
            return
        per_rank = geometry.pes_per_rank
        dead = tuple(pe for pe in pe_ids
                     if pe // per_rank in self.failed_ranks)
        if dead:
            ranks = sorted({pe // per_rank for pe in dead})
            raise RankFailure(
                f"operation touches {len(dead)} PEs on failed rank(s) "
                f"{ranks}", pe_ids=dead)

    # ------------------------------------------------------------------
    # Transient decisions (one rng draw each, replayable by seed)
    # ------------------------------------------------------------------
    def corrupt_transfer(self, buf: np.ndarray) -> np.ndarray:
        """Maybe flip one random bit of a transfer buffer (copy).

        Returns ``buf`` untouched when no fault fires; otherwise a
        corrupted copy, leaving the caller's data intact (the checksum
        layer decides whether corruption is *detected*).
        """
        if self.spec.bit_flip_rate <= 0.0 or buf.size == 0:
            return buf
        if self.rng.random() >= self.spec.bit_flip_rate:
            return buf
        self.injected["bit_flip"] += 1
        arr = np.ascontiguousarray(buf)
        corrupted = arr.reshape(-1).view(np.uint8).copy()
        byte = int(self.rng.integers(0, corrupted.size))
        bit = int(self.rng.integers(0, 8))
        corrupted[byte] ^= np.uint8(1 << bit)
        return corrupted.view(arr.dtype).reshape(arr.shape)

    def take_drop(self) -> bool:
        """Decide whether this transfer is dropped."""
        if self.spec.drop_rate <= 0.0:
            return False
        if self.rng.random() < self.spec.drop_rate:
            self.injected["drop"] += 1
            return True
        return False

    def take_timeout(self, what: str = "launch") -> None:
        """Maybe abort a kernel launch with :class:`LaunchTimeout`."""
        if self.spec.timeout_rate <= 0.0:
            return
        if self.rng.random() < self.spec.timeout_rate:
            self.injected["timeout"] += 1
            raise LaunchTimeout(f"{what} hung past its watchdog deadline")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset_counters(self) -> None:
        """Zero the injection counters (failed ranks stay failed)."""
        self.injected = {k: 0 for k in FAULT_KINDS}

    def describe(self) -> str:
        """One-line summary: seed, rates, injected-fault counters."""
        parts = [f"{k}={v}" for k, v in self.injected.items() if v]
        spec = self.spec
        return (f"FaultInjector(seed={self.seed}, "
                f"rates=({spec.bit_flip_rate}, {spec.drop_rate}, "
                f"{spec.timeout_rate}), "
                f"injected: {', '.join(parts) if parts else 'none'})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def partial_prefix(pe_ids: Sequence[int]) -> Sequence[int]:
    """The PEs a dropped transfer managed to reach before aborting.

    Deterministic (first half, at least one when possible) so dropped
    partial deliveries replay exactly.
    """
    return pe_ids[: max(1, len(pe_ids) // 2)] if pe_ids else pe_ids
