"""Transfer integrity: per-buffer checksums over host <-> PIM traffic.

Every guarded transfer models what a CRC-protected bus burst does: the
sender computes a checksum over the outgoing bytes, the payload crosses
the (possibly faulty) link, and the receiver verifies the delivered
bytes against the checksum *before committing them*.  A mismatch raises
:class:`~repro.errors.ChecksumError` -- a transient, retryable fault --
and the corrupted payload never lands, so injected bit flips can delay
a collective but can never silently poison its result.

``crc32`` (stdlib zlib) catches every single-bit flip, which is exactly
the corruption model :class:`~repro.reliability.faults.FaultInjector`
produces; the modelled cost of checksumming rides inside the existing
``dt``/``host_mod`` terms (checksum units sit on the same data path).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ChecksumError, TransferDropped

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultInjector


#: Multiplier and seed of the batched per-chunk content digest.  The
#: seed literally reuses the CRC-32 machinery above so chunk digests and
#: transfer checksums share one fingerprint family; the multiplier is an
#: odd 64-bit constant (splitmix64's golden-ratio increment) giving good
#: word diffusion under wrapping multiply.
_DIGEST_MULT = np.uint64(0x9E3779B97F4A7C15)
_DIGEST_SEED = np.uint64(zlib.crc32(b"pid-comm/chunk-digest"))


def checksum(buf: np.ndarray) -> int:
    """CRC-32 of a buffer's raw bytes (layout-independent)."""
    arr = np.ascontiguousarray(buf)
    return zlib.crc32(arr.reshape(-1).view(np.uint8).tobytes())


def chunk_digests(words: np.ndarray) -> np.ndarray:
    """Batched per-chunk content digests over ``(..., words)`` uint64.

    The vectorized companion of :func:`checksum` for content-aware
    transfer elision: one 64-bit polynomial digest per chunk, computed
    in ``chunk_bytes / 8`` vectorized passes across *all* chunks at
    once (a single streaming read of the data overall), seeded from the
    module's CRC-32 so the two fingerprint families stay tied together.
    Digests only *nominate* duplicate candidates -- the elision layer
    byte-verifies every candidate against its class representative
    before aliasing, so a collision can cost a missed elision but never
    a wrong result.
    """
    if words.dtype != np.uint64:
        raise TypeError(f"chunk digests need uint64 words, got {words.dtype}")
    with np.errstate(over="ignore"):
        acc = np.full(words.shape[:-1], _DIGEST_SEED, dtype=np.uint64)
        for k in range(words.shape[-1]):
            acc *= _DIGEST_MULT
            acc ^= words[..., k]
    return acc


def verify(sent_crc: int, delivered: np.ndarray, what: str = "transfer") -> None:
    """Receiver-side check; raises :class:`ChecksumError` on mismatch."""
    got = checksum(delivered)
    if got != sent_crc:
        raise ChecksumError(
            f"{what}: checksum mismatch (sent {sent_crc:#010x}, "
            f"received {got:#010x}); in-flight corruption detected")


def guarded_delivery(injector: "FaultInjector | None", buf: np.ndarray,
                     what: str = "transfer", drop: bool = True) -> np.ndarray:
    """Move ``buf`` across the (possibly faulty) link, verified.

    With no injector this is free and returns ``buf`` unchanged.  With
    one, the transfer may be dropped (:class:`TransferDropped`) or
    corrupted in flight; corruption is always *detected* by the CRC and
    surfaces as :class:`ChecksumError` instead of landing, so callers
    never commit corrupted bytes.  Callers that model their own partial
    delivery pass ``drop=False`` and draw the drop decision themselves.
    """
    if injector is None:
        return buf
    if drop and injector.take_drop():
        raise TransferDropped(f"{what}: transfer dropped in flight")
    sent = checksum(buf)
    delivered = injector.corrupt_transfer(buf)
    verify(sent, delivered, what)
    return delivered
