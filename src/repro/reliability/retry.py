"""Retry policy: capped exponential backoff with per-request fault budgets.

The engine retries transient faults (checksum mismatches, dropped
transfers, launch timeouts) at whole-collective granularity: the
communicator restores the request's MRAM footprint from a pre-execution
snapshot, waits out a modelled backoff, and re-runs the compiled plan.
Backoff is charged to the ledger's ``retry`` category, so reliability
overhead shows up in the same cost breakdowns as every other phase.

:class:`RetryPolicy` is deliberately tiny and frozen: a policy is part
of a session's configuration, and tests pin exact backoff sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReliabilityError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry parameters for one engine session.

    Args:
        max_attempts: Total tries per request (first attempt included).
        backoff_base_s: Modelled wait before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
        backoff_cap_s: Ceiling on any single backoff wait.
        fault_budget: Max transient faults absorbed per request before
            the engine gives up with
            :class:`~repro.errors.FaultBudgetExceeded`.
    """

    max_attempts: int = 8
    backoff_base_s: float = 1.0e-4
    backoff_factor: float = 2.0
    backoff_cap_s: float = 2.0e-3
    fault_budget: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReliabilityError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ReliabilityError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ReliabilityError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.fault_budget < 0:
            raise ReliabilityError(
                f"fault_budget must be >= 0, got {self.fault_budget}")

    def backoff(self, failures: int) -> float:
        """Modelled wait after the ``failures``-th consecutive failure.

        ``failures`` is 1-based; the sequence is ``base * factor**(k-1)``
        capped at ``backoff_cap_s``.
        """
        if failures < 1:
            raise ReliabilityError(
                f"failures must be >= 1, got {failures}")
        return min(self.backoff_cap_s,
                   self.backoff_base_s * self.backoff_factor ** (failures - 1))

    def total_backoff(self, failures: int) -> float:
        """Sum of the first ``failures`` backoff waits."""
        return sum(self.backoff(k) for k in range(1, failures + 1))


#: The session default: generous enough that a 1% per-transfer fault
#: rate converges, bounded enough that a dead link fails fast.
DEFAULT_RETRY = RetryPolicy()
