"""Session-level reliability policy: what the engine does about faults.

A :class:`ReliabilityPolicy` bundles the retry parameters with the
degradation switches; the :class:`~repro.engine.communicator.Communicator`
consults it on every fault:

* transient faults (checksum, drop, timeout) -> snapshot-restore and
  retry under :class:`~repro.reliability.retry.RetryPolicy`;
* permanent rank failures -> if ``degrade_on_rank_failure``, remap the
  virtual hypercube onto the surviving ranks (shrunk dimension) and
  replan; otherwise propagate :class:`~repro.errors.RankFailure`.

Degraded plans are cached under the remapped manager's topology
signature, so they can never alias plans compiled for the healthy cube.
"""

from __future__ import annotations

from dataclasses import dataclass

from .retry import DEFAULT_RETRY, RetryPolicy


@dataclass(frozen=True)
class ReliabilityPolicy:
    """How one engine session reacts to injected (or real) faults."""

    retry: RetryPolicy = DEFAULT_RETRY
    #: On a permanent rank failure, shrink the hypercube onto the
    #: survivors and replan instead of failing the request.
    degrade_on_rank_failure: bool = True


#: Retries on, degradation on -- the production posture.
RELIABLE = ReliabilityPolicy()
#: Retries on, degradation off -- fail loudly on hard faults.
FAIL_FAST = ReliabilityPolicy(degrade_on_rank_failure=False)
