"""Fault injection, transfer integrity, retry, and degradation.

The reliability subsystem turns the engine's perfect-hardware
assumption into an explicit policy: a seeded
:class:`FaultInjector` produces transient bit flips, dropped
transfers, launch timeouts, and permanent rank failures; per-buffer
checksums (:mod:`repro.reliability.checksum`) make corruption
*detectable*; :class:`RetryPolicy` bounds recovery with capped
exponential backoff and a per-request fault budget; and
:class:`ReliabilityPolicy` decides whether a permanent rank failure
degrades the hypercube onto the survivors or fails the request.
"""

from .checksum import checksum, guarded_delivery, verify
from .faults import FAULT_KINDS, FaultInjector, FaultSpec, partial_prefix
from .policy import FAIL_FAST, RELIABLE, ReliabilityPolicy
from .retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "FAULT_KINDS", "FaultInjector", "FaultSpec", "partial_prefix",
    "checksum", "guarded_delivery", "verify",
    "RetryPolicy", "DEFAULT_RETRY",
    "ReliabilityPolicy", "RELIABLE", "FAIL_FAST",
]
