"""Exception hierarchy for the PID-Comm reproduction.

Every error raised by the library derives from :class:`PidCommError` so
callers can catch library failures with a single except clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class PidCommError(Exception):
    """Base class for all library errors."""


class GeometryError(PidCommError):
    """Invalid DIMM geometry or PE/entangled-group addressing."""


class AllocationError(PidCommError):
    """Buffer or rank-set allocation failed (overlap, out of MRAM, ...)."""


class HypercubeError(PidCommError):
    """Invalid hypercube shape, dimension bitmap, or mapping request."""


class CollectiveError(PidCommError):
    """Invalid collective invocation (sizes, dtype, unsupported op...)."""


class TransferError(PidCommError):
    """Host <-> PIM transfer request is malformed."""


class AppError(PidCommError):
    """Benchmark application configuration or execution error."""


class ReliabilityError(PidCommError):
    """Base class for fault-injection and recovery errors."""

    #: Machine-readable fault class (overridden by subclasses).
    kind = "reliability"


class TransientFault(ReliabilityError):
    """A retryable fault: retrying the operation may succeed."""

    kind = "transient"


class ChecksumError(TransientFault):
    """Transfer integrity check failed (in-flight corruption detected)."""

    kind = "bit_flip"


class TransferDropped(TransientFault):
    """A transfer was dropped (possibly after a partial delivery)."""

    kind = "drop"


class LaunchTimeout(TransientFault):
    """A kernel launch hung past its deadline and was aborted."""

    kind = "timeout"


class RankFailure(ReliabilityError):
    """A rank failed permanently; retrying cannot succeed.

    Recovery requires remapping the virtual hypercube onto the
    surviving ranks (see ``HypercubeManager.without_pes``).
    """

    kind = "rank_failure"

    def __init__(self, message: str, pe_ids: tuple = ()) -> None:
        super().__init__(message)
        #: The dead PEs the failed operation touched.
        self.pe_ids = tuple(pe_ids)


class FaultBudgetExceeded(ReliabilityError):
    """A request burned through its retry/fault budget without succeeding."""

    kind = "budget"


class ServingError(PidCommError):
    """Base class for the multi-tenant serving front-end's errors."""


class AdmissionRejected(ServingError):
    """The admission queue is full and the request could not displace
    anything (its tenant's priority is not above the lowest queued)."""


class RequestShed(ServingError):
    """A queued (not yet dispatched) request was shed to make room for
    higher-priority work under overload."""


class QuotaExceeded(ServingError):
    """The request's per-PE MRAM footprint exceeds its tenant's quota."""


class SessionClosed(ServingError):
    """The tenant session was closed; no further submissions accepted."""
