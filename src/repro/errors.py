"""Exception hierarchy for the PID-Comm reproduction.

Every error raised by the library derives from :class:`PidCommError` so
callers can catch library failures with a single except clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class PidCommError(Exception):
    """Base class for all library errors."""


class GeometryError(PidCommError):
    """Invalid DIMM geometry or PE/entangled-group addressing."""


class AllocationError(PidCommError):
    """Buffer or rank-set allocation failed (overlap, out of MRAM, ...)."""


class HypercubeError(PidCommError):
    """Invalid hypercube shape, dimension bitmap, or mapping request."""


class CollectiveError(PidCommError):
    """Invalid collective invocation (sizes, dtype, unsupported op...)."""


class TransferError(PidCommError):
    """Host <-> PIM transfer request is malformed."""


class AppError(PidCommError):
    """Benchmark application configuration or execution error."""
