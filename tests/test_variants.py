"""Tests for the architecture-variant and DSA-offload extensions."""

import pytest

from repro.core.collectives import FULL, plan_allreduce
from repro.core.hypercube import HypercubeManager
from repro.dtypes import INT64, SUM
from repro.errors import PidCommError
from repro.hw.system import DimmSystem
from repro.hw.timing import MachineParams
from repro.variants import (
    ARCHITECTURE_PROFILES,
    dsa_offload_params,
    variant_allreduce,
    variant_alltoall,
)


class TestProfiles:
    def test_known_profiles(self):
        assert set(ARCHITECTURE_PROFILES) == {
            "upmem", "hbm-pim", "axdimm", "cxl-nmp"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(PidCommError, match="unknown architecture"):
            variant_allreduce("hmc")

    def test_local_phase_free_without_medium(self):
        profile = ARCHITECTURE_PROFILES["upmem"]
        assert profile.local_phase_seconds(1 << 20, reduction=True) == 0.0

    def test_local_phase_reduction_cheaper_than_redistribution(self):
        profile = ARCHITECTURE_PROFILES["axdimm"]
        red = profile.local_phase_seconds(1 << 20, reduction=True)
        full = profile.local_phase_seconds(1 << 20, reduction=False)
        assert 0 < red < full


class TestVariantCollectives:
    def test_hbm_pim_pays_no_domain_transfer(self):
        upmem = variant_allreduce("upmem")
        hbm = variant_allreduce("hbm-pim")
        assert upmem["dt_s"] > 0
        assert hbm["dt_s"] < upmem["dt_s"] * 1e-3
        assert hbm["total_s"] < upmem["total_s"]

    def test_partial_medium_shrinks_host_level_allreduce(self):
        """AxDIMM's local reduction leaves the host 1/8th of the units."""
        upmem = variant_allreduce("upmem")
        ax = variant_allreduce("axdimm")
        assert ax["host_visible_units"] == upmem["host_visible_units"] // 8
        assert ax["global_s"] < upmem["global_s"]

    def test_alltoall_gains_less_than_allreduce(self):
        """No reduction -> the full volume still crosses the host."""
        ar_gain = (variant_allreduce("upmem")["total_s"]
                   / variant_allreduce("axdimm")["total_s"])
        aa_gain = (variant_alltoall("upmem")["total_s"]
                   / variant_alltoall("axdimm")["total_s"])
        assert ar_gain > aa_gain

    def test_too_few_units_rejected(self):
        with pytest.raises(PidCommError, match="units"):
            variant_allreduce("cxl-nmp", num_pes=128)


class TestDsaOffload:
    def test_params_rescaled(self):
        base = MachineParams()
        dsa = dsa_offload_params(base, dsa_gbps=30.0)
        assert dsa.mod_scalar_gbps_per_core * dsa.host_cores == \
            pytest.approx(30.0)
        # Non-data-path parameters are untouched.
        assert dsa.bus_gbps_per_channel == base.bus_gbps_per_channel
        assert dsa.pe_mram_gbps == base.pe_mram_gbps

    def test_dsa_speeds_up_baseline_heavy_paths(self):
        """The DSA mainly rescues the modulation-heavy flows."""
        size = 8 << 20
        base_sys = DimmSystem.paper_testbed()
        dsa_sys = DimmSystem.paper_testbed(params=dsa_offload_params())
        man_b = HypercubeManager(base_sys, shape=(32, 32))
        man_d = HypercubeManager(dsa_sys, shape=(32, 32))
        t_base = plan_allreduce(man_b, "10", size, 0, 0, INT64, SUM,
                                FULL).estimate(base_sys).total
        t_dsa = plan_allreduce(man_d, "10", size, 0, 0, INT64, SUM,
                               FULL).estimate(dsa_sys).total
        assert t_dsa < t_base
