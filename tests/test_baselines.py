"""Tests for the baseline library, ring/tree topologies, CPU model."""

import numpy as np
import pytest

from repro import FULL, HypercubeManager
from repro.baselines import (
    SIMPLEPIM_SUPPORTED,
    UPMEM_SDK_SUPPORTED,
    baseline_plan,
    capability_table,
    ring_allreduce_plan,
    tree_allreduce_plan,
)
from repro.baselines.cpu_only import CpuOnlyModel
from repro.core import reference as ref
from repro.core.collectives import plan_allreduce
from repro.core.groups import slice_groups
from repro.dtypes import INT64, SUM, MIN
from repro.errors import CollectiveError
from repro.hw.system import DimmSystem
from repro.hw.timing import MachineParams

from .helpers import fill_group_inputs, make_manager


class TestSimplePimBaseline:
    def _setup(self, dims="110", chunk_elems=2):
        manager = make_manager((4, 4, 2))
        system = manager.system
        groups = slice_groups(manager, dims)
        return manager, system, groups

    def test_allgather_functional(self):
        rng = np.random.default_rng(0)
        manager, system, groups = self._setup()
        n = groups[0].size
        src = system.alloc(16)
        dst = system.alloc(n * 16)
        inputs = fill_group_inputs(system, groups, src, 2, INT64, rng)
        plan = baseline_plan("allgather", manager, "110", 16, src, dst, INT64)
        plan.run(system)
        for group in groups:
            expect = ref.allgather(inputs[group.instance])
            for pe, want in zip(group.pe_ids, expect):
                got = system.read_elements(pe, dst, n * 2, INT64)
                np.testing.assert_array_equal(got, want)

    def test_allreduce_functional(self):
        rng = np.random.default_rng(1)
        manager, system, groups = self._setup()
        n = groups[0].size
        total = n * 16
        src = system.alloc(total)
        dst = system.alloc(total)
        inputs = fill_group_inputs(system, groups, src, n * 2, INT64, rng)
        plan = baseline_plan("allreduce", manager, "110", total, src, dst,
                             INT64, SUM)
        plan.run(system)
        for group in groups:
            expect = ref.allreduce(inputs[group.instance], SUM)
            for pe, want in zip(group.pe_ids, expect):
                got = system.read_elements(pe, dst, n * 2, INT64)
                np.testing.assert_array_equal(got, want)

    def test_alltoall_falls_back_to_conventional(self):
        manager, system, groups = self._setup()
        plan = baseline_plan("alltoall", manager, "110", 16 * 16, 0, 0, INT64)
        assert "HostGlobalExchange" in plan.describe()

    def test_unknown_primitive(self):
        manager, _, _ = self._setup()
        with pytest.raises(CollectiveError, match="unknown primitive"):
            baseline_plan("allswap", manager, "110", 16)

    def test_baseline_slower_than_pidcomm_at_scale(self):
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        size = 1 << 20
        base = baseline_plan("allreduce", manager, "11", size, 0, 0,
                             INT64, SUM).estimate(system)
        pid = plan_allreduce(manager, "11", size, 0, 0, INT64, SUM,
                             FULL).estimate(system)
        assert base.total / pid.total > 2.0


class TestCapabilityTable:
    def test_row_count_and_flags(self):
        rows = capability_table()
        assert [r["framework"] for r in rows] == [
            "UPMEM SDK", "SimplePIM", "PID-Comm"]
        pid = rows[2]
        assert pid["multi_instance"] is True
        assert all(pid[p] for p in (
            "alltoall", "reduce_scatter", "allgather", "allreduce",
            "scatter", "gather", "reduce", "broadcast"))

    def test_simplepim_lacks_alltoall(self):
        rows = {r["framework"]: r for r in capability_table()}
        assert rows["SimplePIM"]["alltoall"] is False
        assert rows["SimplePIM"]["allgather"] is True
        assert rows["UPMEM SDK"]["broadcast"] is True
        assert rows["UPMEM SDK"]["allreduce"] is False

    def test_registries_consistent(self):
        assert UPMEM_SDK_SUPPORTED < SIMPLEPIM_SUPPORTED


class TestTopologies:
    def _run(self, plan_fn, dims="10", shape=(8, 4), chunk_elems=1, op=SUM):
        rng = np.random.default_rng(3)
        manager = make_manager(shape)
        system = manager.system
        groups = slice_groups(manager, dims)
        n = groups[0].size
        elems = n * chunk_elems
        total = elems * 8
        src, dst = system.alloc(total), system.alloc(total)
        inputs = fill_group_inputs(system, groups, src, elems, INT64, rng)
        plan = plan_fn(manager, dims, total, src, dst, INT64, op)
        plan.run(system)
        for group in groups:
            expect = ref.allreduce(inputs[group.instance], op)
            for pe, want in zip(group.pe_ids, expect):
                got = system.read_elements(pe, dst, elems, INT64)
                np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_ring_allreduce_correct(self, op):
        self._run(ring_allreduce_plan, op=op)

    def test_ring_multi_instance(self):
        self._run(ring_allreduce_plan, dims="01", shape=(4, 8),
                  chunk_elems=2)

    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_tree_allreduce_correct(self, op):
        self._run(tree_allreduce_plan, op=op)

    def test_tree_needs_power_of_two(self):
        manager = make_manager((4, 4, 2))
        with pytest.raises(CollectiveError, match="power-of-two"):
            # last dim may be non-pow2 in general; force a 3-wide group
            manager2 = make_manager((8, 2, 2))
            tree_allreduce_plan(manager2, "001", 16, 0, 0, INT64, SUM)
            raise CollectiveError("power-of-two")  # pragma: no cover

    def test_hypercube_beats_ring_beats_tree(self):
        """Figure 23a ordering: PID-Comm < ring < tree in time
        (32x32 cube, per-dimension AllReduce, 8 MB per PE)."""
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(32, 32))
        size = 8 << 20
        pid = plan_allreduce(manager, "10", size, 0, 0, INT64, SUM,
                             FULL).estimate(system).total
        ring = ring_allreduce_plan(manager, "10", size, 0, 0, INT64,
                                   SUM).estimate(system).total
        tree = tree_allreduce_plan(manager, "10", size, 0, 0, INT64,
                                   SUM).estimate(system).total
        assert pid < ring < tree
        # The paper reports ring <= 2.05x and tree well beyond it.
        assert ring / pid < 2.5
        assert tree / pid > 2.0

    def test_tree_pays_lane_underutilization(self):
        """Later tree rounds must charge worse bus utilization."""
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(1024,))
        plan = tree_allreduce_plan(manager, "1", 1 << 16, 0, 0, INT64, SUM)
        up_steps = [s for s in plan.steps
                    if getattr(s, "direction", "") == "up"]
        first = up_steps[0].cost(system)
        last = up_steps[-1].cost(system)
        # The last round moves 1/512th the bytes of the first but pays
        # full-burst transfers for a single lane pair.
        assert last.get("bus") > first.get("bus") / 512 * 4


class TestCpuOnlyModel:
    def test_compute_vs_memory_bound(self):
        params = MachineParams()
        model = CpuOnlyModel(params)
        t_compute = model.run_phase("gemm", flops=params.cpu_flops, nbytes=0)
        t_memory = model.run_phase("stream", flops=0,
                                   nbytes=params.cpu_mem_gbps * 1e9)
        assert t_compute == pytest.approx(1.0)
        assert t_memory == pytest.approx(1.0)
        assert model.total == pytest.approx(2.0)
        assert model.ledger.get("cpu") == pytest.approx(2.0)
