"""Streamed tiled replay: parity, scratch pool, pipeline pricing.

Streaming (``Communicator(stream_tile_bytes=...)``) replays compiled
programs band-by-band through one session-owned
:class:`~repro.hw.arena.ScratchPool` instead of materializing whole
payloads.  The acceptance bar mirrors compiled replay's: bit-identical
memory bytes, host outputs, SIMD counts and WRAM tiles against the
interpreted oracle, on both backends, for every primitive, including
tile budgets that divide nothing evenly -- plus the properties that
make streaming worth having: zero steady-state heap allocations, peak
scratch bounded by the tile budget, stream-table caches that survive
(and notice) arena reallocation, and ledgers priced under the
two-stage tile pipeline.
"""

import tracemalloc

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import Communicator, FULL, SessionConfig
from repro.core.collectives.program import band_ranges
from repro.core.groups import slice_groups
from repro.dtypes import FLOAT32, INT32, INT64, SUM
from repro.errors import CollectiveError
from repro.hw.arena import ScratchPool
from repro.hw.timing import (
    STREAM_HOST_STAGE,
    STREAM_PE_STAGE,
    CostLedger,
)

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPE = (4, 8)
BITMAP = "11"
CHUNK = 3


def _run(primitive, dtype, backend, execution, tile=None, seed=0, calls=2):
    """Run ``calls`` identical collectives; returns (outputs, last result).

    The second call is the steady state under test (plan, program,
    stream tables and pool buffers all warm).  In-place primitives
    consume their source, so inputs are refilled per call from a
    per-call seed -- identical across execution modes.
    """
    manager = make_manager(SHAPE)
    system = manager.system
    comm = Communicator(manager, SessionConfig(config=FULL, backend=backend,
                        execution=execution, stream_tile_bytes=tile))
    groups = groups_of(manager, BITMAP)
    n = groups[0].size
    item = dtype.itemsize

    if primitive in ("scatter", "broadcast"):
        rng = np.random.default_rng(seed)
        root_elems = n * CHUNK if primitive == "scatter" else CHUNK
        payloads = {g.instance: rng.integers(-99, 100, root_elems)
                    .astype(dtype.np_dtype) for g in groups}
        total = CHUNK * item
        dst = system.alloc(total)
        for _ in range(calls):
            result = getattr(comm, primitive)(
                BITMAP, total, dst_offset=dst, data_type=dtype,
                payloads=payloads)
        outputs = {g.instance: [system.read_elements(pe, dst, CHUNK, dtype)
                                for pe in g.pe_ids] for g in groups}
        return outputs, result

    elems = CHUNK if primitive == "allgather" else n * CHUNK
    total = elems * item
    src = system.alloc(total)
    out_elems = {"alltoall": elems, "reduce_scatter": CHUNK,
                 "allgather": n * CHUNK, "allreduce": elems,
                 "gather": None, "reduce": None}[primitive]
    kwargs = ({"reduction_type": SUM}
              if primitive in ("reduce_scatter", "allreduce", "reduce")
              else {})
    if out_elems is None:
        for call in range(calls):
            fill_group_inputs(system, groups, src, elems, dtype,
                              np.random.default_rng(seed + call))
            result = getattr(comm, primitive)(
                BITMAP, total, src_offset=src, data_type=dtype, **kwargs)
        outputs = {inst: [np.asarray(out).view(dtype.np_dtype).reshape(-1)]
                   for inst, out in result.host_outputs.items()}
        return outputs, result
    dst = system.alloc(out_elems * item)
    for call in range(calls):
        fill_group_inputs(system, groups, src, elems, dtype,
                          np.random.default_rng(seed + call))
        result = getattr(comm, primitive)(
            BITMAP, total, src_offset=src, dst_offset=dst, data_type=dtype,
            **kwargs)
    outputs = {g.instance: [system.read_elements(pe, dst, out_elems, dtype)
                            for pe in g.pe_ids] for g in groups}
    return outputs, result


def _assert_streamed_parity(primitive, dtype, backend, tile, seed=0):
    i_out, i_res = _run(primitive, dtype, backend, "interpreted", seed=seed)
    s_out, s_res = _run(primitive, dtype, backend, "compiled", tile=tile,
                        seed=seed)
    assert i_out.keys() == s_out.keys()
    for inst in i_out:
        for a, b in zip(i_out[inst], s_out[inst]):
            np.testing.assert_array_equal(a, b)
    assert i_res.simd == s_res.simd
    assert i_res.wram_tiles == s_res.wram_tiles
    assert s_res.execution == "streamed"
    assert s_res.tiles >= 1
    # Pipelining can only discount the shorter stage, never add cost.
    assert s_res.ledger.total <= i_res.ledger.total
    return s_res


class TestStreamedParity:
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_every_primitive_matches_oracle(self, primitive, backend):
        _assert_streamed_parity(primitive, INT32, backend, tile=64)

    @pytest.mark.parametrize("tile", [17, 1000], ids=lambda t: f"tile{t}")
    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_uneven_tiles_match(self, backend, tile):
        # 17 bytes divides neither a chunk nor a row; 1000 leaves a
        # short last band.  Both must stay bit-exact.
        _assert_streamed_parity("alltoall", INT64, backend, tile=tile)
        _assert_streamed_parity("allreduce", INT32, backend, tile=tile)

    def test_float_fold_order_preserved(self):
        # The streamed reduce accumulator must fold slots in the same
        # left-to-right order as the interpreted oracle.
        _assert_streamed_parity("allreduce", FLOAT32, "vectorized",
                                tile=40, seed=7)
        _assert_streamed_parity("reduce", FLOAT32, "scalar", tile=40,
                                seed=7)

    @pytest.mark.parametrize("primitive", ["alltoall", "allreduce",
                                           "reduce"])
    def test_tiles_and_ledger_invariant_across_backends(self, primitive):
        # Band geometry depends only on op shapes, so both backends
        # must report the same tile count and the same pipelined cost.
        _, scalar = _run(primitive, INT32, "scalar", "compiled", tile=64)
        _, vector = _run(primitive, INT32, "vectorized", "compiled",
                         tile=64)
        assert scalar.tiles == vector.tiles
        assert scalar.ledger.breakdown() == vector.ledger.breakdown()

    def test_small_tile_streams_many_bands(self):
        _, result = _run("alltoall", INT32, "vectorized", "compiled",
                         tile=CHUNK * 4)
        assert result.tiles > 1
        assert result.peak_scratch_bytes > 0

    def test_stream_cache_survives_arena_swap(self):
        # set_backend rebuilds the arena (fresh object, fresh rows); a
        # stale stream table would gather garbage, so the cached table
        # must be rebuilt and the replay stay bit-exact.
        manager = make_manager(SHAPE)
        system = manager.system
        comm = Communicator(manager, SessionConfig(backend="vectorized",
                            execution="compiled", stream_tile_bytes=64))
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = system.alloc(total)
        dst = system.alloc(total)

        def call(seed):
            inputs = fill_group_inputs(system, groups, src, n * CHUNK,
                                       INT32, np.random.default_rng(seed))
            comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                          data_type=INT32)
            return inputs

        call(0)
        system.set_backend("scalar")
        system.set_backend("vectorized")   # fresh arena object
        inputs = call(1)
        from repro.core.reference import alltoall as ref_alltoall
        for group in groups:
            want = ref_alltoall(inputs[group.instance])
            for pe, expect in zip(group.pe_ids, want):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, n * CHUNK, INT32),
                    expect)


class TestEnginePolicy:
    def test_non_positive_tile_rejected(self):
        manager = make_manager(SHAPE)
        with pytest.raises(CollectiveError):
            Communicator(manager, SessionConfig(stream_tile_bytes=0))
        with pytest.raises(CollectiveError):
            Communicator(manager, SessionConfig(stream_tile_bytes=-4))

    def test_interpreted_mode_rejects_streaming(self):
        manager = make_manager(SHAPE)
        with pytest.raises(CollectiveError):
            Communicator(manager, SessionConfig(execution="interpreted",
                         stream_tile_bytes=64))

    def test_analytic_streamed_pricing_touches_nothing(self):
        # functional=False still prices the tile pipeline: the tile
        # plan is a pure function of the program's shapes.
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(functional=False,
                            backend="vectorized", execution="compiled",
                            stream_tile_bytes=64))
        result = comm.alltoall(BITMAP, 32 * CHUNK * 4, src_offset=0,
                               dst_offset=4096, data_type=INT32)
        plain = Communicator(make_manager(SHAPE), SessionConfig(functional=False,
                             backend="vectorized", execution="compiled"))
        untiled = plain.alltoall(BITMAP, 32 * CHUNK * 4, src_offset=0,
                                 dst_offset=4096, data_type=INT32)
        assert result.execution == "streamed"
        assert result.tiles >= 1
        assert result.ledger.total <= untiled.ledger.total
        assert manager.system.touched_pes == 0

    def test_stats_accumulate_tiles_and_peak(self):
        _, result = _run("alltoall", INT32, "vectorized", "compiled",
                         tile=32, calls=3)
        # calls landed on one Communicator inside _run, so rebuild the
        # same steady state here to inspect its stats object.
        manager = make_manager(SHAPE)
        system = manager.system
        comm = Communicator(manager, SessionConfig(backend="vectorized",
                            execution="compiled", stream_tile_bytes=32))
        groups = groups_of(manager, BITMAP)
        n = groups[0].size
        total = n * CHUNK * 4
        src = system.alloc(total)
        dst = system.alloc(total)
        for call in range(3):
            fill_group_inputs(system, groups, src, n * CHUNK, INT32,
                              np.random.default_rng(call))
            comm.alltoall(BITMAP, total, src_offset=src, dst_offset=dst,
                          data_type=INT32)
        assert comm.stats.tiles_replayed == 3 * result.tiles
        assert comm.stats.peak_scratch_bytes == result.peak_scratch_bytes
        assert comm.stats.snapshot()["tiles_replayed"] == 3 * result.tiles


class TestZeroAllocationSteadyState:
    def test_streamed_replay_allocates_no_buffers(self):
        # A warmed streamed AlltoAll moves a 512 KiB payload through a
        # 2 KiB tile budget.  In steady state every band reuses the
        # scratch pool, so tracemalloc must see no tile- or
        # payload-sized blocks -- only transient Python object headers.
        manager = make_manager(SHAPE)
        system = manager.system
        tile = 2048
        comm = Communicator(manager, SessionConfig(backend="vectorized",
                            execution="compiled", stream_tile_bytes=tile))
        n = 32
        per_pe = n * 64 * 8            # 16 KiB per PE, 512 KiB total
        src = system.alloc(per_pe)
        dst = system.alloc(per_pe)
        rng = np.random.default_rng(0)
        values = rng.integers(-99, 100, (n, per_pe // 8), dtype=np.int64)
        pe_ids = slice_groups(manager, BITMAP)[0].pe_ids
        system.scatter_elements(pe_ids, src, list(values), INT64)

        def call():
            return comm.alltoall(BITMAP, per_pe, src_offset=src,
                                 dst_offset=dst, data_type=INT64)

        call()
        warm = call()                   # steady state reached
        assert warm.execution == "streamed" and warm.tiles > 1
        tracemalloc.start()
        call()
        snapshot = tracemalloc.take_snapshot()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        largest = max((stat.size / stat.count
                       for stat in snapshot.statistics("lineno")),
                      default=0)
        assert largest < 1024, \
            f"steady-state replay allocated a {largest:.0f}B block"
        assert peak < tile * 16, \
            f"steady-state replay peaked at {peak}B of heap traffic"


class TestScratchPool:
    def test_views_reuse_backing(self):
        pool = ScratchPool()
        a = pool.pong((100,))
        cap = pool.capacity_bytes
        b = pool.pong((50,))
        assert np.shares_memory(a, b)
        assert pool.capacity_bytes == cap

    def test_geometric_growth(self):
        pool = ScratchPool()
        pool.pong((100,))
        assert pool.capacity_bytes == 100
        pool.pong((101,))               # grows to max(101, 200)
        assert pool.capacity_bytes == 200

    def test_peak_counts_simultaneous_views(self):
        pool = ScratchPool()
        pool.ping((64,))
        pool.pong((32,))
        assert pool.peak_bytes == 96
        pool.release()
        pool.fold((8,))                 # lower water: peak unchanged
        assert pool.peak_bytes == 96
        pool.reset_peak()
        assert pool.peak_bytes == 0

    def test_views_carry_shape_and_dtype(self):
        pool = ScratchPool()
        view = pool.fold((2, 3), np.int32)
        assert view.shape == (2, 3) and view.dtype == np.int32
        view[:] = 7                     # writable without error
        assert pool.peak_bytes == 24


class TestBandRanges:
    def test_covers_rows_exactly(self):
        bands = band_ranges(rows=10, row_bytes=3, tile_bytes=7)
        assert bands == [(0, 2), (2, 4), (4, 6), (6, 8), (8, 10)]

    def test_uneven_last_band_is_short(self):
        bands = band_ranges(rows=5, row_bytes=4, tile_bytes=8)
        assert bands == [(0, 2), (2, 4), (4, 5)]

    def test_tile_smaller_than_row_clamps_to_one(self):
        assert band_ranges(rows=3, row_bytes=100, tile_bytes=10) == \
            [(0, 1), (1, 2), (2, 3)]

    def test_large_tile_is_one_band(self):
        assert band_ranges(rows=8, row_bytes=16, tile_bytes=1 << 20) == \
            [(0, 8)]

    def test_zero_rows_is_empty(self):
        assert band_ranges(rows=0, row_bytes=8, tile_bytes=64) == []


class TestPipelinedLedger:
    def _ledger(self, **seconds):
        ledger = CostLedger()
        for category, value in seconds.items():
            ledger.add(category, value)
        return ledger

    def test_depth_one_is_an_unchanged_copy(self):
        ledger = self._ledger(pe=2.0, bus=1.0)
        out = ledger.pipelined(1)
        assert out.breakdown() == ledger.breakdown()
        out.add("bus", 5.0)
        assert ledger.get("bus") == 1.0

    def test_shorter_host_stage_is_hidden(self):
        ledger = self._ledger(pe=4.0, bus=1.0, dt=1.0, launch=0.5)
        out = ledger.pipelined(4)
        assert out.get("pe") == 4.0          # longer stage in full
        assert out.get("bus") == 0.25        # shorter stage / depth
        assert out.get("dt") == 0.25
        assert out.get("launch") == 0.5      # fixed cost untouched

    def test_shorter_pe_stage_is_hidden(self):
        ledger = self._ledger(pe=1.0, bus=4.0)
        out = ledger.pipelined(2)
        assert out.get("pe") == 0.5
        assert out.get("bus") == 4.0

    def test_makespan_formula(self):
        # max(P, H) + min(P, H) / depth, plus fixed categories in full.
        ledger = self._ledger(pe=3.0, bus=2.0, host_mem=4.0, kernel=1.0)
        depth = 3
        out = ledger.pipelined(depth)
        pe = sum(ledger.get(c) for c in STREAM_PE_STAGE)
        host = sum(ledger.get(c) for c in STREAM_HOST_STAGE)
        want = max(pe, host) + min(pe, host) / depth + 1.0
        assert out.total == pytest.approx(want)
