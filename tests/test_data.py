"""Tests for synthetic datasets, graphs, and partitioners."""

import numpy as np
import pytest

from repro.data import (
    criteo_like,
    partition_1d,
    partition_2d,
    random_graph,
    rmat_graph,
)
from repro.data.graphs import from_edges
from repro.data.synthetic import embedding_tables
from repro.errors import AppError


class TestFromEdges:
    def test_dedup_and_self_loops(self):
        g = from_edges(4, [0, 0, 1, 2], [1, 1, 1, 2])
        assert g.num_edges == 1  # (0,1) deduped; (1,1),(2,2) dropped
        assert g.neighbors(0).tolist() == [1]

    def test_local_coordinates_keep_diagonal(self):
        g = from_edges(4, [1, 2], [1, 3], drop_self_loops=False)
        assert g.num_edges == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(AppError):
            from_edges(4, [0], [4])

    def test_length_mismatch_rejected(self):
        with pytest.raises(AppError):
            from_edges(4, [0, 1], [1])


class TestGenerators:
    def test_rmat_shape_and_range(self):
        g = rmat_graph(64, 300, seed=1)
        assert g.num_vertices == 64
        assert 0 < g.num_edges <= 300
        assert g.indices.max() < 64

    def test_rmat_is_skewed(self):
        g = rmat_graph(256, 4096, seed=2)
        degrees = np.sort(g.out_degrees())[::-1]
        top = degrees[: len(degrees) // 10].sum()
        assert top > g.num_edges * 0.2  # heavy head

    def test_rmat_deterministic(self):
        a = rmat_graph(64, 200, seed=5)
        b = rmat_graph(64, 200, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_rmat_needs_pow2(self):
        with pytest.raises(AppError, match="power-of-two"):
            rmat_graph(100, 50)

    def test_random_graph(self):
        g = random_graph(50, 200, seed=3)
        assert g.num_vertices == 50
        assert g.num_edges > 0

    def test_symmetrized_is_symmetric(self):
        g = random_graph(32, 100, seed=4).symmetrized()
        dense = g.dense
        assert np.array_equal(dense, dense.T)


class TestPartitioners:
    def test_partition_1d_preserves_edges(self):
        g = rmat_graph(64, 300, seed=6)
        parts = partition_1d(g, 8)
        assert sum(p.num_edges for p in parts) == g.num_edges
        # Part 0's vertex 0 is global vertex 0.
        assert np.array_equal(parts[0].neighbors(0), g.neighbors(0))

    def test_partition_1d_indivisible(self):
        with pytest.raises(AppError):
            partition_1d(rmat_graph(64, 100), 7)

    def test_partition_2d_tiles_reassemble(self):
        g = rmat_graph(32, 200, seed=7).symmetrized()
        tiles = partition_2d(g, 4)
        block = 8
        dense = g.dense
        for i in range(4):
            for j in range(4):
                np.testing.assert_array_equal(
                    tiles[i][j].dense,
                    dense[i * block:(i + 1) * block,
                          j * block:(j + 1) * block])

    def test_dense_refuses_large(self):
        g = rmat_graph(8192, 10, seed=1)
        with pytest.raises(AppError, match="refused"):
            _ = g.dense


class TestCriteoLike:
    def test_shapes(self):
        data = criteo_like(batch_size=16, num_tables=8, num_rows=32, hots=3)
        assert data.indices.shape == (16, 8, 3)
        assert data.dense.shape == (16, 13)
        assert data.batch_size == 16
        assert data.num_tables == 8
        assert data.hots == 3

    def test_indices_in_range(self):
        data = criteo_like(batch_size=64, num_tables=4, num_rows=10, hots=5)
        assert data.indices.min() >= 0
        assert data.indices.max() < 10

    def test_popularity_is_skewed(self):
        data = criteo_like(batch_size=4096, num_tables=1, num_rows=1000,
                           hots=1, seed=8)
        counts = np.bincount(data.indices.reshape(-1), minlength=1000)
        assert counts[0] > counts[counts > 0].mean() * 5

    def test_deterministic(self):
        a = criteo_like(8, 4, 16, 2, seed=9)
        b = criteo_like(8, 4, 16, 2, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_validation(self):
        with pytest.raises(AppError):
            criteo_like(0, 4, 16)
        with pytest.raises(AppError):
            criteo_like(4, 4, 1)

    def test_embedding_tables(self):
        tables = embedding_tables(3, 8, 4, seed=1)
        assert tables.shape == (3, 8, 4)
        assert tables.dtype == np.int64
