"""Tests for WRAM-staged PE-side data movement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TransferError
from repro.hw.memory import PeMemory
from repro.hw.pe import WRAM_TILE_BYTES, wram_copy, wram_permute_chunks


@pytest.fixture
def memory():
    mem = PeMemory(1 << 18)
    mem.mram[:] = np.arange(mem.mram.size, dtype=np.uint64).astype(np.uint8)
    return mem


class TestWramCopy:
    def test_simple_copy(self, memory):
        original = memory.read(0, 100)
        tiles = wram_copy(memory, 0, 5000, 100)
        assert tiles == 1
        assert np.array_equal(memory.read(5000, 100), original)

    def test_large_copy_uses_multiple_tiles(self, memory):
        nbytes = WRAM_TILE_BYTES * 2 + 17
        original = memory.read(0, nbytes)
        tiles = wram_copy(memory, 0, 1 << 17, nbytes)
        assert tiles == 3
        assert np.array_equal(memory.read(1 << 17, nbytes), original)

    def test_overlap_forward(self, memory):
        original = memory.read(0, 1000)
        wram_copy(memory, 0, 100, 1000, tile_bytes=64)
        assert np.array_equal(memory.read(100, 1000), original)

    def test_overlap_backward(self, memory):
        original = memory.read(100, 1000)
        wram_copy(memory, 100, 0, 1000, tile_bytes=64)
        assert np.array_equal(memory.read(0, 1000), original)

    def test_zero_bytes(self, memory):
        assert wram_copy(memory, 0, 10, 0) == 0

    def test_tile_must_fit_wram(self, memory):
        with pytest.raises(TransferError, match="WRAM"):
            wram_copy(memory, 0, 10, 8, tile_bytes=memory.wram.size + 1)

    def test_negative_rejected(self, memory):
        with pytest.raises(TransferError):
            wram_copy(memory, 0, 10, -1)


class TestWramPermute:
    def test_out_of_place(self, memory):
        chunk = 32
        perm = np.array([2, 0, 3, 1])
        old = [memory.read(i * chunk, chunk) for i in range(4)]
        wram_permute_chunks(memory, 0, 4096, chunk, perm)
        for i in range(4):
            assert np.array_equal(memory.read(4096 + i * chunk, chunk),
                                  old[perm[i]])

    def test_in_place_rotation(self, memory):
        chunk = 64
        perm = (np.arange(8) + 3) % 8
        old = [memory.read(i * chunk, chunk) for i in range(8)]
        wram_permute_chunks(memory, 0, 0, chunk, perm)
        for i in range(8):
            assert np.array_equal(memory.read(i * chunk, chunk),
                                  old[perm[i]])

    def test_in_place_with_fixed_points(self, memory):
        chunk = 16
        perm = np.array([0, 2, 1, 3])  # swap middle two
        old = [memory.read(i * chunk, chunk) for i in range(4)]
        wram_permute_chunks(memory, 0, 0, chunk, perm)
        for i in range(4):
            assert np.array_equal(memory.read(i * chunk, chunk),
                                  old[perm[i]])

    def test_oversized_chunks_still_correct(self, memory):
        chunk = WRAM_TILE_BYTES + 100
        perm = np.array([1, 0])
        old = [memory.read(i * chunk, chunk) for i in range(2)]
        wram_permute_chunks(memory, 0, 0, chunk, perm)
        assert np.array_equal(memory.read(0, chunk), old[1])
        assert np.array_equal(memory.read(chunk, chunk), old[0])

    def test_partial_overlap_rejected(self, memory):
        with pytest.raises(TransferError, match="overlapping"):
            wram_permute_chunks(memory, 0, 16, 32, np.array([1, 0]))

    def test_non_permutation_rejected(self, memory):
        with pytest.raises(TransferError, match="not a permutation"):
            wram_permute_chunks(memory, 0, 0, 8, np.array([0, 0]))

    @given(st.integers(1, 16), st.integers(0, 2**31), st.integers(1, 96))
    @settings(max_examples=30, deadline=None)
    def test_random_permutations_in_place(self, nslots, seed, chunk):
        rng = np.random.default_rng(seed)
        mem = PeMemory(1 << 14)
        mem.mram[:nslots * chunk] = rng.integers(
            0, 256, nslots * chunk, dtype=np.uint8)
        perm = rng.permutation(nslots)
        old = [mem.read(i * chunk, chunk) for i in range(nslots)]
        wram_permute_chunks(mem, 0, 0, chunk, perm, tile_bytes=32)
        for i in range(nslots):
            assert np.array_equal(mem.read(i * chunk, chunk), old[perm[i]])
