"""Tests for the structured DPU compute kernels."""

import numpy as np
import pytest

from repro.dtypes import INT32, INT64, MAX, MIN, SUM
from repro.errors import TransferError
from repro.hw.kernels import ElementwiseKernel, KernelStats, MapKernel
from repro.hw.memory import PeMemory
from repro.hw.timing import MachineParams


@pytest.fixture
def memory():
    return PeMemory(1 << 18)


def _store(memory, offset, values, dtype=np.int64):
    arr = np.asarray(values, dtype=dtype)
    memory.write(offset, np.ascontiguousarray(arr).view(np.uint8))
    return arr


class TestElementwiseKernel:
    @pytest.mark.parametrize("op", [SUM, MIN, MAX], ids=str)
    def test_combines_elementwise(self, memory, op):
        rng = np.random.default_rng(0)
        a = _store(memory, 0, rng.integers(-99, 99, 100))
        b = _store(memory, 1024, rng.integers(-99, 99, 100))
        kernel = ElementwiseKernel(op, INT64)
        kernel.run(memory, 0, 1024, 4096, 800)
        out = memory.read(4096, 800).view(np.int64)
        np.testing.assert_array_equal(out, op.combine(a, b))

    def test_in_place_accumulation(self, memory):
        a = _store(memory, 0, np.arange(64))
        b = _store(memory, 1024, np.ones(64, dtype=np.int64))
        ElementwiseKernel(SUM, INT64).run(memory, 1024, 0, 0, 64 * 8)
        out = memory.read(0, 64 * 8).view(np.int64)
        np.testing.assert_array_equal(out, a + b)

    def test_tiling_preserves_result(self, memory):
        rng = np.random.default_rng(1)
        a = _store(memory, 0, rng.integers(0, 99, 2000))
        b = _store(memory, 16384, rng.integers(0, 99, 2000))
        stats = ElementwiseKernel(SUM, INT64).run(
            memory, 0, 16384, 32768, 16000, tile_bytes=1000)
        out = memory.read(32768, 16000).view(np.int64)
        np.testing.assert_array_equal(out, a + b)
        # 1000B tile truncates to 125 elements -> 16 passes of 3 tiles.
        assert stats.wram_tiles == 48

    def test_stats_counts(self, memory):
        _store(memory, 0, np.zeros(128))
        _store(memory, 2048, np.zeros(128))
        stats = ElementwiseKernel(SUM, INT64).run(memory, 0, 2048, 4096,
                                                  1024)
        assert stats.instructions == 4 * 128
        assert stats.mram_read_bytes == 2048
        assert stats.mram_write_bytes == 1024

    def test_seconds_positive_and_additive(self):
        params = MachineParams()
        a = KernelStats(instructions=1000, mram_read_bytes=2048,
                        mram_write_bytes=1024)
        b = KernelStats(instructions=500, mram_read_bytes=100,
                        mram_write_bytes=100)
        merged = KernelStats()
        merged.merge(a)
        merged.merge(b)
        assert merged.seconds(params) == pytest.approx(
            a.seconds(params) + b.seconds(params))

    def test_misaligned_rejected(self, memory):
        with pytest.raises(TransferError, match="whole number"):
            ElementwiseKernel(SUM, INT64).run(memory, 0, 64, 128, 12)

    def test_int32(self, memory):
        a = _store(memory, 0, np.arange(10), np.int32)
        b = _store(memory, 512, np.arange(10) * 2, np.int32)
        ElementwiseKernel(SUM, INT32).run(memory, 0, 512, 1024, 40)
        out = memory.read(1024, 40).view(np.int32)
        np.testing.assert_array_equal(out, a + b)


class TestMapKernel:
    def test_relu(self, memory):
        values = _store(memory, 0, np.array([-5, 3, 0, -1, 9]))
        MapKernel("relu", INT64).run(memory, 0, 512, 40)
        out = memory.read(512, 40).view(np.int64)
        np.testing.assert_array_equal(out, np.maximum(values, 0))

    def test_relu_in_place(self, memory):
        values = _store(memory, 0, np.array([-5, 3, 0, -1, 9]))
        MapKernel("relu", INT64).run(memory, 0, 0, 40)
        out = memory.read(0, 40).view(np.int64)
        np.testing.assert_array_equal(out, np.maximum(values, 0))

    def test_negate_tiled(self, memory):
        rng = np.random.default_rng(2)
        values = _store(memory, 0, rng.integers(-99, 99, 1000))
        MapKernel("negate", INT64).run(memory, 0, 16384, 8000,
                                       tile_bytes=640)
        out = memory.read(16384, 8000).view(np.int64)
        np.testing.assert_array_equal(out, -values)

    def test_unknown_fn_rejected(self):
        with pytest.raises(TransferError, match="unknown map fn"):
            MapKernel("sigmoid", INT64)
