"""Functional validation of the five benchmark applications.

Every app runs on the simulated 32-PE system with both the PID-Comm and
the baseline backend and must produce outputs bit-identical to its
golden (single-machine numpy) model -- proving the distributed
implementations, and the collectives underneath them, are correct.
"""

import numpy as np
import pytest

from repro import HypercubeManager
from repro.apps import (
    BaselineCommBackend,
    BfsApp,
    BfsConfig,
    CcApp,
    CcConfig,
    DlrmApp,
    DlrmConfig,
    GnnApp,
    GnnConfig,
    MlpApp,
    MlpConfig,
    PidCommBackend,
    app_table,
)
from repro.apps.bfs import golden_bfs
from repro.apps.cc import golden_cc
from repro.apps.dlrm import golden_dlrm
from repro.apps.gnn import golden_gnn
from repro.apps.mlp import golden_mlp
from repro.data import criteo_like, random_graph, rmat_graph
from repro.data.synthetic import embedding_tables
from repro.errors import AppError
from repro.hw.system import DimmSystem

BACKENDS = [PidCommBackend(), BaselineCommBackend()]
BACKEND_IDS = ["pidcomm", "baseline"]


def manager_1d(pes=32, mram=1 << 20):
    system = DimmSystem.small(mram_bytes=mram)
    return HypercubeManager(system, shape=(pes,))


def manager_2d(p=4, mram=1 << 20):
    system = DimmSystem.small(mram_bytes=mram)
    return HypercubeManager(system, shape=(p, p))


def manager_3d(shape=(4, 2, 2), mram=1 << 20):
    system = DimmSystem.small(mram_bytes=mram)
    return HypercubeManager(system, shape=shape)


class TestMlp:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_matches_golden(self, backend):
        app = MlpApp(MlpConfig(features=64, layers=3, batch=4, seed=1))
        result = app.run(manager_1d(), backend, functional=True)
        np.testing.assert_array_equal(result.output, result.meta["golden"])

    def test_records_per_primitive_breakdown(self):
        app = MlpApp(MlpConfig(features=64, layers=2, batch=2))
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        assert result.per_primitive["reduce_scatter"] > 0
        assert result.per_primitive["kernel"] > 0
        assert result.per_primitive["scatter"] > 0
        assert result.seconds == pytest.approx(
            sum(result.per_primitive.values()))

    def test_analytic_mode_no_memory(self):
        system = DimmSystem.paper_testbed()
        manager = HypercubeManager(system, shape=(1024,))
        app = MlpApp(MlpConfig(features=16 * 1024, layers=5, batch=256))
        result = app.run(manager, PidCommBackend(), functional=False)
        assert result.output is None
        assert result.seconds > 0
        assert system.touched_pes == 0

    def test_indivisible_features_rejected(self):
        app = MlpApp(MlpConfig(features=50, layers=2, batch=2))
        with pytest.raises(AppError, match="divide"):
            app.run(manager_1d(), PidCommBackend())


class TestBfs:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_matches_golden(self, backend):
        graph = rmat_graph(64, 300, seed=3)
        app = BfsApp(graph, BfsConfig(source=0))
        result = app.run(manager_1d(), backend, functional=True)
        np.testing.assert_array_equal(result.output, golden_bfs(graph, 0))

    def test_disconnected_vertices_stay_unreached(self):
        graph = random_graph(64, 40, seed=5)  # sparse: many isolated
        app = BfsApp(graph, BfsConfig(source=0))
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        golden = golden_bfs(graph, 0)
        np.testing.assert_array_equal(result.output, golden)
        assert (golden == -1).any()  # the scenario is exercised

    def test_iteration_count_reported(self):
        graph = rmat_graph(64, 300, seed=3)
        app = BfsApp(graph, BfsConfig(source=0))
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        assert result.meta["iterations"] >= 1


class TestCc:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_matches_golden(self, backend):
        graph = random_graph(64, 80, seed=7)
        app = CcApp(graph, CcConfig())
        result = app.run(manager_1d(), backend, functional=True)
        np.testing.assert_array_equal(result.output, golden_cc(graph))

    def test_multiple_components_found(self):
        graph = random_graph(64, 30, seed=11)
        app = CcApp(graph, CcConfig())
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        labels = result.output
        assert len(np.unique(labels)) > 1
        np.testing.assert_array_equal(labels, golden_cc(graph))


class TestGnn:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    @pytest.mark.parametrize("strategy", ["rs_ar", "ar_ag"])
    def test_matches_golden(self, backend, strategy):
        graph = rmat_graph(32, 128, seed=9)
        app = GnnApp(graph, GnnConfig(features=8, layers=3,
                                      strategy=strategy))
        result = app.run(manager_2d(4), backend, functional=True)
        np.testing.assert_array_equal(result.output, result.meta["golden"])

    def test_even_layer_count(self):
        # Dimension alternation must also close correctly after an even
        # number of layers.
        graph = rmat_graph(32, 128, seed=13)
        app = GnnApp(graph, GnnConfig(features=8, layers=2,
                                      strategy="rs_ar"))
        result = app.run(manager_2d(4), PidCommBackend(), functional=True)
        np.testing.assert_array_equal(result.output, result.meta["golden"])

    def test_strategies_use_different_primitives(self):
        graph = rmat_graph(32, 128, seed=9)
        rs = GnnApp(graph, GnnConfig(features=8, layers=2,
                                     strategy="rs_ar")).run(
            manager_2d(4), PidCommBackend(), functional=True)
        ag = GnnApp(graph, GnnConfig(features=8, layers=2,
                                     strategy="ar_ag")).run(
            manager_2d(4), PidCommBackend(), functional=True)
        assert "reduce_scatter" in rs.per_primitive
        assert "allgather" in ag.per_primitive
        assert "allgather" not in rs.per_primitive
        assert "reduce_scatter" not in ag.per_primitive

    def test_non_square_grid_rejected(self):
        graph = rmat_graph(32, 64)
        app = GnnApp(graph, GnnConfig(features=8, layers=1))
        system = DimmSystem.small()
        manager = HypercubeManager(system, shape=(8, 4))
        with pytest.raises(AppError, match="square"):
            app.run(manager, PidCommBackend())

    def test_bad_strategy_rejected(self):
        with pytest.raises(AppError, match="strategy"):
            GnnConfig(strategy="ring")


class TestDlrm:
    @pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
    def test_matches_golden(self, backend):
        data = criteo_like(batch_size=32, num_tables=4, num_rows=16,
                           hots=3, seed=17)
        app = DlrmApp(data, DlrmConfig(embedding_dim=8, mlp_hidden=4))
        result = app.run(manager_3d((4, 2, 2)), backend, functional=True)
        np.testing.assert_array_equal(
            result.output, result.meta["golden"].reshape(-1))

    def test_shape_validation(self):
        data = criteo_like(batch_size=32, num_tables=3, num_rows=16, hots=2)
        app = DlrmApp(data, DlrmConfig(embedding_dim=8))
        with pytest.raises(AppError, match="tables"):
            app.run(manager_3d((4, 2, 2)), PidCommBackend())

    def test_batch_shard_validation(self):
        data = criteo_like(batch_size=4, num_tables=4, num_rows=16, hots=2)
        app = DlrmApp(data, DlrmConfig(embedding_dim=8))
        with pytest.raises(AppError, match="batch"):
            app.run(manager_3d((4, 2, 2)), PidCommBackend())


class TestGoldenModels:
    def test_golden_mlp_shapes(self):
        x = np.ones((2, 4), dtype=np.int64)
        w = [np.eye(4, dtype=np.int64)] * 3
        np.testing.assert_array_equal(golden_mlp(x, w), x)

    def test_golden_gnn_identity(self):
        a = np.eye(4, dtype=np.int64)
        h = np.arange(8).reshape(4, 2)
        w = [np.eye(2, dtype=np.int64)]
        np.testing.assert_array_equal(golden_gnn(a, h, w), h)

    def test_golden_dlrm_pools_rows(self):
        data = criteo_like(batch_size=2, num_tables=1, num_rows=4, hots=2,
                           seed=1)
        tables = embedding_tables(1, 4, 2, seed=1)
        w1 = np.eye(2, dtype=np.int64)
        w2 = np.ones((2, 1), dtype=np.int64)
        out = golden_dlrm(data, tables, w1, w2)
        s0 = tables[0, data.indices[0, 0]].sum(axis=0)
        expect0 = max(s0[0], 0) + max(s0[1], 0)
        assert out[0, 0] == expect0


class TestRegistry:
    def test_table3_rows(self):
        rows = app_table()
        assert [r["app"] for r in rows] == [
            "DLRM", "GNN-RS&AR", "GNN-AR&AG", "BFS", "CC", "MLP"]
        dlrm = rows[0]
        assert dlrm["hyper_dim"] == 3
        assert dlrm["alltoall"] and dlrm["reduce_scatter"]
        assert not dlrm["allreduce"]
        bfs = rows[3]
        assert bfs["allreduce"] and bfs["hyper_dim"] == 1


class TestBfsLongDiameter:
    def test_path_graph_needs_one_iteration_per_level(self):
        """A 64-vertex path is the diameter worst case: 63 iterations,
        levels 0..63 -- exercises the long-tail iteration loop."""
        from repro.data.graphs import from_edges
        n = 64
        graph = from_edges(n, np.arange(n - 1), np.arange(1, n))
        app = BfsApp(graph, BfsConfig(source=0))
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        np.testing.assert_array_equal(result.output, np.arange(n))
        assert result.meta["iterations"] == n

    def test_max_iterations_guard(self):
        from repro.data.graphs import from_edges
        n = 64
        graph = from_edges(n, np.arange(n - 1), np.arange(1, n))
        app = BfsApp(graph, BfsConfig(source=0, max_iterations=5))
        result = app.run(manager_1d(), PidCommBackend(), functional=True)
        assert result.meta["iterations"] == 5
        # Only the first levels were settled before the cut-off.
        assert (result.output[:5] == np.arange(5)).all()
        assert (result.output[6:] == -1).all()
