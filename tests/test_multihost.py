"""Tests for the multi-host extension (MPI sim + hierarchical collectives)."""

import numpy as np
import pytest

from repro.core import reference as ref
from repro.dtypes import INT64, MIN, SUM
from repro.errors import CollectiveError
from repro.hw.timing import MachineParams
from repro.multihost import (
    MpiSimulator,
    MultiHostSystem,
    multihost_allreduce,
    multihost_alltoall,
)


@pytest.fixture
def params():
    return MachineParams()


class TestMpiSimulator:
    def test_single_host_is_free(self, params):
        mpi = MpiSimulator(params, 1)
        assert mpi.allreduce_seconds(1 << 20) == 0.0
        assert mpi.alltoall_seconds(1 << 20) == 0.0

    def test_cost_grows_with_hosts(self, params):
        sizes = [MpiSimulator(params, n).alltoall_seconds(1 << 20)
                 for n in (2, 3, 4)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_ring_factor(self, params):
        # (N-1)/N volume: 2 hosts move half, 4 hosts 3/4.
        two = MpiSimulator(params, 2)
        four = MpiSimulator(params, 4)
        vol2 = two.alltoall_seconds(1e9) - params.mpi_latency_s * 1
        vol4 = four.alltoall_seconds(1e9) - params.mpi_latency_s * 3
        assert vol4 / vol2 == pytest.approx(1.5)

    def test_allreduce_functional(self, params):
        mpi = MpiSimulator(params, 3)
        rng = np.random.default_rng(0)
        bufs = [rng.integers(0, 100, 8) for _ in range(3)]
        out = mpi.allreduce(bufs, SUM)
        expect = np.stack(bufs).sum(axis=0)
        assert all(np.array_equal(o, expect) for o in out)

    def test_alltoall_functional(self, params):
        mpi = MpiSimulator(params, 2)
        bufs = [np.arange(4), np.arange(4) + 10]
        out = mpi.alltoall(bufs)
        assert out[0].tolist() == [0, 1, 10, 11]
        assert out[1].tolist() == [2, 3, 12, 13]

    def test_validation(self, params):
        with pytest.raises(CollectiveError):
            MpiSimulator(params, 0)
        mpi = MpiSimulator(params, 2)
        with pytest.raises(CollectiveError):
            mpi.allreduce([np.arange(3)], SUM)


def small_multihost(num_hosts, ranks=1):
    # 1 channel x 1 rank x 8 chips x 8 banks = 64 PEs per host.
    return MultiHostSystem(num_hosts, ranks_per_channel=ranks,
                           mram_bytes=1 << 16)


class TestHierarchicalAllReduce:
    @pytest.mark.parametrize("num_hosts", [1, 2, 3])
    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_matches_global_reference(self, num_hosts, op):
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(1)
        p = mh.pes_per_host
        elems = p  # divisible into p chunks on each host
        buf = mh.alloc(elems * 8)
        out = mh.alloc(elems * 8)
        inputs = [rng.integers(-100, 100, elems)
                  for _ in range(mh.total_pes)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        result = multihost_allreduce(mh, elems * 8, buf, out, INT64, op)
        expect = ref.allreduce(inputs, op)[0]
        for host_out in result.outputs:
            for vec in host_out:
                np.testing.assert_array_equal(vec, expect)

    def test_mpi_share_small_for_allreduce(self):
        """The network carries 1/P of the data (reduced first)."""
        mh = small_multihost(2)
        size = 1 << 20
        result = multihost_allreduce(mh, size, 0, 0, functional=False)
        # Crossing bytes ~ size; local bus bytes ~ size * pes.
        assert result.mpi_seconds < result.ledger.total


class TestHierarchicalAlltoAll:
    @pytest.mark.parametrize("num_hosts", [1, 2, 4])
    def test_matches_global_reference(self, num_hosts):
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(2)
        total_pes = mh.total_pes
        chunk_elems = 1
        elems = total_pes * chunk_elems
        buf = mh.alloc(elems * 8)
        out = mh.alloc(elems * 8)
        inputs = [rng.integers(0, 1000, elems) for _ in range(total_pes)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        result = multihost_alltoall(mh, elems * 8, buf, out, INT64)
        expect = ref.alltoall(inputs)
        flat = [vec for host_out in result.outputs for vec in host_out]
        for got, want in zip(flat, expect):
            np.testing.assert_array_equal(got, want)

    def test_alltoall_overhead_grows_with_hosts(self):
        """Figure 23b: more hosts -> more data crossing the wire."""
        times = []
        for hosts in (2, 3, 4):
            mh = small_multihost(hosts)
            # 3 KiB chunks per global destination keep sizes divisible
            # for every host count.
            size = hosts * mh.pes_per_host * 3072
            result = multihost_alltoall(mh, size, 0, 0, functional=False)
            # Normalize: MPI seconds per payload byte must still grow,
            # because (N-1)/N grows with N.
            times.append(result.mpi_seconds / size)
        assert times[0] < times[1] < times[2]

    def test_alltoall_mpi_dominates_allreduce_mpi(self):
        """Figure 23b's asymmetry: AlltoAll pays much more MPI time
        (2 MB per PE, the paper's configuration)."""
        mh = small_multihost(4)
        size = 2 << 20
        aa = multihost_alltoall(mh, size, 0, 0, functional=False)
        ar = multihost_allreduce(mh, size, 0, 0, functional=False)
        assert aa.mpi_seconds > 10 * ar.mpi_seconds

    def test_indivisible_rejected(self):
        mh = small_multihost(2)
        with pytest.raises(CollectiveError, match="split"):
            multihost_alltoall(mh, 8, 0, 0, functional=False)


class TestMultiHostSystem:
    def test_global_pe_addressing(self):
        mh = small_multihost(2)
        buf = mh.alloc(16)
        mh.write_pe(70, buf, np.array([1, 2]), INT64)
        # Global PE 70 = host 1, local PE 6.
        got = mh.systems[1].read_elements(6, buf, 2, INT64)
        assert got.tolist() == [1, 2]
        assert np.array_equal(mh.read_pe(70, buf, 2, INT64), got)

    def test_symmetric_alloc(self):
        mh = small_multihost(3)
        a = mh.alloc(32)
        b = mh.alloc(32)
        assert a == 0 and b == 32

    def test_validation(self):
        with pytest.raises(CollectiveError):
            MultiHostSystem(0)


class TestHierarchicalReduceScatter:
    @pytest.mark.parametrize("num_hosts", [1, 2, 4])
    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_matches_global_reference(self, num_hosts, op):
        from repro.multihost import multihost_reduce_scatter
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(4)
        tp = mh.total_pes
        elems = tp * 2
        buf = mh.alloc(elems * 8)
        out = mh.alloc(16)
        inputs = [rng.integers(-50, 50, elems) for _ in range(tp)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        multihost_reduce_scatter(mh, elems * 8, buf, out, INT64, op)
        expect = ref.reduce_scatter(inputs, op)
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, 2, INT64), expect[gpe])

    def test_mpi_volume_matches_post_reduction(self):
        """The wire carries the reduced vector once, not per PE."""
        from repro.multihost import multihost_reduce_scatter
        mh = small_multihost(2)
        tp = mh.total_pes
        size = tp * 64
        result = multihost_reduce_scatter(mh, size, 0, 0, functional=False)
        # (N-1)/N * size at 1.25 GB/s plus one latency.
        expected = size * 0.5 / 1.25e9 + mh.params.mpi_latency_s
        assert result.mpi_seconds == pytest.approx(expected)


class TestHierarchicalAllGather:
    @pytest.mark.parametrize("num_hosts", [1, 2, 3])
    def test_matches_global_reference(self, num_hosts):
        from repro.multihost import multihost_allgather
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(5)
        tp = mh.total_pes
        buf = mh.alloc(16)
        out = mh.alloc(tp * 16)
        inputs = [rng.integers(0, 100, 2) for _ in range(tp)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        multihost_allgather(mh, 16, buf, out, INT64)
        expect = ref.allgather(inputs)[0]
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, tp * 2, INT64), expect)

    def test_data_crosses_before_duplication(self):
        """Section IX-A: AllGather ships each host's share once."""
        from repro.multihost import multihost_allgather
        mh = small_multihost(4)
        chunk = 1 << 12
        result = multihost_allgather(mh, chunk, 0, 0, functional=False)
        per_host = mh.pes_per_host * chunk
        expected = 0.75 * per_host * 4 / 1.25e9 + 3 * mh.params.mpi_latency_s
        assert result.mpi_seconds == pytest.approx(expected)
