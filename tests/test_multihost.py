"""Tests for the multi-host extension (fabric + hierarchical collectives)."""

import numpy as np
import pytest

from repro.core import reference as ref
from repro.dtypes import INT64, MIN, SUM
from repro.engine import SessionConfig
from repro.errors import CollectiveError
from repro.hw.timing import MachineParams
from repro.multihost import (
    Fabric,
    GLOBAL_ALGORITHMS,
    GlobalTuner,
    MpiSimulator,
    MultiHostSystem,
    compile_global,
    default_factors,
    multihost_allgather,
    multihost_allreduce,
    multihost_alltoall,
    multihost_reduce_scatter,
)


@pytest.fixture
def params():
    return MachineParams()


class TestMpiSimulator:
    def test_single_host_is_free(self, params):
        mpi = MpiSimulator(params, 1)
        assert mpi.allreduce_seconds(1 << 20) == 0.0
        assert mpi.alltoall_seconds(1 << 20) == 0.0

    def test_cost_grows_with_hosts(self, params):
        sizes = [MpiSimulator(params, n).alltoall_seconds(1 << 20)
                 for n in (2, 3, 4)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_ring_factor(self, params):
        # (N-1)/N volume: 2 hosts move half, 4 hosts 3/4.
        two = MpiSimulator(params, 2)
        four = MpiSimulator(params, 4)
        vol2 = two.alltoall_seconds(1e9) - params.mpi_latency_s * 1
        vol4 = four.alltoall_seconds(1e9) - params.mpi_latency_s * 3
        assert vol4 / vol2 == pytest.approx(1.5)

    def test_allreduce_functional(self, params):
        mpi = MpiSimulator(params, 3)
        rng = np.random.default_rng(0)
        bufs = [rng.integers(0, 100, 8) for _ in range(3)]
        out = mpi.allreduce(bufs, SUM)
        expect = np.stack(bufs).sum(axis=0)
        assert all(np.array_equal(o, expect) for o in out)

    def test_alltoall_functional(self, params):
        mpi = MpiSimulator(params, 2)
        bufs = [np.arange(4), np.arange(4) + 10]
        out = mpi.alltoall(bufs)
        assert out[0].tolist() == [0, 1, 10, 11]
        assert out[1].tolist() == [2, 3, 12, 13]

    def test_validation(self, params):
        with pytest.raises(CollectiveError):
            MpiSimulator(params, 0)
        mpi = MpiSimulator(params, 2)
        with pytest.raises(CollectiveError):
            mpi.allreduce([np.arange(3)], SUM)


def small_multihost(num_hosts, ranks=1):
    # 1 channel x 1 rank x 8 chips x 8 banks = 64 PEs per host.
    return MultiHostSystem(num_hosts, ranks_per_channel=ranks,
                           mram_bytes=1 << 16)


class TestHierarchicalAllReduce:
    @pytest.mark.parametrize("num_hosts", [1, 2, 3])
    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_matches_global_reference(self, num_hosts, op):
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(1)
        p = mh.pes_per_host
        elems = p  # divisible into p chunks on each host
        buf = mh.alloc(elems * 8)
        out = mh.alloc(elems * 8)
        inputs = [rng.integers(-100, 100, elems)
                  for _ in range(mh.total_pes)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        result = multihost_allreduce(mh, elems * 8, buf, out, INT64, op)
        expect = ref.allreduce(inputs, op)[0]
        for host_out in result.outputs:
            for vec in host_out:
                np.testing.assert_array_equal(vec, expect)

    def test_mpi_share_small_for_allreduce(self):
        """The network carries 1/P of the data (reduced first)."""
        mh = small_multihost(2)
        size = 1 << 20
        result = multihost_allreduce(mh, size, 0, 0, functional=False)
        # Crossing bytes ~ size; local bus bytes ~ size * pes.
        assert result.mpi_seconds < result.ledger.total


class TestHierarchicalAlltoAll:
    @pytest.mark.parametrize("num_hosts", [1, 2, 4])
    def test_matches_global_reference(self, num_hosts):
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(2)
        total_pes = mh.total_pes
        chunk_elems = 1
        elems = total_pes * chunk_elems
        buf = mh.alloc(elems * 8)
        out = mh.alloc(elems * 8)
        inputs = [rng.integers(0, 1000, elems) for _ in range(total_pes)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        result = multihost_alltoall(mh, elems * 8, buf, out, INT64)
        expect = ref.alltoall(inputs)
        flat = [vec for host_out in result.outputs for vec in host_out]
        for got, want in zip(flat, expect):
            np.testing.assert_array_equal(got, want)

    def test_alltoall_overhead_grows_with_hosts(self):
        """Figure 23b: more hosts -> more data crossing the wire."""
        times = []
        for hosts in (2, 3, 4):
            mh = small_multihost(hosts)
            # 3 KiB chunks per global destination keep sizes divisible
            # for every host count.
            size = hosts * mh.pes_per_host * 3072
            result = multihost_alltoall(mh, size, 0, 0, functional=False)
            # Normalize: MPI seconds per payload byte must still grow,
            # because (N-1)/N grows with N.
            times.append(result.mpi_seconds / size)
        assert times[0] < times[1] < times[2]

    def test_alltoall_mpi_dominates_allreduce_mpi(self):
        """Figure 23b's asymmetry: AlltoAll pays much more MPI time
        (2 MB per PE, the paper's configuration)."""
        mh = small_multihost(4)
        size = 2 << 20
        aa = multihost_alltoall(mh, size, 0, 0, functional=False)
        ar = multihost_allreduce(mh, size, 0, 0, functional=False)
        assert aa.mpi_seconds > 10 * ar.mpi_seconds

    def test_indivisible_rejected(self):
        mh = small_multihost(2)
        with pytest.raises(CollectiveError, match="split"):
            multihost_alltoall(mh, 8, 0, 0, functional=False)


class TestMultiHostSystem:
    def test_global_pe_addressing(self):
        mh = small_multihost(2)
        buf = mh.alloc(16)
        mh.write_pe(70, buf, np.array([1, 2]), INT64)
        # Global PE 70 = host 1, local PE 6.
        got = mh.systems[1].read_elements(6, buf, 2, INT64)
        assert got.tolist() == [1, 2]
        assert np.array_equal(mh.read_pe(70, buf, 2, INT64), got)

    def test_symmetric_alloc(self):
        mh = small_multihost(3)
        a = mh.alloc(32)
        b = mh.alloc(32)
        assert a == 0 and b == 32

    def test_validation(self):
        with pytest.raises(CollectiveError):
            MultiHostSystem(0)


class TestHierarchicalReduceScatter:
    @pytest.mark.parametrize("num_hosts", [1, 2, 4])
    @pytest.mark.parametrize("op", [SUM, MIN], ids=str)
    def test_matches_global_reference(self, num_hosts, op):
        from repro.multihost import multihost_reduce_scatter
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(4)
        tp = mh.total_pes
        elems = tp * 2
        buf = mh.alloc(elems * 8)
        out = mh.alloc(16)
        inputs = [rng.integers(-50, 50, elems) for _ in range(tp)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        multihost_reduce_scatter(mh, elems * 8, buf, out, INT64, op)
        expect = ref.reduce_scatter(inputs, op)
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, 2, INT64), expect[gpe])

    def test_mpi_volume_matches_post_reduction(self):
        """The wire carries the reduced vector once, not per PE."""
        from repro.multihost import multihost_reduce_scatter
        mh = small_multihost(2)
        tp = mh.total_pes
        size = tp * 64
        result = multihost_reduce_scatter(mh, size, 0, 0, functional=False)
        # (N-1)/N * size at 1.25 GB/s plus one latency.
        expected = size * 0.5 / 1.25e9 + mh.params.mpi_latency_s
        assert result.mpi_seconds == pytest.approx(expected)


class TestHierarchicalAllGather:
    @pytest.mark.parametrize("num_hosts", [1, 2, 3])
    def test_matches_global_reference(self, num_hosts):
        from repro.multihost import multihost_allgather
        mh = small_multihost(num_hosts)
        rng = np.random.default_rng(5)
        tp = mh.total_pes
        buf = mh.alloc(16)
        out = mh.alloc(tp * 16)
        inputs = [rng.integers(0, 100, 2) for _ in range(tp)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        multihost_allgather(mh, 16, buf, out, INT64)
        expect = ref.allgather(inputs)[0]
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, tp * 2, INT64), expect)

    def test_data_crosses_before_duplication(self):
        """Section IX-A: AllGather ships each host's share once.

        Pinned to the ring algorithm: on a fully connected fabric it
        reproduces the flat MpiSimulator formula exactly (the tuner
        left free picks halving/doubling, which shaves a latency
        round).
        """
        from repro.multihost import multihost_allgather
        mh = MultiHostSystem(4, ranks_per_channel=1, mram_bytes=1 << 16,
                             global_algorithm="ring")
        chunk = 1 << 12
        result = multihost_allgather(mh, chunk, 0, 0, functional=False)
        per_host = mh.pes_per_host * chunk
        expected = 0.75 * per_host * 4 / 1.25e9 + 3 * mh.params.mpi_latency_s
        assert result.mpi_seconds == pytest.approx(expected)

class TestFabric:
    def test_fully_connected_prices_like_flat_mpi(self, params):
        """One message on a default fully connected fabric costs what
        the flat simulator charges it."""
        fabric = Fabric.fully_connected(4, params)
        one = fabric.round_seconds([(0, 1, 1 << 20)])
        assert one == pytest.approx(params.link_time(1 << 20, messages=1))

    def test_disjoint_links_run_concurrently(self, params):
        fabric = Fabric.fully_connected(4, params)
        one = fabric.round_seconds([(0, 1, 1 << 20)])
        both = fabric.round_seconds([(0, 1, 1 << 20), (2, 3, 1 << 20)])
        assert both == pytest.approx(one)

    def test_shared_link_serializes(self, params):
        fabric = Fabric.fully_connected(2, params)
        one = fabric.round_seconds([(0, 1, 1 << 20)])
        both = fabric.round_seconds([(0, 1, 1 << 20), (0, 1, 1 << 20)])
        assert both == pytest.approx(2 * one - params.mpi_latency_s)

    def test_ring_routes_hop_through_neighbours(self, params):
        fabric = Fabric.ring(4, params)
        assert len(fabric.route(0, 1)) == 1
        assert len(fabric.route(0, 2)) == 2     # via host 1 or 3
        direct = Fabric.fully_connected(4, params)
        far = (0, 2, 1 << 20)
        assert fabric.round_seconds([far]) > direct.round_seconds([far])

    def test_leaf_spine_structure(self, params):
        fabric = Fabric.leaf_spine(8, 2, params)
        assert fabric.hosts_per_rack == 4 and fabric.racks == 2
        # Same rack: host -> leaf -> host (2 links).
        assert len(fabric.route(0, 3)) == 2
        # Cross rack: host -> leaf -> spine -> leaf -> host (4 links).
        assert len(fabric.route(0, 4)) == 4

    def test_oversubscribed_spine_congests(self, params):
        fabric = Fabric.leaf_spine(8, 2, params, spine_gbps=0.25)
        intra = fabric.round_seconds([(0, 1, 1 << 20)])
        cross = fabric.round_seconds([(0, 4, 1 << 20)])
        assert cross > intra

    def test_validation(self, params):
        with pytest.raises(CollectiveError):
            Fabric.fully_connected(0)
        with pytest.raises(CollectiveError):
            Fabric.ring(1)
        with pytest.raises(CollectiveError):
            Fabric.leaf_spine(6, 4)
        with pytest.raises(CollectiveError):
            Fabric.fully_connected(2, gbps=-1.0)
        fabric = Fabric.fully_connected(2, params)
        with pytest.raises(CollectiveError, match="outside"):
            fabric.round_seconds([(0, 5, 8)])


class TestGlobalAlgorithms:
    def test_ring_matches_flat_formulas(self, params):
        """Ring rounds on a fully connected fabric reproduce the flat
        MpiSimulator cost for every primitive."""
        n, nbytes = 4, 1 << 20
        fabric = Fabric.fully_connected(n, params)
        mpi = MpiSimulator(params, n)
        flat = {
            "allreduce": mpi.allreduce_seconds(nbytes),
            "reduce_scatter": mpi.reduce_scatter_seconds(nbytes),
            "allgather": mpi.allgather_seconds(nbytes),
            "alltoall": mpi.alltoall_seconds(nbytes),
        }
        for primitive, expected in flat.items():
            program = compile_global(primitive, n, nbytes, "ring", fabric)
            assert program.seconds == pytest.approx(expected), primitive

    def test_halving_doubling_needs_power_of_two(self, params):
        fabric = Fabric.fully_connected(6, params)
        assert compile_global("allreduce", 6, 1 << 20,
                              "halving_doubling", fabric) is None

    def test_halving_doubling_fewer_rounds(self, params):
        fabric = Fabric.fully_connected(8, params)
        ring = compile_global("allreduce", 8, 1 << 20, "ring", fabric)
        hd = compile_global("allreduce", 8, 1 << 20,
                            "halving_doubling", fabric)
        assert len(hd.rounds) < len(ring.rounds)

    def test_exchange_factors_validated(self, params):
        fabric = Fabric.fully_connected(6, params)
        with pytest.raises(CollectiveError, match="factors"):
            compile_global("alltoall", 6, 1 << 20, "exchange", fabric,
                           factors=(4, 2))

    def test_exchange_single_phase_is_direct(self, params):
        """factors=(N,) is the direct pairwise exchange: alltoall cost
        identical to the ring/pairwise schedule."""
        n = 5
        fabric = Fabric.fully_connected(n, params)
        ring = compile_global("alltoall", n, 1 << 20, "ring", fabric)
        direct = compile_global("alltoall", n, 1 << 20, "exchange",
                                fabric, factors=(n,))
        assert direct.seconds == pytest.approx(ring.seconds)

    def test_default_factors_rack_aligned(self, params):
        leaf = Fabric.leaf_spine(8, 2, params)
        assert default_factors(8, leaf) == (4, 2)
        flat = Fabric.fully_connected(8, params)
        assert default_factors(8, flat) == (2, 2, 2)

    def test_one_host_program_is_free(self, params):
        fabric = Fabric.fully_connected(1, params)
        for algorithm in GLOBAL_ALGORITHMS:
            program = compile_global("allreduce", 1, 1 << 20, algorithm,
                                     fabric)
            assert program.seconds == 0.0 and program.rounds == ()


class TestGlobalTuner:
    def test_choice_is_argmin_of_candidates(self, params):
        tuner = GlobalTuner(Fabric.fully_connected(8, params))
        for primitive in ("allreduce", "alltoall"):
            ranked = tuner.candidates(primitive, 1 << 16)
            best = tuner.choose(primitive, 1 << 16)
            assert best.seconds == min(p.seconds for p in ranked)

    def test_latency_bound_payload_picks_log_rounds(self, params):
        """Tiny payloads are latency-dominated: 3 halving/doubling
        rounds beat 7 ring rounds at 8 hosts."""
        tuner = GlobalTuner(Fabric.fully_connected(8, params))
        assert tuner.choose("allreduce", 64).algorithm == "halving_doubling"

    def test_bulk_allreduce_on_racks_prefers_exchange(self, params):
        """On an oversubscribed leaf-spine, multi-phase exchange
        shrinks shares intra-rack before crossing the spine, beating
        the flat ring (AlltoAll gains nothing -- its cross-rack volume
        is invariant -- so ring stays best there)."""
        fabric = Fabric.leaf_spine(8, 2, params, spine_gbps=0.125)
        tuner = GlobalTuner(fabric)
        best = tuner.choose("allreduce", 8 << 20)
        assert best.algorithm == "exchange" and len(best.factors) > 1
        ring = next(p for p in tuner.candidates("allreduce", 8 << 20)
                    if p.algorithm == "ring")
        assert best.seconds < ring.seconds
        assert tuner.choose("alltoall", 8 << 20).algorithm == "ring"

    def test_decisions_cache(self, params):
        tuner = GlobalTuner(Fabric.fully_connected(4, params))
        tuner.choose("allreduce", 4096)
        tuner.choose("allreduce", 4096)
        assert tuner.searches == 1 and tuner.decision_hits == 1

    def test_pinned_algorithm_collapses_axis(self, params):
        tuner = GlobalTuner(Fabric.fully_connected(8, params),
                            algorithms=("ring",))
        assert tuner.choose("allreduce", 64).algorithm == "ring"

    def test_unknown_algorithm_rejected(self, params):
        with pytest.raises(CollectiveError, match="unknown"):
            GlobalTuner(Fabric.fully_connected(2, params),
                        algorithms=("steiner",))


def engine_multihost(num_hosts, **session_kwargs):
    kwargs = dict(backend="vectorized")
    kwargs.update(session_kwargs)
    return MultiHostSystem(num_hosts, ranks_per_channel=1,
                           mram_bytes=1 << 16,
                           session_config=SessionConfig(**kwargs))


def check_allreduce_parity(mh, seed=7):
    rng = np.random.default_rng(seed)
    elems = mh.pes_per_host
    buf = mh.alloc(elems * 8)
    out = mh.alloc(elems * 8)
    inputs = [rng.integers(-100, 100, elems) for _ in range(mh.total_pes)]
    for gpe, values in enumerate(inputs):
        mh.write_pe(gpe, buf, values, INT64)
    result = multihost_allreduce(mh, elems * 8, buf, out, INT64, SUM)
    expect = ref.allreduce(inputs, SUM)[0]
    for host_out in result.outputs:
        for vec in host_out:
            np.testing.assert_array_equal(vec, expect)
    return result


def check_alltoall_parity(mh, seed=8):
    rng = np.random.default_rng(seed)
    elems = mh.total_pes
    buf = mh.alloc(elems * 8)
    out = mh.alloc(elems * 8)
    inputs = [rng.integers(0, 1000, elems) for _ in range(mh.total_pes)]
    for gpe, values in enumerate(inputs):
        mh.write_pe(gpe, buf, values, INT64)
    result = multihost_alltoall(mh, elems * 8, buf, out, INT64)
    expect = ref.alltoall(inputs)
    flat = [vec for host_out in result.outputs for vec in host_out]
    for got, want in zip(flat, expect):
        np.testing.assert_array_equal(got, want)
    return result


class TestEngineHierarchy:
    """The rebuilt hierarchy: engine sessions under every knob must
    stay bit-identical to the scalar interpreted oracle."""

    @pytest.mark.parametrize("num_hosts", [1, 2, 4, 8])
    def test_allreduce_parity_across_hosts(self, num_hosts):
        mh = engine_multihost(num_hosts)
        check_allreduce_parity(mh)
        mh.close()

    @pytest.mark.parametrize("num_hosts", [1, 2, 4, 8])
    def test_alltoall_parity_across_hosts(self, num_hosts):
        mh = engine_multihost(num_hosts)
        check_alltoall_parity(mh)
        mh.close()

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    @pytest.mark.parametrize("execution", ["interpreted", "compiled"])
    def test_parity_across_backends_and_modes(self, backend, execution):
        mh = engine_multihost(2, backend=backend, execution=execution)
        check_allreduce_parity(mh)
        check_alltoall_parity(mh)
        mh.close()

    def test_streamed_parity(self):
        mh = engine_multihost(2, execution="compiled",
                              stream_tile_bytes=1 << 10)
        check_alltoall_parity(mh)
        mh.close()

    @pytest.mark.parametrize("algorithm", GLOBAL_ALGORITHMS)
    def test_every_global_algorithm_bit_identical(self, algorithm):
        mh = engine_multihost(4, )
        baseline = check_alltoall_parity(mh)
        mh.close()
        pinned = MultiHostSystem(4, ranks_per_channel=1,
                                 mram_bytes=1 << 16,
                                 global_algorithm=algorithm)
        result = check_alltoall_parity(pinned)
        assert result.global_algorithm == algorithm
        pinned.close()
        # Outputs equal by the oracle; ledgers identical too (cost
        # shaping never leaks into the local phases).
        assert result.ledger.total == pytest.approx(baseline.ledger.total)

    def test_host_level_parallel_workers(self):
        mh = engine_multihost(4, parallel_workers=4)
        assert mh._pool is not None
        # Each host's own session stays serial: the worker budget is
        # spent across hosts.
        assert all(c.session_config.parallel_workers == 1
                   for c in mh.communicators)
        check_allreduce_parity(mh)
        check_alltoall_parity(mh)
        mh.close()

    def test_reduce_scatter_and_allgather_on_engine(self):
        mh = engine_multihost(4, execution="compiled")
        rng = np.random.default_rng(11)
        tp = mh.total_pes
        elems = tp * 2
        buf = mh.alloc(elems * 8)
        out = mh.alloc(16)
        inputs = [rng.integers(-50, 50, elems) for _ in range(tp)]
        for gpe, values in enumerate(inputs):
            mh.write_pe(gpe, buf, values, INT64)
        multihost_reduce_scatter(mh, elems * 8, buf, out, INT64, SUM)
        expect = ref.reduce_scatter(inputs, SUM)
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, out, 2, INT64), expect[gpe])

        gbuf = mh.alloc(16)
        gout = mh.alloc(tp * 16)
        ginputs = [rng.integers(0, 100, 2) for _ in range(tp)]
        for gpe, values in enumerate(ginputs):
            mh.write_pe(gpe, gbuf, values, INT64)
        multihost_allgather(mh, 16, gbuf, gout, INT64)
        gexpect = ref.allgather(ginputs)[0]
        for gpe in range(tp):
            np.testing.assert_array_equal(
                mh.read_pe(gpe, gout, tp * 2, INT64), gexpect)
        mh.close()

    def test_topology_changes_cost_not_results(self):
        flat = engine_multihost(4)
        ring = MultiHostSystem(4, ranks_per_channel=1, mram_bytes=1 << 16,
                               fabric=Fabric.ring(4))
        a = check_alltoall_parity(flat)
        b = check_alltoall_parity(ring)
        # A physical ring hops non-neighbour traffic, so the same
        # payload takes longer on the fabric.
        assert b.fabric_seconds > a.fabric_seconds
        flat.close()
        ring.close()

    def test_fabric_and_session_validation(self):
        with pytest.raises(CollectiveError, match="spans"):
            MultiHostSystem(2, fabric=Fabric.fully_connected(4))
        with pytest.raises(CollectiveError, match="not both"):
            from repro import BASELINE
            MultiHostSystem(2, config=BASELINE,
                            session_config=SessionConfig())


class TestFabricElision:
    def test_zero_payload_elides_fabric_bytes(self):
        sparse = engine_multihost(2, elide_transfers=True)
        elems = sparse.total_pes
        buf = sparse.alloc(elems * 8)
        out = sparse.alloc(elems * 8)
        zeros = np.zeros(elems, dtype=np.int64)
        for gpe in range(sparse.total_pes):
            sparse.write_pe(gpe, buf, zeros, INT64)
        result = multihost_alltoall(sparse, elems * 8, buf, out, INT64)
        assert result.elided_fabric_bytes > 0
        assert result.fabric_bytes == 0
        for host_out in result.outputs:
            for vec in host_out:
                assert not vec.any()
        # The ledger pays for the fingerprint scan.
        assert result.ledger.seconds.get("elide", 0.0) > 0.0
        sparse.close()

    def test_dense_payload_elides_nothing(self):
        mh = engine_multihost(2, elide_transfers=True)
        result = check_alltoall_parity(mh)
        assert result.elided_fabric_bytes == 0
        assert result.fabric_bytes > 0
        mh.close()

    def test_sparse_cheaper_than_dense(self):
        dense = engine_multihost(2, elide_transfers=False)
        baseline = check_alltoall_parity(dense)
        dense.close()
        sparse = engine_multihost(2, elide_transfers=True)
        elems = sparse.total_pes
        buf = sparse.alloc(elems * 8)
        out = sparse.alloc(elems * 8)
        zeros = np.zeros(elems, dtype=np.int64)
        for gpe in range(sparse.total_pes):
            sparse.write_pe(gpe, buf, zeros, INT64)
        result = multihost_alltoall(sparse, elems * 8, buf, out, INT64)
        assert result.fabric_seconds < baseline.fabric_seconds
        sparse.close()


class TestMultihostStats:
    def test_global_phase_counters(self):
        mh = engine_multihost(2)
        check_allreduce_parity(mh)
        check_alltoall_parity(mh)
        stats = mh.stats
        assert stats.global_phases == 2
        assert stats.fabric_bytes > 0
        assert stats.fabric_seconds > 0.0
        assert sum(stats.global_algorithms.values()) == 2
        snap = stats.snapshot()
        assert snap["global_phases"] == 2
        assert "multihost:" in stats.report()
        mh.close()

    def test_single_host_records_no_global_phase(self):
        mh = engine_multihost(1)
        check_allreduce_parity(mh)
        assert mh.stats.global_phases == 0
        mh.close()

    def test_render_multihost(self):
        from repro.analysis.trace import render_multihost
        mh = engine_multihost(2)
        assert "single-host" in render_multihost(mh.stats)
        check_alltoall_parity(mh)
        text = render_multihost(mh.stats)
        assert "Multihost(1 global phase" in text
        assert "alltoall/" in text
        mh.close()

    def test_schedule_carries_global_algorithm(self):
        mh = engine_multihost(2)
        result = check_alltoall_parity(mh)
        assert result.global_algorithm in GLOBAL_ALGORITHMS
        if result.schedule is not None:
            assert result.schedule.global_algorithm == \
                result.global_algorithm
        mh.close()


class TestBackCompat:
    def test_config_keyword_still_accepted(self):
        from repro import BASELINE
        mh = MultiHostSystem(2, ranks_per_channel=1, mram_bytes=1 << 16,
                             config=BASELINE)
        assert mh.config is BASELINE
        check_allreduce_parity(mh)
        mh.close()

    def test_mpi_seconds_aliases_fabric_seconds(self):
        mh = small_multihost(2)
        result = multihost_allreduce(mh, 1 << 10, 0, 0, functional=False)
        assert result.mpi_seconds == result.fabric_seconds
        assert result.seconds == pytest.approx(
            result.ledger.total + result.fabric_seconds)

    def test_combined_ledger_has_fabric_category(self):
        mh = small_multihost(2)
        result = multihost_allreduce(mh, 1 << 10, 0, 0, functional=False)
        merged = result.combined()
        assert merged.seconds["fabric"] == pytest.approx(
            result.fabric_seconds)
        assert merged.total == pytest.approx(result.seconds)
