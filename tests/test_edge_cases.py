"""Edge cases and failure injection across the stack.

Odd geometries (non-power-of-two channel counts), boundary payloads,
exhaustion paths, and malformed step parameters -- the inputs a
downstream user will eventually feed the library.
"""

import numpy as np
import pytest

from repro import FULL, HypercubeManager, pidcomm_allreduce, pidcomm_alltoall
from repro.core import reference as ref
from repro.core.collectives.plan import ExecContext
from repro.core.collectives.steps import (
    FanoutFromHostStep,
    ReduceExchangeStep,
    RotateExchangeStep,
)
from repro.core.groups import CommGroup, slice_groups
from repro.dtypes import INT64, SUM, UINT8
from repro.errors import (
    AllocationError,
    CollectiveError,
    HypercubeError,
    TransferError,
)
from repro.hw.geometry import DimmGeometry
from repro.hw.system import DimmSystem


class TestOddGeometries:
    """The channel count is the only non-power-of-two DRAM level, which
    is why the mapping places it in the last hypercube dimension."""

    @pytest.fixture
    def three_channel(self):
        # 3 channels x 1 rank x 4 chips x 4 banks = 48 PEs.
        return DimmSystem(DimmGeometry(3, 1, 4, 4), mram_bytes=1 << 16)

    def test_non_pow2_last_dim_allowed(self, three_channel):
        manager = HypercubeManager(three_channel, shape=(4, 4, 3))
        assert manager.num_nodes == 48

    def test_non_pow2_inner_dim_rejected(self, three_channel):
        with pytest.raises(HypercubeError, match="power of two"):
            HypercubeManager(three_channel, shape=(3, 4, 4))

    def test_collectives_work_on_three_channels(self, three_channel):
        manager = HypercubeManager(three_channel, shape=(4, 4, 3))
        groups = slice_groups(manager, "001")  # groups of 3 (channels)
        assert groups[0].size == 3
        rng = np.random.default_rng(0)
        total = 3 * 8
        src, dst = three_channel.alloc(total), three_channel.alloc(total)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(0, 100, 3) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                three_channel.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, "001", total, src, dst, INT64)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                np.testing.assert_array_equal(
                    three_channel.read_elements(pe, dst, 3, INT64), want)

    def test_single_pe_system(self):
        system = DimmSystem(DimmGeometry(1, 1, 1, 1), mram_bytes=1 << 12)
        manager = HypercubeManager(system, shape=(1,))
        src, dst = system.alloc(8), system.alloc(8)
        system.write_elements(0, src, np.array([7]), INT64)
        pidcomm_allreduce(manager, "1", 8, src, dst, INT64, SUM)
        assert system.read_elements(0, dst, 1, INT64)[0] == 7


class TestBoundaryPayloads:
    def test_single_element_chunks(self):
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 8))
        groups = slice_groups(manager, "10")
        total = 4 * 8  # one int64 per chunk
        src, dst = system.alloc(total), system.alloc(total)
        rng = np.random.default_rng(1)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(0, 100, 4) for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, INT64)
            inputs[g.instance] = vecs
        pidcomm_alltoall(manager, "10", total, src, dst, INT64)
        for g in groups:
            expect = ref.alltoall(inputs[g.instance])
            for pe, want in zip(g.pe_ids, expect):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, 4, INT64), want)

    def test_single_byte_elements(self):
        system = DimmSystem.small(mram_bytes=1 << 14)
        manager = HypercubeManager(system, shape=(4, 8))
        groups = slice_groups(manager, "10")
        total = 4  # 4 chunks of one uint8
        src, dst = system.alloc(total), system.alloc(total)
        rng = np.random.default_rng(2)
        inputs = {}
        for g in groups:
            vecs = [rng.integers(0, 255, 4).astype(np.uint8)
                    for _ in g.pe_ids]
            for pe, v in zip(g.pe_ids, vecs):
                system.write_elements(pe, src, v, UINT8)
            inputs[g.instance] = vecs
        pidcomm_allreduce(manager, "10", total, src, dst, UINT8, SUM)
        for g in groups:
            expect = ref.allreduce(inputs[g.instance], SUM)
            for pe, want in zip(g.pe_ids, expect):
                np.testing.assert_array_equal(
                    system.read_elements(pe, dst, 4, UINT8), want)

    def test_mram_exhaustion_during_plan_execution(self):
        system = DimmSystem.small(mram_bytes=64)
        manager = HypercubeManager(system, shape=(4, 8))
        src = system.alloc(32)
        # dst deliberately past the end of MRAM.
        plan_ok = pidcomm_alltoall(manager, "10", 32, src, 0,
                                   functional=False)
        assert plan_ok.seconds > 0
        with pytest.raises(TransferError):
            pidcomm_alltoall(manager, "10", 32, src, 48)

    def test_allocation_failure_message_names_sizes(self):
        system = DimmSystem.small(mram_bytes=128)
        with pytest.raises(AllocationError, match="128"):
            system.alloc(256)


class TestMalformedSteps:
    def _group(self):
        return CommGroup(instance=0, pe_ids=(0, 1, 2, 3))

    def test_bad_exchange_mode(self):
        with pytest.raises(CollectiveError, match="unknown host pass mode"):
            RotateExchangeStep([self._group()], 0, 8, 4, mode="warp")

    def test_cross_domain_reduce_needs_bytes(self):
        with pytest.raises(CollectiveError, match="1-byte"):
            ReduceExchangeStep([self._group()], 0, 8, 4, INT64, SUM,
                               mode="crossdomain", dst_offset=0)

    def test_reduce_exchange_needs_a_destination(self):
        with pytest.raises(CollectiveError, match="write back"):
            ReduceExchangeStep([self._group()], 0, 8, 4, INT64, SUM,
                               mode="inregister")

    def test_misaligned_chunk_rejected(self):
        with pytest.raises(CollectiveError, match="not divisible"):
            ReduceExchangeStep([self._group()], 0, 6, 4, INT64, SUM,
                               mode="inregister", dst_offset=0)

    def test_fanout_without_scratch_fails_cleanly(self):
        system = DimmSystem.small(mram_bytes=1 << 12)
        step = FanoutFromHostStep([self._group()], "missing", 0, 8,
                                  "inregister")
        with pytest.raises(CollectiveError, match="scratch"):
            step.apply(ExecContext(system=system))


class TestHypercubeEdges:
    def test_dimension_of_length_one_everywhere(self):
        system = DimmSystem.small(mram_bytes=1 << 12)
        manager = HypercubeManager(system, shape=(1, 1, 32))
        groups = slice_groups(manager, "001")
        assert len(groups) == 1 and groups[0].size == 32

    def test_many_dimensions(self):
        system = DimmSystem.small(mram_bytes=1 << 12)
        manager = HypercubeManager(system, shape=(2, 2, 2, 2, 2))
        assert manager.ndim == 5
        groups = slice_groups(manager, "10101")
        assert groups[0].size == 8
        assert len(groups) == 4

    def test_partial_machine_usage(self):
        system = DimmSystem.small()
        manager = HypercubeManager(system, shape=(4, 2), base_pe=8)
        assert manager.all_pes == tuple(range(8, 16))
        with pytest.raises(HypercubeError):
            manager.node_of_pe(0)

    def test_config_snapshot_in_plan_meta(self):
        system = DimmSystem.small()
        manager = HypercubeManager(system, shape=(4, 8))
        result = pidcomm_alltoall(manager, "10", 32, 0, 0, config=FULL,
                                  functional=False)
        assert result.plan.meta["instances"] == 8
        assert result.plan.meta["group_size"] == 4
