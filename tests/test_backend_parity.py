"""Backend parity: the vectorized backend must be indistinguishable.

The ISSUE's acceptance bar for the lane-major backend is strict: for
every collective, every optimization rung, and every dtype, the
vectorized path must produce bit-identical PE memories and host
outputs, an identical :class:`CostLedger` breakdown, identical
:class:`SimdCounter` register-op counts, and identical WRAM tile
counts -- the batched kernels may be faster, never cheaper.  This
module asserts all of that pairwise against the scalar oracle, plus
the low-level kernel equivalences the step implementations rely on.
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager

from repro import (ABLATION_LADDER, Communicator, DimmSystem, FaultInjector,
                   FULL, SessionConfig)
from repro.core import reference as ref
from repro.dtypes import FLOAT32, INT8, INT32, INT64, SUM
from repro.errors import AllocationError, TransferError
from repro.hw.host import (SimdCounter, fanout_all_slots, rotate_all_slots,
                           rotate_lanes_registerwise)
from repro.hw.pe import check_permutation, check_permutation_rows

PRIMITIVES = ("alltoall", "allgather", "reduce_scatter", "allreduce",
              "gather", "scatter", "reduce", "broadcast")
SHAPE = (4, 8)
BITMAP = "11"
CHUNK = 3


def _run(primitive, config, dtype, backend, seed=0, injector=None):
    """One collective on one backend; returns (outputs, CommResult).

    ``outputs`` maps group instance -> list of per-PE (or host) arrays.
    Everything random is drawn from ``seed`` so the two backends see
    byte-identical inputs.
    """
    rng = np.random.default_rng(seed)
    manager = make_manager(SHAPE)
    system = manager.system
    comm = Communicator(manager, SessionConfig(config=config, fault_injector=injector,
                        backend=backend))
    groups = groups_of(manager, BITMAP)
    n = groups[0].size
    item = dtype.itemsize

    if primitive in ("scatter", "broadcast"):
        root_elems = n * CHUNK if primitive == "scatter" else CHUNK
        payloads = {g.instance: rng.integers(-99, 100, root_elems)
                    .astype(dtype.np_dtype) for g in groups}
        total = CHUNK * item
        dst = system.alloc(total)
        result = getattr(comm, primitive)(
            BITMAP, total, dst_offset=dst, data_type=dtype,
            payloads=payloads)
        outputs = {g.instance: [system.read_elements(pe, dst, CHUNK, dtype)
                                for pe in g.pe_ids] for g in groups}
        return outputs, result, payloads

    elems = CHUNK if primitive == "allgather" else n * CHUNK
    total = elems * item
    src = system.alloc(total)
    inputs = fill_group_inputs(system, groups, src, elems, dtype, rng)

    if primitive in ("gather", "reduce"):
        kwargs = {"reduction_type": SUM} if primitive == "reduce" else {}
        result = getattr(comm, primitive)(
            BITMAP, total, src_offset=src, data_type=dtype, **kwargs)
        outputs = {inst: [np.asarray(out).view(dtype.np_dtype).reshape(-1)]
                   for inst, out in result.host_outputs.items()}
        return outputs, result, inputs

    out_elems = {"alltoall": elems, "reduce_scatter": CHUNK,
                 "allgather": n * CHUNK, "allreduce": elems}[primitive]
    dst = system.alloc(out_elems * item)
    kwargs = ({"reduction_type": SUM}
              if primitive in ("reduce_scatter", "allreduce") else {})
    result = getattr(comm, primitive)(
        BITMAP, total, src_offset=src, dst_offset=dst, data_type=dtype,
        **kwargs)
    outputs = {g.instance: [system.read_elements(pe, dst, out_elems, dtype)
                            for pe in g.pe_ids] for g in groups}
    return outputs, result, inputs


def _assert_equal_runs(primitive, config, dtype, seed=0):
    """Run both backends on identical inputs; everything must match."""
    s_out, s_res, _ = _run(primitive, config, dtype, "scalar", seed)
    v_out, v_res, _ = _run(primitive, config, dtype, "vectorized", seed)
    assert s_out.keys() == v_out.keys()
    for inst in s_out:
        for a, b in zip(s_out[inst], v_out[inst]):
            np.testing.assert_array_equal(a, b)
    assert s_res.ledger.breakdown() == v_res.ledger.breakdown()
    assert s_res.simd == v_res.simd
    assert s_res.wram_tiles == v_res.wram_tiles


class TestCollectiveParity:
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    @pytest.mark.parametrize("config", ABLATION_LADDER,
                             ids=lambda c: c.describe()
                             if hasattr(c, "describe") else str(c))
    def test_every_rung_matches(self, primitive, config):
        _assert_equal_runs(primitive, config, INT32)

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    @pytest.mark.parametrize("dtype", [INT8, INT64, FLOAT32],
                             ids=lambda d: d.name)
    def test_every_dtype_matches(self, primitive, dtype):
        # FLOAT32 is the reduction-order canary: the batched reduce
        # must fold slots in the same left-to-right order the scalar
        # loop uses, or sums drift in the low mantissa bits.
        _assert_equal_runs(primitive, FULL, dtype, seed=7)

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_vectorized_matches_reference(self, primitive):
        outputs, _, inputs = _run(primitive, FULL, INT32, "vectorized",
                                  seed=3)
        reference_fn = {
            "alltoall": lambda v: ref.alltoall(v),
            "allgather": lambda v: ref.allgather(v),
            "reduce_scatter": lambda v: ref.reduce_scatter(v, SUM),
            "allreduce": lambda v: ref.allreduce(v, SUM),
            "gather": lambda v: [ref.gather(v)],
            "reduce": lambda v: [ref.reduce(v, SUM)],
            "scatter": lambda v: ref.scatter(v, len(outputs[0])),
            "broadcast": lambda v: ref.broadcast(v, len(outputs[0])),
        }[primitive]
        for inst, got in outputs.items():
            want = reference_fn(inputs[inst])
            for a, b in zip(got, want):
                np.testing.assert_array_equal(a, b)

    def test_faulted_runs_stay_bit_exact(self):
        # Fault schedules differ between backends (the vectorized path
        # makes fewer injector draws), but CRC + rewind means both must
        # still land on the reference answer.
        for backend in ("scalar", "vectorized"):
            injector = FaultInjector(seed=5, bit_flip_rate=0.004,
                                     drop_rate=0.003, timeout_rate=0.003)
            outputs, result, inputs = _run("alltoall", FULL, INT32,
                                           backend, seed=9,
                                           injector=injector)
            for inst, got in outputs.items():
                want = ref.alltoall(inputs[inst])
                for a, b in zip(got, want):
                    np.testing.assert_array_equal(a, b)


class TestBackendPlumbing:
    def test_analytic_runs_allocate_nothing(self):
        manager = make_manager(SHAPE)
        comm = Communicator(manager, SessionConfig(functional=False, backend="vectorized"))
        comm.alltoall(BITMAP, 256, src_offset=0, dst_offset=4096,
                      data_type=INT32)
        assert manager.system.touched_pes == 0

    def test_set_backend_migrates_state_both_ways(self):
        system = DimmSystem.small(mram_bytes=1 << 12)
        system.write_elements(3, 64, np.arange(8, dtype=np.int32), INT32)
        system.set_backend("vectorized")
        np.testing.assert_array_equal(
            system.read_elements(3, 64, 8, INT32), np.arange(8))
        system.write_elements(7, 0, np.ones(4, dtype=np.int32), INT32)
        system.set_backend("scalar")
        np.testing.assert_array_equal(
            system.read_elements(3, 64, 8, INT32), np.arange(8))
        np.testing.assert_array_equal(
            system.read_elements(7, 0, 4, INT32), np.ones(4))

    def test_unknown_backend_rejected(self):
        with pytest.raises(AllocationError):
            DimmSystem.small(backend="simd")
        with pytest.raises(AllocationError):
            DimmSystem.small().set_backend("simd")

    def test_plan_keys_never_alias_across_backends(self):
        results = {}
        for backend in ("scalar", "vectorized"):
            manager = make_manager(SHAPE)
            comm = Communicator(manager, SessionConfig(backend=backend))
            src = manager.system.alloc(256)
            dst = manager.system.alloc(256)
            res = comm.alltoall(BITMAP, 256, src_offset=src, dst_offset=dst,
                                data_type=INT64, functional=False)
            results[backend] = res
        keys = {b: r.plan.primitive for b, r in results.items()}
        assert keys["scalar"] == keys["vectorized"] == "alltoall"
        # The cache key itself must differ on the backend field.
        from repro.engine.request import PlanKey
        a = PlanKey("alltoall", (0,), 256, 0, 0, "int64", None, FULL,
                    backend="scalar")
        b = PlanKey("alltoall", (0,), 256, 0, 0, "int64", None, FULL,
                    backend="vectorized")
        assert a != b


class TestKernelParity:
    def test_permute_chunks_matches_scalar_kernel(self):
        rng = np.random.default_rng(17)
        pes = list(range(8))
        nslots, chunk = 8, 6
        perms = np.stack([rng.permutation(nslots) for _ in pes])
        results = {}
        for backend in ("scalar", "vectorized"):
            system = DimmSystem.small(mram_bytes=1 << 12, backend=backend)
            for pe in pes:
                system.write_elements(
                    pe, 0, np.arange(nslots * chunk, dtype=np.int64) + pe,
                    INT64)
            tiles = system.permute_chunks(pes, 0, nslots * chunk * 8,
                                          chunk * 8, perms)
            data = system.read_lanes(pes, nslots * chunk * 8,
                                     nslots * chunk * 8)
            results[backend] = (tiles, data)
        assert results["scalar"][0] == results["vectorized"][0]
        np.testing.assert_array_equal(results["scalar"][1],
                                      results["vectorized"][1])

    def test_in_place_permute_tile_parity(self):
        pes = [0, 1, 2]
        nslots, chunk_bytes = 6, 8
        # One fixed point per row exercises the cycle-walk discount.
        perm = np.array([1, 0, 3, 2, 5, 4])
        perms = np.stack([perm, np.arange(nslots), np.roll(perm, 2)])
        tiles = {}
        for backend in ("scalar", "vectorized"):
            system = DimmSystem.small(mram_bytes=1 << 12, backend=backend)
            for pe in pes:
                system.write_elements(pe, 0,
                                      np.arange(nslots, dtype=np.int64),
                                      INT64)
            tiles[backend] = system.permute_chunks(pes, 0, 0, chunk_bytes,
                                                   perms)
        assert tiles["scalar"] == tiles["vectorized"]

    def test_rotate_all_slots_matches_per_slot_kernel(self):
        rng = np.random.default_rng(23)
        lanes, nslots, chunk = 8, 8, 16
        tensor = rng.integers(0, 256, (lanes, nslots, chunk),
                              dtype=np.uint8)
        batched_counter = SimdCounter()
        batched = rotate_all_slots(tensor, batched_counter)
        loop_counter = SimdCounter()
        for s in range(nslots):
            expect = rotate_lanes_registerwise(tensor[:, s], s,
                                               loop_counter)
            np.testing.assert_array_equal(batched[:, s], expect)
        assert batched_counter == loop_counter

    def test_fanout_all_slots_matches_per_slot_kernel(self):
        rng = np.random.default_rng(29)
        lanes, nslots, nbytes = 8, 8, 24
        row = rng.integers(0, 256, (lanes, nbytes), dtype=np.uint8)
        batched_counter = SimdCounter()
        fanned = fanout_all_slots(row, nslots, batched_counter)
        loop_counter = SimdCounter()
        for s in range(nslots):
            expect = rotate_lanes_registerwise(row, s, loop_counter)
            np.testing.assert_array_equal(fanned[:, s], expect)
        assert batched_counter == loop_counter

    def test_permutation_validation(self):
        np.testing.assert_array_equal(
            check_permutation(np.array([2, 0, 1])), [2, 0, 1])
        with pytest.raises(TransferError):
            check_permutation(np.array([0, 0, 1]))      # duplicate
        with pytest.raises(TransferError):
            check_permutation(np.array([0, 1, 3]))      # out of range
        with pytest.raises(TransferError):
            check_permutation(np.array([[0, 1], [1, 0]]))  # not 1-D
        good = np.array([[1, 0, 2], [2, 1, 0]])
        np.testing.assert_array_equal(check_permutation_rows(good), good)
        with pytest.raises(TransferError):
            check_permutation_rows(np.array([[1, 0, 2], [2, 2, 0]]))
