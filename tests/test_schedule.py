"""Tests for the Schedule object and the schedule-space autotuner.

Covers the tentpole end to end: Schedule construction/transform
validation and the HeteroCL-style ``check`` assertion, fusion-depth
compilation, the tuner's search (offline argmin, online
probe/commit/monitor/retune), decision caching inside the PlanCache,
SessionConfig wiring (including the serving front-end), and -- the
non-negotiable -- bit-parity of every tuned schedule against the
scalar interpreted oracle across all eight primitives and both pinned
backends.
"""

import numpy as np
import pytest

from .helpers import fill_group_inputs, groups_of, make_manager
from .test_differential_fuzz import PRIMITIVES, run_case

from repro import (
    ABLATION_LADDER,
    BASELINE,
    CollectiveServer,
    CommRequest,
    Communicator,
    FaultInjector,
    FULL,
    Schedule,
    SessionConfig,
)
from repro.analysis.autotune import (
    AUTOTUNE_MODES,
    MIN_TILE_BYTES,
    ScheduleSpace,
    Tuner,
    tile_candidates,
)
from repro.analysis.trace import render_autotune
from repro.dtypes import INT64
from repro.engine.stats import EngineStats
from repro.errors import CollectiveError, PidCommError


# ----------------------------------------------------------------------
# Schedule: validation and transforms
# ----------------------------------------------------------------------
class TestScheduleValidation:
    def test_default_is_naive(self):
        s = Schedule.default()
        assert s.backend == "scalar"
        assert s.execution == "compiled"
        assert s.tile_bytes is None
        assert s.rung is FULL

    def test_unknown_backend_rejected(self):
        with pytest.raises(CollectiveError, match="backend"):
            Schedule(backend="simd")

    def test_unknown_execution_rejected(self):
        # "auto" is a session policy, not a resolved schedule.
        with pytest.raises(CollectiveError, match="execution"):
            Schedule(execution="auto")

    def test_streamed_interpreted_rejected(self):
        with pytest.raises(CollectiveError, match="stream"):
            Schedule(execution="interpreted", tile_bytes=4096)

    def test_nonpositive_tile_rejected(self):
        with pytest.raises(CollectiveError, match="tile_bytes"):
            Schedule(tile_bytes=0)

    def test_bad_fusion_depth_rejected(self):
        with pytest.raises(CollectiveError, match="fusion_depth"):
            Schedule(fusion_depth=0)

    def test_rung_must_be_optconfig(self):
        with pytest.raises(CollectiveError, match="rung"):
            Schedule(rung="FULL")

    def test_transforms_compose(self):
        s = (Schedule.default().with_backend("vectorized")
             .with_tile(1 << 20).fused(2).with_band_parallel()
             .with_rung(BASELINE))
        assert s.signature == ("vectorized", "compiled", 1 << 20, 2,
                               True, False, "Baseline", None)
        assert s.untiled().tile_bytes is None

    def test_with_execution_interpreted_untiles(self):
        s = Schedule(tile_bytes=4096).with_execution("interpreted")
        assert s.execution == "interpreted" and s.tile_bytes is None

    def test_transforms_never_mutate(self):
        s = Schedule.default()
        s.with_tile(4096)
        assert s.tile_bytes is None

    def test_describe_names_every_knob(self):
        text = Schedule(backend="vectorized", tile_bytes=8 << 20,
                        band_parallel=True).describe()
        assert "vectorized" in text and "8388608" in text
        assert "bands" in text and "+CM" in text


# ----------------------------------------------------------------------
# Schedule: fusion depth and the check() assertion
# ----------------------------------------------------------------------
class TestScheduleCheck:
    def _plan(self):
        manager = make_manager((4, 8))
        req = CommRequest("allreduce", "11", 512).normalize(
            manager, FULL)
        from repro.core.collectives import plan_allreduce
        from repro.dtypes import SUM
        return manager, plan_allreduce(manager, req.dims, 512, 0, 2048,
                                       INT64, SUM, FULL)

    def test_interpreted_schedule_has_nothing_to_check(self):
        manager, plan = self._plan()
        program = plan.compile(manager.system)
        with pytest.raises(CollectiveError, match="interpreted"):
            Schedule(execution="interpreted").check(program)

    def test_fusion_depth_one_disables_fusion(self):
        manager, plan = self._plan()
        capped = plan.compile(manager.system, schedule=Schedule(
            fusion_depth=1))
        assert all(max(1, len(op.labels)) == 1 for op in capped.ops)
        assert capped.schedule.fusion_depth == 1

    def test_unlimited_fusion_fuses_more(self):
        manager, plan = self._plan()
        fused = plan.compile(manager.system, schedule=Schedule())
        capped = plan.compile(manager.system,
                              schedule=Schedule(fusion_depth=1))
        assert len(fused.ops) <= len(capped.ops)

    def test_check_rejects_overfused_program(self):
        manager, plan = self._plan()
        fused = plan.compile(manager.system)
        widths = [max(1, len(op.labels)) for op in fused.ops]
        if max(widths) < 2:
            pytest.skip("plan produced no fusable op pair")
        with pytest.raises(CollectiveError, match="fuses"):
            Schedule(fusion_depth=1).check(fused)

    def test_check_returns_self_for_chaining(self):
        manager, plan = self._plan()
        s = Schedule(fusion_depth=1)
        program = plan.compile(manager.system, schedule=s)
        assert s.check(program) is s

    def test_fused_programs_key_separately(self):
        # Identical requests with different fusion depths must never
        # alias in the plan cache.
        manager = make_manager((4, 8))
        req = CommRequest("allreduce", "11", 512).normalize(manager, FULL)
        base = req.plan_key
        req.schedule = Schedule(fusion_depth=1)
        assert req.plan_key != base
        req.schedule = Schedule()  # unlimited = the default structure
        assert req.plan_key == base

    def test_fusion_depths_replay_bit_identically(self):
        rng = np.random.default_rng(3)
        manager, plan = self._plan()
        system = manager.system
        groups = groups_of(manager, "11")
        inputs = fill_group_inputs(system, groups, 0, 64, INT64, rng)
        plan.compile(system, schedule=Schedule(fusion_depth=1)).replay(
            system)
        capped = [system.memory(pe).read(2048, 512).copy()
                  for pe in range(system.geometry.num_pes)]
        fill_group_inputs(system, groups, 0, 64, INT64,
                          np.random.default_rng(3))
        plan.compile(system, schedule=Schedule()).replay(system)
        fused = [system.memory(pe).read(2048, 512).copy()
                 for pe in range(system.geometry.num_pes)]
        for a, b in zip(capped, fused):
            np.testing.assert_array_equal(a, b)


# ----------------------------------------------------------------------
# SessionConfig / serving wiring
# ----------------------------------------------------------------------
class TestAutotuneConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(CollectiveError, match="autotune"):
            SessionConfig(autotune="sometimes")

    def test_injector_conflict_rejected(self):
        with pytest.raises(CollectiveError, match="autotune"):
            SessionConfig(autotune="offline",
                          fault_injector=FaultInjector(seed=1))

    def test_modes_accepted(self):
        for mode in AUTOTUNE_MODES:
            assert SessionConfig(autotune=mode).autotune == mode
        assert SessionConfig().autotune is None

    def test_untuned_session_has_no_tuner(self):
        comm = Communicator(make_manager((4, 8)), SessionConfig())
        assert comm.tuner is None

    def test_server_exposes_autotune_mode(self):
        server = CollectiveServer(
            make_manager((8, 4)),
            SessionConfig(functional=False, autotune="offline"))
        assert server.autotune == "offline"
        assert server.comm.tuner is not None

    def test_served_requests_are_tuned(self):
        import asyncio

        async def scenario():
            server = CollectiveServer(
                make_manager((8, 4)),
                SessionConfig(functional=False, autotune="offline"))
            session = server.session("tenant-a")
            futures = [session.submit(CommRequest("alltoall", "10", 256,
                                                  dst_offset=8192))
                       for _ in range(3)]
            await server.drain()
            for future in futures:
                assert (await future).schedule is not None
            assert server.comm.stats.tuner_searches == 1
            assert server.comm.stats.tuner_cache_hits == 2

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# The tuner: search, caching, probing, re-tuning
# ----------------------------------------------------------------------
def _tuned_comm(mode, shape=(4, 8), **session):
    manager = make_manager(shape, mram_bytes=1 << 20)
    return Communicator(manager, SessionConfig(autotune=mode, **session))


def _drive(comm, calls=1, size=4096, functional=True):
    system = comm.manager.system
    src, dst = 0, 1 << 18
    if functional:
        data = np.arange(size, dtype=np.uint8) % 97
        for pe in range(system.geometry.num_pes):
            system.memory(pe).write(src, data)
    last = None
    for _ in range(calls):
        last = comm.alltoall("11", size, src_offset=src, dst_offset=dst,
                             functional=functional)
    return last


class TestTunerSearch:
    def test_offline_commits_on_first_call(self):
        comm = _tuned_comm("offline")
        result = _drive(comm, calls=3)
        assert result.schedule is not None
        assert comm.stats.tuner_searches == 1
        assert comm.stats.tuner_cache_hits == 2
        assert comm.cache.schedules == 1

    def test_decision_is_model_argmin(self):
        comm = _tuned_comm("offline")
        result = _drive(comm)
        schedule = result.schedule
        tuner = comm.tuner
        req = CommRequest("alltoall", "11", 4096, dst_offset=1 << 18) \
            .normalize(comm.manager, comm.config, backend=comm.backend)
        scores = tuner.enumerate_schedules(
            lambda rung: comm._candidate_plan(req, rung),
            lambda rung: comm._candidate_program(req, rung))
        assert schedule.signature == scores[0].schedule.signature
        seconds = [s.seconds for s in scores]
        assert seconds == sorted(seconds)

    def test_pinned_knobs_collapse_the_space(self):
        space = ScheduleSpace.from_session(SessionConfig(
            autotune="offline", backend="scalar",
            execution="interpreted"))
        assert space.backends == ("scalar",)
        assert space.executions == ("interpreted",)
        assert not space.streaming
        comm = _tuned_comm("offline", backend="scalar",
                           execution="interpreted")
        result = _drive(comm)
        assert result.schedule.backend == "scalar"
        assert result.schedule.execution == "interpreted"
        assert result.schedule.tile_bytes is None
        assert result.execution == "interpreted"

    def test_pinned_tile_is_honored(self):
        comm = _tuned_comm("offline", stream_tile_bytes=8192)
        result = _drive(comm)
        assert result.schedule.tile_bytes == 8192
        assert result.execution == "streamed"

    def test_distinct_shapes_search_separately(self):
        comm = _tuned_comm("offline")
        _drive(comm, size=4096)
        _drive(comm, size=8192)
        assert comm.stats.tuner_searches == 2
        assert comm.cache.schedules == 2

    def test_tuned_results_report_rung_of_schedule(self):
        comm = _tuned_comm("offline")
        result = _drive(comm)
        assert result.plan.meta.get("config") \
            == result.schedule.rung.label

    def test_analytic_sessions_tune_too(self):
        comm = _tuned_comm("offline", functional=False)
        result = _drive(comm, calls=4, functional=False)
        assert result.schedule is not None
        assert comm.stats.tuner_searches == 1


class TestTunerOnline:
    def test_probe_then_commit(self):
        comm = _tuned_comm("online")
        _drive(comm, calls=40, size=1 << 16)
        stats = comm.stats
        assert stats.tuner_searches == 1
        assert stats.tuner_observations > 0
        assert comm.cache.schedules == 1  # probing converged
        assert stats.tuner_cache_hits > 0

    def test_analytic_online_stalls_to_model_choice(self):
        # Analytic traffic never reports replay seconds; the probe
        # must stall out and commit the modelled best instead of
        # handing out probe candidates forever.
        comm = _tuned_comm("online", functional=False)
        _drive(comm, calls=60, size=1 << 16, functional=False)
        assert comm.cache.schedules == 1
        assert comm.stats.tuner_observations == 0

    def test_divergence_triggers_retune(self):
        comm = _tuned_comm("online")
        _drive(comm, calls=40, size=1 << 16)
        assert comm.cache.schedules == 1
        tuner = comm.tuner
        req = CommRequest("alltoall", "11", 1 << 16, dst_offset=1 << 18) \
            .normalize(comm.manager, comm.config, backend=comm.backend)
        schedule = comm.cache.fetch_schedule(req.schedule_key)
        assert schedule is not None
        # Feed grossly slower-than-modelled observations by hand: the
        # EWMA must cross the retune threshold and invalidate the
        # decision.
        retuned = False
        for _ in range(50):
            retuned = tuner.observe(req, schedule, modelled_s=1e-3,
                                    observed_s=10.0, cache=comm.cache,
                                    stats=comm.stats)
            if retuned:
                break
        assert retuned
        assert comm.stats.tuner_retunes == 1
        assert comm.cache.fetch_schedule(req.schedule_key) is None
        # The session recovers: the next call re-searches and commits.
        _drive(comm, calls=40, size=1 << 16)
        assert comm.stats.tuner_searches == 2

    def test_offline_never_observes(self):
        comm = _tuned_comm("offline")
        _drive(comm, calls=10, size=1 << 16)
        assert comm.stats.tuner_observations == 0
        assert comm.stats.tuner_probes == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(PidCommError, match="autotune"):
            Tuner(make_manager((4, 8)), mode="midline")


class TestDecisionCache:
    def test_eviction_forces_research_not_misbehavior(self):
        # A decision dropped by the (tiny) cache bound re-searches on
        # the next call -- correctness never depends on the cache.
        comm = _tuned_comm("offline", cache_size=2)
        _drive(comm, size=2048)
        _drive(comm, size=4096)
        _drive(comm, size=8192)  # evicts the first decision
        assert comm.cache.schedules <= 2
        result = _drive(comm, size=2048)
        assert result.schedule is not None
        assert comm.stats.tuner_searches == 4

    def test_clear_drops_decisions(self):
        comm = _tuned_comm("offline")
        _drive(comm)
        assert comm.cache.schedules == 1
        comm.cache.clear()
        assert comm.cache.schedules == 0

    def test_schedule_key_excludes_tuner_outputs(self):
        manager = make_manager((4, 8))
        req = CommRequest("alltoall", "11", 4096).normalize(manager, FULL)
        key_full = req.schedule_key
        req.config = BASELINE
        req.backend = "vectorized"
        assert req.schedule_key == key_full  # rung/backend are outputs
        req.src_offset = 64
        assert req.schedule_key != key_full  # offsets are inputs


# ----------------------------------------------------------------------
# Tile candidates
# ----------------------------------------------------------------------
class TestTileCandidates:
    def _plan(self, size=1 << 16):
        manager = make_manager((4, 8), mram_bytes=1 << 20)
        from repro.core.collectives import plan_alltoall
        return plan_alltoall(manager, (0, 1), size, 0, 1 << 18, INT64,
                             FULL)

    def test_untiled_always_candidate(self):
        assert None in tile_candidates(self._plan(), ScheduleSpace())

    def test_tiles_respect_floor(self):
        tiles = tile_candidates(self._plan(), ScheduleSpace())
        assert all(t >= MIN_TILE_BYTES for t in tiles if t is not None)

    def test_pinned_tile_collapses_axis(self):
        space = ScheduleSpace(tile_bytes=12345)
        assert tile_candidates(self._plan(), space) == (12345,)

    def test_no_streaming_means_untiled_only(self):
        space = ScheduleSpace(streaming=False)
        assert tile_candidates(self._plan(), space) == (None,)

    def test_tiny_payload_offers_no_tiles(self):
        # 256 B/PE x 32 PEs = 8 KiB footprint: every fraction falls
        # below the tile floor, so only the untiled candidate remains.
        assert tile_candidates(self._plan(size=256),
                               ScheduleSpace()) == (None,)


# ----------------------------------------------------------------------
# Parity: the non-negotiable
# ----------------------------------------------------------------------
class TestTunedParity:
    """Every tuned schedule replays bit-identical to the oracle.

    ``run_case`` checks the engine's functional output bit-exactly
    against the golden reference (``core/reference.py``) -- the same
    oracle the scalar interpreted path is verified against -- for all
    eight primitives, with the backend axis pinned each way.
    """

    @pytest.mark.parametrize("backend", ["scalar", "vectorized", None],
                             ids=["scalar", "vectorized", "open"])
    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_tuned_matches_oracle(self, primitive, backend):
        rng = np.random.default_rng(17)
        result = run_case(rng, primitive, (4, 8), INT64, 2, FULL,
                          backend=backend, autotune="offline")
        assert result.schedule is not None
        if backend is not None:
            assert result.schedule.backend == backend

    def test_tuned_interpreted_matches_oracle(self):
        rng = np.random.default_rng(23)
        for primitive in PRIMITIVES:
            result = run_case(rng, primitive, (2, 4, 4), INT64, 3, FULL,
                              execution="interpreted", autotune="offline")
            assert result.schedule.execution == "interpreted"


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRenderAutotune:
    def test_idle_tuner(self):
        assert "idle" in render_autotune(EngineStats())

    def test_counters_rendered(self):
        comm = _tuned_comm("online")
        _drive(comm, calls=20, size=1 << 16)
        text = render_autotune(comm.stats)
        assert "Autotune(1 search" in text
        assert "probes" in text and "re-tunes" in text

    def test_snapshot_carries_tuner_counters(self):
        comm = _tuned_comm("offline")
        _drive(comm, calls=2)
        snap = comm.stats.snapshot()
        assert snap["tuner_searches"] == 1
        assert snap["tuner_cache_hits"] == 1
        assert "autotuner:" in comm.stats.report()


# ----------------------------------------------------------------------
# Property tests (skipped without Hypothesis)
# ----------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_RUNGS = st.sampled_from(list(ABLATION_LADDER))
_SCHEDULES = st.builds(
    Schedule,
    backend=st.sampled_from(["scalar", "vectorized"]),
    execution=st.just("compiled"),
    tile_bytes=st.one_of(st.none(),
                         st.integers(min_value=1, max_value=1 << 22)),
    fusion_depth=st.one_of(st.none(),
                           st.integers(min_value=1, max_value=8)),
    band_parallel=st.booleans(),
    rung=_RUNGS)


class TestScheduleProperties:
    @settings(max_examples=60, deadline=None)
    @given(schedule=_SCHEDULES)
    def test_transform_roundtrips_preserve_validity(self, schedule):
        # Any chain of transforms lands on another valid schedule
        # (construction re-validates), and interpreted always untiles.
        s = schedule.with_execution("interpreted")
        assert s.tile_bytes is None
        t = schedule.untiled().with_execution("compiled").fused(1)
        assert t.fusion_depth == 1 and t.tile_bytes is None
        assert schedule.with_backend(schedule.backend) == schedule

    @settings(max_examples=40, deadline=None)
    @given(depth=st.integers(min_value=1, max_value=6))
    def test_fusion_cap_always_respected(self, depth):
        manager = make_manager((4, 8))
        from repro.core.collectives import plan_allreduce
        from repro.dtypes import SUM
        plan = plan_allreduce(manager, (0, 1), 512, 0, 2048, INT64, SUM,
                              FULL)
        program = plan.compile(manager.system,
                               schedule=Schedule(fusion_depth=depth))
        assert all(max(1, len(op.labels)) <= depth
                   for op in program.ops)

    @settings(max_examples=30, deadline=None)
    @given(backend=st.one_of(st.none(),
                             st.sampled_from(["scalar", "vectorized"])),
           execution=st.sampled_from(["auto", "interpreted", "compiled"]),
           tile=st.one_of(st.none(),
                          st.integers(min_value=1, max_value=1 << 22)),
           workers=st.integers(min_value=1, max_value=4),
           mode=st.sampled_from(["offline", "online"]))
    def test_tuner_never_selects_invalid_combination(
            self, backend, execution, tile, workers, mode):
        # Whatever the session pins, every schedule the tuner can
        # enumerate is constructible (Schedule validates) and honors
        # the pins -- e.g. streamed+interpreted can never come out.
        if tile is not None and execution == "interpreted":
            return  # SessionConfig itself rejects this pin
        cfg = SessionConfig(autotune=mode, backend=backend,
                            execution=execution, stream_tile_bytes=tile,
                            parallel_workers=workers)
        space = ScheduleSpace.from_session(cfg)
        manager = make_manager((4, 8), mram_bytes=1 << 20)
        comm = Communicator(manager, cfg)
        req = CommRequest("alltoall", "11", 1 << 14,
                          dst_offset=1 << 18).normalize(
            manager, comm.config, backend=comm.backend)
        scores = comm.tuner.enumerate_schedules(
            lambda rung: comm._candidate_plan(req, rung),
            lambda rung: comm._candidate_program(req, rung))
        assert scores
        for score in scores:
            s = score.schedule
            assert not (s.execution == "interpreted"
                        and s.tile_bytes is not None)
            if backend is not None:
                assert s.backend == backend
            if execution != "auto":
                assert s.execution == execution
            if tile is not None and s.execution == "compiled":
                assert s.tile_bytes == tile
            assert s.backend in space.backends
            assert s.rung in ABLATION_LADDER
