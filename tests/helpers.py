"""Shared helpers for the test suite."""

from __future__ import annotations

import numpy as np

from repro import DimmSystem, HypercubeManager
from repro.core.groups import CommGroup, slice_groups
from repro.dtypes import DataType


def fill_group_inputs(system: DimmSystem, groups: list[CommGroup],
                      offset: int, elems_per_pe: int, dtype: DataType,
                      rng: np.random.Generator) -> dict[int, list[np.ndarray]]:
    """Write random inputs per PE; returns instance -> rank-ordered vectors."""
    inputs: dict[int, list[np.ndarray]] = {}
    for group in groups:
        vectors = []
        for pe in group.pe_ids:
            if dtype.np_dtype.kind == "f":
                values = rng.integers(-50, 50, elems_per_pe).astype(
                    dtype.np_dtype)
            else:
                info = np.iinfo(dtype.np_dtype)
                low = max(info.min, -100)
                high = min(info.max, 100)
                values = rng.integers(low, high + 1, elems_per_pe).astype(
                    dtype.np_dtype)
            system.write_elements(pe, offset, values, dtype)
            vectors.append(values)
        inputs[group.instance] = vectors
    return inputs


def read_group_outputs(system: DimmSystem, group: CommGroup, offset: int,
                       elems: int, dtype: DataType) -> list[np.ndarray]:
    """Read each member's output vector in rank order."""
    return [system.read_elements(pe, offset, elems, dtype)
            for pe in group.pe_ids]


def make_manager(shape: tuple[int, ...], mram_bytes: int = 1 << 16
                 ) -> HypercubeManager:
    """A manager on the 32-PE test system (2ch x 1rk x 4chip x 4bank)."""
    system = DimmSystem.small(mram_bytes=mram_bytes)
    return HypercubeManager(system, shape=shape)


def groups_of(manager: HypercubeManager, dims: str) -> list[CommGroup]:
    return slice_groups(manager, dims)
